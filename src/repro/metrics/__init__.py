"""Measurement utilities: distribution statistics and periodic samplers."""

from repro.metrics.stats import (
    Summary,
    cdf,
    ccdf,
    fraction_at_least,
    fraction_at_most,
    mean,
    percentile,
    stdev,
    summarize,
)
from repro.metrics.collectors import PeriodicSampler, ThroughputMeter
from repro.metrics.export import (
    streaming_result_from_dict,
    streaming_result_to_dict,
    write_cdf_csv,
    write_matrix_csv,
    write_series_csv,
    write_streaming_results_json,
)

__all__ = [
    "write_series_csv",
    "write_cdf_csv",
    "write_matrix_csv",
    "write_streaming_results_json",
    "streaming_result_to_dict",
    "streaming_result_from_dict",
    "Summary",
    "cdf",
    "ccdf",
    "percentile",
    "mean",
    "stdev",
    "summarize",
    "fraction_at_most",
    "fraction_at_least",
    "PeriodicSampler",
    "ThroughputMeter",
]
