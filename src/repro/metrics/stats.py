"""Distribution statistics used across the experiment harnesses.

The paper reports results as means, CDFs (Fig 5), and CCDFs (Figs 13, 14,
20, 21, 23); these helpers compute exactly those from raw sample lists,
with no third-party dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean.  Raises ValueError on an empty sequence."""
    if not samples:
        raise ValueError("mean() of empty sequence")
    return sum(samples) / len(samples)


def stdev(samples: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for fewer than two samples."""
    n = len(samples)
    if n < 2:
        return 0.0
    m = mean(samples)
    return math.sqrt(sum((x - m) ** 2 for x in samples) / (n - 1))


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lower = int(math.floor(pos))
    upper = int(math.ceil(pos))
    if lower == upper:
        return ordered[lower]
    frac = pos - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


def cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points ``(x, P[X <= x])``, one per distinct value."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def ccdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Complementary CDF points ``(x, P[X > x])``."""
    return [(x, 1.0 - p) for x, p in cdf(samples)]


def fraction_at_most(samples: Sequence[float], threshold: float) -> float:
    """P[X <= threshold] over the sample set (0.0 if empty)."""
    if not samples:
        return 0.0
    return sum(1 for x in samples if x <= threshold) / len(samples)


def fraction_at_least(samples: Sequence[float], threshold: float) -> float:
    """P[X >= threshold] over the sample set (0.0 if empty)."""
    if not samples:
        return 0.0
    return sum(1 for x in samples if x >= threshold) / len(samples)


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample set."""

    count: int
    mean: float
    stdev: float
    minimum: float
    median: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4f} sd={self.stdev:.4f} "
            f"min={self.minimum:.4f} med={self.median:.4f} "
            f"p95={self.p95:.4f} p99={self.p99:.4f} max={self.maximum:.4f}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; raises ValueError on an empty sequence."""
    if not samples:
        raise ValueError("summarize() of empty sequence")
    return Summary(
        count=len(samples),
        mean=mean(samples),
        stdev=stdev(samples),
        minimum=min(samples),
        median=percentile(samples, 50.0),
        p95=percentile(samples, 95.0),
        p99=percentile(samples, 99.0),
        maximum=max(samples),
    )
