"""Export experiment results to JSON and CSV for external plotting.

The benchmark harnesses write human-readable tables; these helpers write
machine-readable artifacts: CDF/CCDF series, grid matrices, and streaming
run summaries, in formats gnuplot/matplotlib/pandas ingest directly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple, Union

from repro.metrics.stats import cdf, ccdf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import StreamingRunResult

PathLike = Union[str, Path]


def _ensure_parent(path: PathLike) -> None:
    """Create the target's parent directories (writers shouldn't fail on
    a fresh output tree)."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)


def write_series_csv(
    path: PathLike,
    series: Iterable[Tuple[float, float]],
    header: Tuple[str, str] = ("x", "y"),
) -> None:
    """Write one (x, y) series as a two-column CSV."""
    _ensure_parent(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for x, y in series:
            writer.writerow([x, y])


def write_cdf_csv(path: PathLike, samples: Sequence[float], complementary: bool = False) -> None:
    """Write the empirical CDF (or CCDF) of a sample set as CSV."""
    points = ccdf(samples) if complementary else cdf(samples)
    header = ("value", "ccdf" if complementary else "cdf")
    write_series_csv(path, points, header)


def write_matrix_csv(
    path: PathLike,
    matrix: Dict[Tuple[float, float], float],
    row_label: str = "lte_mbps",
    col_label: str = "wifi_mbps",
) -> None:
    """Write a (wifi, lte) -> value matrix as a long-form CSV."""
    _ensure_parent(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([col_label, row_label, "value"])
        for (col, row), value in sorted(matrix.items()):
            writer.writerow([col, row, value])


#: Wire-format version written by :func:`streaming_result_to_dict`.
#: v1 (unversioned) was a flat lossy summary; v2 embeds the spec and every
#: field needed to rebuild the :class:`StreamingRunResult` exactly, and is
#: the executor's cache/worker format.
STREAMING_RESULT_SCHEMA_VERSION = 2


def streaming_result_to_dict(result: "StreamingRunResult") -> Dict:
    """Serialize a streaming run losslessly (JSON-compatible).

    The flat summary keys of the original (v1) format are kept for
    plotting scripts; on top of them the dict carries ``schema_version``,
    the run's spec (``spec`` -- the config as plain data, replacing the
    embedded live config object), the raw per-packet samples, and the
    recorded trace series (as data, not a live
    :class:`~repro.sim.trace.TraceRecorder`).
    :func:`streaming_result_from_dict` inverts it exactly.
    """
    metrics = result.metrics
    data = {
        "schema_version": STREAMING_RESULT_SCHEMA_VERSION,
        "kind": "streaming",
        "spec": result.config.to_dict(),
        "scheduler": result.config.scheduler,
        "wifi_mbps": result.config.wifi_mbps,
        "lte_mbps": result.config.lte_mbps,
        "video_duration": result.config.video_duration,
        "seed": result.config.seed,
        "finished": result.finished,
        "average_bitrate_bps": metrics.average_bitrate_bps,
        "steady_average_bitrate_bps": metrics.steady_average_bitrate_bps,
        "average_chunk_throughput_bps": result.average_chunk_throughput_bps,
        "steady_average_throughput_bps": metrics.steady_average_throughput_bps,
        "fraction_fast": result.fraction_fast,
        "fast_interface": result.fast_interface,
        "iw_resets": dict(result.iw_resets_by_interface),
        "idle_resets": dict(result.idle_resets_by_interface),
        "mean_rtt_s": dict(result.mean_rtt_by_interface),
        "rebuffer_time_s": metrics.rebuffer_time,
        "rebuffer_events": metrics.rebuffer_events,
        "reinjections": result.reinjections,
        "chunks": [
            {
                "index": c.index,
                "representation": c.representation.name,
                "bitrate_bps": c.representation.bitrate_bps,
                "requested_at": c.requested_at,
                "completed_at": c.completed_at,
                "size": c.size,
                "throughput_bps": c.throughput_bps,
            }
            for c in metrics.chunks
        ],
        "payload_by_interface": dict(result.payload_by_interface),
        "ooo_delays": list(result.ooo_delays),
        "last_packet_gaps": list(result.last_packet_gaps),
        "startup_completed_at": metrics.startup_completed_at,
        "finished_at": metrics.finished_at,
        "trace": (
            None
            if result.trace is None
            else {name: [list(s) for s in result.trace.series(name)]
                  for name in result.trace.names()}
        ),
    }
    # Additive field: emitted only when a perf record was attached, so
    # payloads (and cached digests) without one are byte-identical to v2.
    if result.perf is not None:
        data["perf"] = dict(result.perf)
    return data


def streaming_result_from_dict(data: Dict) -> "StreamingRunResult":
    """Rebuild a :class:`StreamingRunResult` from its serialized form.

    Only understands ``schema_version`` 2 (v1 summaries are lossy and
    cannot be rebuilt).
    """
    from repro.apps.dash.media import Representation
    from repro.apps.dash.player import ChunkRecord, StreamingMetrics
    from repro.experiments.runner import StreamingRunConfig, StreamingRunResult
    from repro.sim.trace import TraceRecorder

    version = data.get("schema_version")
    if version != STREAMING_RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"cannot rebuild a streaming result from schema_version "
            f"{version!r} (expected {STREAMING_RESULT_SCHEMA_VERSION})"
        )
    config = StreamingRunConfig.from_dict(data["spec"])
    metrics = StreamingMetrics(
        chunks=[
            ChunkRecord(
                index=c["index"],
                representation=Representation(
                    c["representation"], c["bitrate_bps"]
                ),
                requested_at=c["requested_at"],
                completed_at=c["completed_at"],
                size=c["size"],
            )
            for c in data["chunks"]
        ],
        rebuffer_time=data["rebuffer_time_s"],
        rebuffer_events=data["rebuffer_events"],
        startup_completed_at=data["startup_completed_at"],
        finished_at=data["finished_at"],
    )
    trace = None
    if data["trace"] is not None:
        trace = TraceRecorder()
        for name, samples in data["trace"].items():
            trace.extend(name, [(t, v) for t, v in samples])
    return StreamingRunResult(
        config=config,
        metrics=metrics,
        finished=data["finished"],
        fast_interface=data["fast_interface"],
        payload_by_interface=dict(data["payload_by_interface"]),
        iw_resets_by_interface=dict(data["iw_resets"]),
        idle_resets_by_interface=dict(data["idle_resets"]),
        mean_rtt_by_interface=dict(data["mean_rtt_s"]),
        ooo_delays=list(data["ooo_delays"]),
        last_packet_gaps=list(data["last_packet_gaps"]),
        reinjections=data["reinjections"],
        trace=trace,
        perf=data.get("perf"),
    )


def write_streaming_results_json(
    path: PathLike, results: Sequence["StreamingRunResult"]
) -> None:
    """Dump a batch of streaming runs as a JSON array."""
    _ensure_parent(path)
    payload: List[Dict] = [streaming_result_to_dict(r) for r in results]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_streaming_results_json(path: PathLike) -> List[Dict]:
    """Read back a batch written by :func:`write_streaming_results_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ValueError(f"{path!s}: expected a JSON array of run summaries")
    return payload
