"""Export experiment results to JSON and CSV for external plotting.

The benchmark harnesses write human-readable tables; these helpers write
machine-readable artifacts: CDF/CCDF series, grid matrices, and streaming
run summaries, in formats gnuplot/matplotlib/pandas ingest directly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple, Union

from repro.metrics.stats import cdf, ccdf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import StreamingRunResult

PathLike = Union[str, Path]


def write_series_csv(
    path: PathLike,
    series: Iterable[Tuple[float, float]],
    header: Tuple[str, str] = ("x", "y"),
) -> None:
    """Write one (x, y) series as a two-column CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for x, y in series:
            writer.writerow([x, y])


def write_cdf_csv(path: PathLike, samples: Sequence[float], complementary: bool = False) -> None:
    """Write the empirical CDF (or CCDF) of a sample set as CSV."""
    points = ccdf(samples) if complementary else cdf(samples)
    header = ("value", "ccdf" if complementary else "cdf")
    write_series_csv(path, points, header)


def write_matrix_csv(
    path: PathLike,
    matrix: Dict[Tuple[float, float], float],
    row_label: str = "lte_mbps",
    col_label: str = "wifi_mbps",
) -> None:
    """Write a (wifi, lte) -> value matrix as a long-form CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([col_label, row_label, "value"])
        for (col, row), value in sorted(matrix.items()):
            writer.writerow([col, row, value])


def streaming_result_to_dict(result: "StreamingRunResult") -> Dict:
    """Flatten a streaming run into a JSON-serializable summary."""
    metrics = result.metrics
    return {
        "scheduler": result.config.scheduler,
        "wifi_mbps": result.config.wifi_mbps,
        "lte_mbps": result.config.lte_mbps,
        "video_duration": result.config.video_duration,
        "seed": result.config.seed,
        "finished": result.finished,
        "average_bitrate_bps": metrics.average_bitrate_bps,
        "steady_average_bitrate_bps": metrics.steady_average_bitrate_bps,
        "average_chunk_throughput_bps": result.average_chunk_throughput_bps,
        "steady_average_throughput_bps": metrics.steady_average_throughput_bps,
        "fraction_fast": result.fraction_fast,
        "fast_interface": result.fast_interface,
        "iw_resets": dict(result.iw_resets_by_interface),
        "idle_resets": dict(result.idle_resets_by_interface),
        "mean_rtt_s": dict(result.mean_rtt_by_interface),
        "rebuffer_time_s": metrics.rebuffer_time,
        "rebuffer_events": metrics.rebuffer_events,
        "reinjections": result.reinjections,
        "chunks": [
            {
                "index": c.index,
                "representation": c.representation.name,
                "bitrate_bps": c.representation.bitrate_bps,
                "requested_at": c.requested_at,
                "completed_at": c.completed_at,
                "size": c.size,
                "throughput_bps": c.throughput_bps,
            }
            for c in metrics.chunks
        ],
    }


def write_streaming_results_json(
    path: PathLike, results: Sequence["StreamingRunResult"]
) -> None:
    """Dump a batch of streaming runs as a JSON array."""
    payload: List[Dict] = [streaming_result_to_dict(r) for r in results]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_streaming_results_json(path: PathLike) -> List[Dict]:
    """Read back a batch written by :func:`write_streaming_results_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ValueError(f"{path!s}: expected a JSON array of run summaries")
    return payload
