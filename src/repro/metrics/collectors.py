"""Runtime collectors: periodic samplers and throughput meters.

The paper's trace figures (CWND over time, send-buffer occupancy) are
sampled periodically in the kernel; :class:`PeriodicSampler` does the same
against any zero-argument probe.  :class:`ThroughputMeter` integrates
delivered bytes into interval throughputs (Figs 6, 16, 22).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


class PeriodicSampler:
    """Samples named probes into a :class:`TraceRecorder` at a fixed period.

    >>> # sampler = PeriodicSampler(sim, trace, period=0.05)
    >>> # sampler.add("cwnd.lte", lambda: subflow.cwnd)
    >>> # sampler.start(until=600.0)
    """

    def __init__(self, sim: Simulator, trace: TraceRecorder, period: float) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.sim = sim
        self.trace = trace
        self.period = period
        self._probes: Dict[str, Callable[[], float]] = {}
        self._until: Optional[float] = None
        self._started = False

    def add(self, series: str, probe: Callable[[], float]) -> None:
        """Register a probe; its value is recorded under ``series``."""
        self._probes[series] = probe

    def start(self, until: Optional[float] = None) -> None:
        """Begin sampling now and every ``period`` thereafter."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self._until = until
        self._tick()

    def _tick(self) -> None:
        now = self.sim.now
        if self._until is not None and now > self._until:
            return
        for series, probe in self._probes.items():
            self.trace.record(series, now, float(probe()))
        self.sim.schedule(self.period, self._tick)


class ThroughputMeter:
    """Accumulates byte deliveries and reports interval/average throughput."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.total_bytes = 0
        self.first_byte_at: Optional[float] = None
        self.last_byte_at: Optional[float] = None
        self._marks: List[Tuple[float, int]] = []

    def on_bytes(self, nbytes: int) -> None:
        """Feed a delivery event (wire this to the receiver callback)."""
        now = self.sim.now
        if self.first_byte_at is None:
            self.first_byte_at = now
        self.last_byte_at = now
        self.total_bytes += nbytes

    def mark(self) -> None:
        """Snapshot (now, total) -- delimits an interval of interest."""
        self._marks.append((self.sim.now, self.total_bytes))

    def interval_throughput_bps(self) -> List[float]:
        """Throughput of each interval between consecutive marks."""
        rates: List[float] = []
        for (t0, b0), (t1, b1) in zip(self._marks, self._marks[1:]):
            if t1 > t0:
                rates.append((b1 - b0) * 8.0 / (t1 - t0))
        return rates

    def average_throughput_bps(self, elapsed: Optional[float] = None) -> float:
        """Mean delivered rate over ``elapsed`` (or first-to-last byte)."""
        if elapsed is None:
            if self.first_byte_at is None or self.last_byte_at is None:
                return 0.0
            elapsed = self.last_byte_at - self.first_byte_at
        if elapsed <= 0:
            return 0.0
        return self.total_bytes * 8.0 / elapsed
