"""Per-subflow TCP machinery.

This package implements the sender-side TCP behaviour each MPTCP subflow
needs, at packet granularity:

* :class:`~repro.tcp.rtt.RttEstimator` -- RFC 6298 SRTT/RTTVAR/RTO plus the
  windowed RTT standard deviation ECF's ``delta`` margin uses.
* :mod:`~repro.tcp.cc` -- congestion controllers: per-subflow Reno, and the
  coupled MPTCP controllers LIA ("coupled", RFC 6356) and OLIA.
* :class:`~repro.tcp.subflow.Subflow` -- send window, per-segment selective
  acknowledgement, dupack fast retransmit, RTO with exponential backoff,
  and the RFC 5681/2861 idle congestion-window reset that Section 3.2 of
  the paper identifies as the root cause of fast-path under-utilization.
"""

from repro.tcp.rtt import RttEstimator
from repro.tcp.subflow import Subflow, SubflowStats, Segment

__all__ = ["RttEstimator", "Subflow", "SubflowStats", "Segment"]
