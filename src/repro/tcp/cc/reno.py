"""Uncoupled per-subflow Reno (NewReno-style AIMD).

Each subflow behaves like an independent TCP connection: in congestion
avoidance the window grows by one segment per window's worth of ACKs.
Useful as a baseline and for single-path sanity tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tcp.cc.base import CongestionController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tcp.subflow import Subflow


class RenoController(CongestionController):
    """Standard AIMD: +1/cwnd per acked segment in congestion avoidance."""

    name = "reno"

    __slots__ = ()

    def ca_increase(self, subflow: "Subflow") -> float:
        return 1.0 / max(subflow.cwnd, 1.0)
