"""CUBIC congestion control (Ha, Rhee, Xu -- the Linux default).

The paper's subflows run the coupled MPTCP controllers, but the testbed's
single-path TCP baseline (and any modern comparison point) runs CUBIC, so
the library provides it: window growth is a cubic function of time since
the last decrease, anchored at the pre-loss window ``w_max``::

    W(t) = C * (t - K)^3 + w_max,    K = cbrt(w_max * beta_drop / C)

with the standard TCP-friendliness lower bound (track what Reno would
achieve) and a gentler multiplicative decrease (0.7 rather than 0.5).

This is a per-subflow (uncoupled) controller: pair it with MPTCP only to
model "uncoupled CUBIC subflows", a configuration the MPTCP literature
uses as an upper bound on aggressiveness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.analysis import sanitize as _sanitize
from repro.tcp.cc.base import CongestionController, MIN_CWND

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tcp.subflow import Subflow

#: CUBIC scaling constant (RFC 8312).
C = 0.4

#: CUBIC multiplicative decrease factor (RFC 8312).
BETA_CUBIC = 0.7


class _CubicState:
    __slots__ = ("w_max", "epoch_start", "k", "reno_cwnd")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("w_max", "epoch_start", "k", "reno_cwnd")

    def __init__(self) -> None:
        self.w_max = 0.0
        self.epoch_start = -1.0
        self.k = 0.0
        self.reno_cwnd = 0.0


class CubicController(CongestionController):
    """RFC 8312 CUBIC, per-subflow."""

    name = "cubic"

    __slots__ = ("_state",)

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("_state",)

    def __init__(self) -> None:
        super().__init__()
        # Keyed by the subflow itself (identity hash), NOT id(subflow):
        # a snapshot restore builds new subflow objects, and object keys
        # follow them through the reference table while raw ids would
        # dangle and silently reset every CUBIC epoch.
        self._state: Dict["Subflow", _CubicState] = {}

    def _state_for(self, subflow: "Subflow") -> _CubicState:
        state = self._state.get(subflow)
        if state is None:
            state = _CubicState()
            self._state[subflow] = state
        return state

    def ca_increase(self, subflow: "Subflow") -> float:
        state = self._state_for(subflow)
        now = subflow.sim.now
        rtt = subflow.srtt_or_default()
        if state.epoch_start < 0:
            state.epoch_start = now
            if state.w_max < subflow.cwnd:
                state.w_max = subflow.cwnd
            state.k = ((state.w_max * (1.0 - BETA_CUBIC)) / C) ** (1.0 / 3.0)
            state.reno_cwnd = subflow.cwnd
        t = now - state.epoch_start + rtt
        target = C * (t - state.k) ** 3 + state.w_max
        # TCP-friendly region: emulate Reno's average rate.
        state.reno_cwnd += 3.0 * (1.0 - BETA_CUBIC) / (1.0 + BETA_CUBIC) / max(
            subflow.cwnd, 1.0
        )
        target = max(target, state.reno_cwnd)
        if target <= subflow.cwnd:
            # In the concave plateau: probe very gently.
            return 0.01 / max(subflow.cwnd, 1.0)
        # Spread the distance-to-target over one window of ACKs.
        return min(1.0, (target - subflow.cwnd) / max(subflow.cwnd, 1.0))

    def on_loss(self, subflow: "Subflow") -> None:
        state = self._state_for(subflow)
        state.w_max = subflow.cwnd
        state.epoch_start = -1.0
        subflow.ssthresh = max(subflow.cwnd * BETA_CUBIC, 2.0)
        subflow.cwnd = max(subflow.cwnd * BETA_CUBIC, MIN_CWND)
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.cwnd(subflow)

    def on_rto(self, subflow: "Subflow") -> None:
        state = self._state_for(subflow)
        state.w_max = subflow.cwnd
        state.epoch_start = -1.0
        super().on_rto(subflow)
