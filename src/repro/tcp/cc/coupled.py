"""Coupled congestion control (LIA, RFC 6356 / Wischik et al. NSDI'11).

The MPTCP default.  In congestion avoidance, for each ACK on subflow *i*::

    cwnd_i += min(alpha / cwnd_total, 1 / cwnd_i)

with::

    alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2

The coupling is the mechanism behind the paper's Section 3.2 observation:
when an idle reset collapses the fast subflow's CWND, the coupled increase
(shared ``alpha`` across subflows) grows it back slowly, so one reset hurts
the fast path for many RTTs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tcp.cc.base import CongestionController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tcp.subflow import Subflow

#: RTT assumed for a subflow before its first measurement.
DEFAULT_RTT = 0.1


class CoupledController(CongestionController):
    """RFC 6356 linked-increase algorithm."""

    name = "coupled"

    __slots__ = ()

    def alpha(self) -> float:
        """The LIA aggressiveness factor over all registered subflows."""
        total_cwnd = sum(sf.cwnd for sf in self.subflows)
        if total_cwnd <= 0:
            return 1.0
        best = 0.0
        denom = 0.0
        for sf in self.subflows:
            rtt = sf.rtt.smoothed_or(DEFAULT_RTT)
            best = max(best, sf.cwnd / (rtt * rtt))
            denom += sf.cwnd / rtt
        if denom <= 0:
            return 1.0
        return total_cwnd * best / (denom * denom)

    def ca_increase(self, subflow: "Subflow") -> float:
        total_cwnd = sum(sf.cwnd for sf in self.subflows)
        if total_cwnd <= 0:
            return 1.0 / max(subflow.cwnd, 1.0)
        coupled = self.alpha() / total_cwnd
        uncoupled = 1.0 / max(subflow.cwnd, 1.0)
        return min(coupled, uncoupled)
