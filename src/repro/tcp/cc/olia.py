"""OLIA: opportunistic linked-increases algorithm (Khalili et al. CoNEXT'12).

For each ACK on subflow *i* in congestion avoidance::

    cwnd_i += ( cwnd_i / rtt_i^2 ) / ( sum_j cwnd_j / rtt_j )^2  +  alpha_i / cwnd_i

where ``alpha_i`` shifts traffic toward the *best* paths:

* ``M`` = paths with maximum ``l_i^2 / rtt_i`` (``l_i`` = bytes transmitted
  since the last loss, a proxy for path quality);
* ``B`` = best paths that currently have the largest window ("collected"
  paths in the paper's terminology are best paths with small windows);
* paths in ``M`` with small windows get ``+1/(|M| * n)``, paths with the
  largest window that are not in ``M`` get ``-1/(|B'| * n)``, everything
  else 0 (``n`` = number of paths).

This is the standard simulator-grade OLIA used outside the kernel; it
preserves OLIA's defining behaviour (probing toward better paths without
flappiness) which is all the paper relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.tcp.cc.base import CongestionController
from repro.tcp.cc.coupled import DEFAULT_RTT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tcp.subflow import Subflow

_EPS = 1e-12


class OliaController(CongestionController):
    """OLIA coupled increase."""

    name = "olia"

    __slots__ = ()

    def _quality(self, sf: "Subflow") -> float:
        rtt = sf.rtt.smoothed_or(DEFAULT_RTT)
        inter_loss = max(float(sf.stats.bytes_since_loss), float(sf.mss))
        return inter_loss * inter_loss / rtt

    def _alpha(self, subflow: "Subflow") -> float:
        paths: List["Subflow"] = self.subflows
        n = len(paths)
        if n <= 1:
            return 0.0
        best_quality = max(self._quality(sf) for sf in paths)
        best = [sf for sf in paths if self._quality(sf) >= best_quality * (1 - 1e-9)]
        max_cwnd = max(sf.cwnd for sf in paths)
        largest = [sf for sf in paths if sf.cwnd >= max_cwnd * (1 - 1e-9)]
        collected = [sf for sf in best if sf.cwnd < max_cwnd * (1 - 1e-9)]
        if collected:
            if subflow in collected:
                return 1.0 / (len(collected) * n)
            if subflow in largest:
                return -1.0 / (len(largest) * n)
            return 0.0
        return 0.0

    def ca_increase(self, subflow: "Subflow") -> float:
        denom = 0.0
        for sf in self.subflows:
            denom += sf.cwnd / sf.rtt.smoothed_or(DEFAULT_RTT)
        denom = max(denom, _EPS)
        rtt_i = subflow.rtt.smoothed_or(DEFAULT_RTT)
        # For a single path this reduces to Reno's 1/cwnd.
        increase = (subflow.cwnd / (rtt_i * rtt_i)) / (denom * denom)
        total = increase + self._alpha(subflow) / max(subflow.cwnd, 1.0)
        # Never shrink faster than a segment per ACK nor outgrow slow start.
        return max(-1.0, min(1.0, total))
