"""Congestion-controller interface.

A controller is attached to an MPTCP connection and consulted by each
subflow on acknowledgement and loss events.  Window state (``cwnd``,
``ssthresh``) lives on the subflow; the controller only decides how it
moves.  Slow start and the multiplicative decreases are common to all
controllers here (RFC 6356 couples only the congestion-avoidance
*increase*), so the base class implements them and subclasses override
:meth:`ca_increase`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.analysis import sanitize as _sanitize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tcp.subflow import Subflow

#: Minimum congestion window, in segments (RFC 5681 loss-window floor).
MIN_CWND = 1.0


class CongestionController:
    """Base class: per-subflow slow start + Reno-style decrease."""

    name = "base"

    __slots__ = ("_subflows",)

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("_subflows",)

    def __init__(self) -> None:
        self._subflows: List["Subflow"] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, subflow: "Subflow") -> None:
        """Attach a subflow; coupled controllers iterate the registry."""
        if subflow not in self._subflows:
            self._subflows.append(subflow)

    @property
    def subflows(self) -> List["Subflow"]:
        return self._subflows

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def on_ack(self, subflow: "Subflow", acked_segments: int = 1) -> None:
        """Grow the window on a (new, non-duplicate) acknowledgement."""
        for _ in range(acked_segments):
            if subflow.cwnd < subflow.ssthresh:
                subflow.cwnd += 1.0  # slow start
            else:
                subflow.cwnd += self.ca_increase(subflow)
        subflow.cwnd = min(subflow.cwnd, subflow.max_cwnd)
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.cwnd(subflow)

    def on_loss(self, subflow: "Subflow") -> None:
        """Fast-retransmit decrease: halve, per RFC 5681/6356."""
        subflow.ssthresh = max(subflow.flight / 2.0, 2.0)
        subflow.cwnd = max(subflow.ssthresh, MIN_CWND)
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.cwnd(subflow)

    def on_rto(self, subflow: "Subflow") -> None:
        """Timeout: collapse to one segment and re-enter slow start."""
        subflow.ssthresh = max(subflow.flight / 2.0, 2.0)
        subflow.cwnd = MIN_CWND
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.cwnd(subflow)

    # ------------------------------------------------------------------
    # Policy hook
    # ------------------------------------------------------------------
    def ca_increase(self, subflow: "Subflow") -> float:
        """Congestion-avoidance increase per acked segment (in segments)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(subflows={len(self._subflows)})"
