"""Congestion controllers.

The paper notes the heterogeneity pathology appears "regardless of the
congestion controller used (e.g., Olia)", so the library provides the three
controllers an MPTCP 0.89 deployment would realistically run:

* :class:`~repro.tcp.cc.reno.RenoController` -- uncoupled per-subflow Reno.
* :class:`~repro.tcp.cc.coupled.CoupledController` -- the "coupled"/LIA
  controller of RFC 6356 (Wischik et al.), the MPTCP default.
* :class:`~repro.tcp.cc.olia.OliaController` -- OLIA (Khalili et al.).

Controllers are connection-scoped objects: coupled variants read the CWNDs
of every subflow in the connection when computing an increase.
"""

from repro.tcp.cc.base import CongestionController
from repro.tcp.cc.reno import RenoController
from repro.tcp.cc.coupled import CoupledController
from repro.tcp.cc.cubic import CubicController
from repro.tcp.cc.olia import OliaController

_CONTROLLERS = {
    "reno": RenoController,
    "coupled": CoupledController,
    "lia": CoupledController,
    "olia": OliaController,
    "cubic": CubicController,
}

#: Canonical controller names (aliases included), for registry-aware
#: tooling such as ``repro.analysis.lint``.
CONTROLLER_NAMES = tuple(sorted(_CONTROLLERS))


def registered_controllers() -> frozenset:
    """Every name ``build(CcSpec.of(name))`` resolves (aliases included)."""
    return frozenset(_CONTROLLERS)


def build_controller(name: str, **params) -> CongestionController:
    """Instantiate a controller by kind name, passing constructor params.

    The registry entry point behind ``build(CcSpec.of(name, **params))``
    (:mod:`repro.core.spec`); always returns a fresh instance because
    coupled controllers keep connection-scoped state.
    """
    try:
        cls = _CONTROLLERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; "
            f"choose from {sorted(set(_CONTROLLERS))}"
        ) from None
    return cls(**params)


def make_controller(name: str) -> CongestionController:
    """Instantiate a controller by name ("reno", "coupled"/"lia", "olia")."""
    return build_controller(name)


__all__ = [
    "CONTROLLER_NAMES",
    "CongestionController",
    "RenoController",
    "CoupledController",
    "OliaController",
    "CubicController",
    "build_controller",
    "make_controller",
    "registered_controllers",
]
