"""RTT estimation per RFC 6298, extended with a windowed standard deviation.

The classic estimator keeps the exponentially weighted SRTT and RTTVAR used
for the retransmission timeout.  ECF additionally needs ``sigma``, "the
standard deviation of RTT" per subflow (Section 4), which we compute over a
sliding window of recent samples -- matching how the kernel implementation
tracks recent variability rather than an all-time statistic.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

#: RFC 6298 smoothing gains.
ALPHA = 0.125
BETA = 0.25

#: Linux TCP_RTO_MIN: the floor on the *variance term* of the RTO, so the
#: effective RTO is never below SRTT + 200 ms.  Flooring the whole RTO at
#: 200 ms instead (a common simulator shortcut) makes idle-restart fire on
#: the short think-gaps between back-to-back HTTP requests, which real
#: kernels do not do.
MIN_RTO_VAR = 0.2
MAX_RTO = 60.0

#: Number of recent samples over which ECF's sigma is computed.
SIGMA_WINDOW = 16


class RttEstimator:
    """Tracks SRTT, RTTVAR, RTO, and a windowed RTT standard deviation.

    >>> est = RttEstimator()
    >>> est.add_sample(0.1)
    >>> round(est.srtt, 3)
    0.1
    >>> est.add_sample(0.1)
    >>> est.rto >= est.srtt + MIN_RTO_VAR
    True
    """

    __slots__ = (
        "min_rto_var",
        "max_rto",
        "srtt",
        "rttvar",
        "samples",
        "_sum",
        "_window",
    )

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "min_rto_var",
        "max_rto",
        "srtt",
        "rttvar",
        "samples",
        "_sum",
        "_window",
    )

    def __init__(
        self,
        initial_rtt: Optional[float] = None,
        min_rto_var: float = MIN_RTO_VAR,
        max_rto: float = MAX_RTO,
        sigma_window: int = SIGMA_WINDOW,
    ) -> None:
        if sigma_window < 2:
            raise ValueError(f"sigma_window must be >= 2, got {sigma_window!r}")
        self.min_rto_var = min_rto_var
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.samples = 0
        self._sum = 0.0
        self._window: Deque[float] = deque(maxlen=sigma_window)
        if initial_rtt is not None:
            self.add_sample(initial_rtt)

    def add_sample(self, rtt: float) -> None:
        """Feed one round-trip measurement (seconds).

        Retransmitted segments must not be sampled (Karn's algorithm); the
        subflow enforces that before calling here.
        """
        if rtt <= 0:
            raise ValueError(f"rtt sample must be positive, got {rtt!r}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1.0 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1.0 - ALPHA) * self.srtt + ALPHA * rtt
        self.samples += 1
        self._sum += rtt
        self._window.append(rtt)

    @property
    def rto(self) -> float:
        """Retransmission timeout, Linux-style: SRTT + max(200ms, 4*RTTVAR)."""
        if self.srtt is None:
            return 1.0  # RFC 6298 initial RTO before any measurement
        raw = self.srtt + max(self.min_rto_var, 4.0 * self.rttvar)
        return min(self.max_rto, raw)

    @property
    def sigma(self) -> float:
        """Windowed RTT standard deviation (ECF's per-subflow sigma)."""
        n = len(self._window)
        if n < 2:
            return 0.0
        mean = sum(self._window) / n
        var = sum((x - mean) ** 2 for x in self._window) / (n - 1)
        return math.sqrt(var)

    @property
    def mean_rtt(self) -> float:
        """All-time mean of raw RTT samples (Table 2's 'average RTT')."""
        if self.samples == 0:
            return 0.0
        return self._sum / self.samples

    @property
    def has_estimate(self) -> bool:
        """True once at least one valid sample has been absorbed."""
        return self.srtt is not None

    def smoothed_or(self, default: float) -> float:
        """SRTT, or ``default`` before the first sample."""
        return self.srtt if self.srtt is not None else default

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.srtt is None:
            return "RttEstimator(no samples)"
        return (
            f"RttEstimator(srtt={self.srtt * 1e3:.1f} ms, "
            f"rttvar={self.rttvar * 1e3:.1f} ms, rto={self.rto:.3f} s, "
            f"sigma={self.sigma * 1e3:.1f} ms)"
        )
