"""Sender-side TCP subflow.

One :class:`Subflow` models everything a Linux MPTCP subflow does on the
send side, at segment granularity:

* congestion window / slow-start threshold, moved by a pluggable
  congestion controller (Reno, coupled/LIA, OLIA);
* per-segment selective acknowledgement with FACK-style dupack loss
  detection (a segment is considered lost once three later segments have
  been acked) and fast retransmit with NewReno-style recovery episodes;
* retransmission timeout with exponential backoff (RFC 6298);
* **idle restart** (RFC 5681 / RFC 2861): if the subflow has been idle for
  longer than its RTO, the next transmission restarts from the initial
  window.  Section 3.2 of the paper identifies this reset -- triggered by
  the fast subflow sitting idle while the slow one finishes -- as the root
  cause of MPTCP's degradation on heterogeneous paths, so the reset is
  individually countable (Table 3) and can be disabled (Fig 6).

The subflow does not know about data sequence numbers beyond carrying
them: reliability is subflow-level, ordering is the MPTCP receiver's job.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from repro.analysis import events as _events
from repro.analysis import sanitize as _sanitize
from repro.net.packet import ACK_SIZE, HEADER_SIZE, MSS, Packet
from repro.net.path import Path
from repro.perf import profiler as _profiler
from repro.sim.engine import Simulator, Timer
from repro.tcp.rtt import RttEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tcp.cc.base import CongestionController

#: RFC 6928 initial congestion window, segments.
INITIAL_WINDOW = 10

#: FACK reordering threshold: segments acked beyond one before it is lost.
DUP_THRESHOLD = 3

#: Maximum RTO backoff multiplier.
MAX_BACKOFF = 64.0

_EPS = 1e-9


class Segment:
    """One transmitted segment awaiting acknowledgement."""

    __slots__ = ("seq", "dsn", "payload", "sent_time", "retransmitted", "acked", "lost", "in_flight")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("seq", "dsn", "payload", "sent_time", "retransmitted", "acked", "lost", "in_flight")

    def __init__(self, seq: int, dsn: int, payload: int, sent_time: float) -> None:
        self.seq = seq
        self.dsn = dsn
        self.payload = payload
        self.sent_time = sent_time
        self.retransmitted = False
        self.acked = False
        self.lost = False
        self.in_flight = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f for f, on in (("A", self.acked), ("L", self.lost), ("R", self.retransmitted)) if on
        )
        return f"Segment(seq={self.seq}, dsn={self.dsn}, {flags or '-'})"


class SubflowStats:
    """Lifetime counters for one subflow."""

    __slots__ = (
        "segments_sent",
        "segments_retransmitted",
        "bytes_sent",
        "bytes_acked",
        "payload_bytes_sent",
        "idle_resets",
        "rto_events",
        "fast_retransmits",
        "bytes_since_loss",
        "penalizations",
        "last_data_sent_at",
        "last_data_acked_at",
    )

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "segments_sent",
        "segments_retransmitted",
        "bytes_sent",
        "bytes_acked",
        "payload_bytes_sent",
        "idle_resets",
        "rto_events",
        "fast_retransmits",
        "bytes_since_loss",
        "penalizations",
        "last_data_sent_at",
        "last_data_acked_at",
    )

    def __init__(self) -> None:
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.payload_bytes_sent = 0
        self.idle_resets = 0
        self.rto_events = 0
        self.fast_retransmits = 0
        self.bytes_since_loss = 0
        self.penalizations = 0
        self.last_data_sent_at: Optional[float] = None
        self.last_data_acked_at: Optional[float] = None

    @property
    def iw_resets(self) -> int:
        """Slow-start re-entries counted as Table 3 counts them: idle
        restarts plus loss timeouts."""
        return self.idle_resets + self.rto_events


class Subflow:
    """Sender-side state machine for one MPTCP subflow.

    Parameters
    ----------
    sim: the simulator.
    path: the bidirectional path this subflow runs over.
    cc: connection-level congestion controller (registers this subflow).
    sf_id: index within the owning connection.
    mss: maximum segment payload, bytes.
    initial_window: IW in segments (RFC 6928 default 10, as the paper notes).
    idle_reset_enabled: apply the RFC 5681 idle restart (Fig 6 toggles it).
    established_at: simulated time at which the subflow may carry data
        (secondary subflows join one handshake later than the primary).
    max_cwnd: cap on cwnd growth, segments.
    """

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "sim",
        "path",
        "cc",
        "sf_id",
        "uid",
        "mss",
        "initial_window",
        "idle_reset_enabled",
        "established_at",
        "max_cwnd",
        "cwnd",
        "ssthresh",
        "rtt",
        "stats",
        "next_seq",
        "una",
        "highest_acked",
        "receiver_callback",
        "on_ack_processed",
        "on_rto",
        "_outstanding",
        "_in_flight",
        "_retx_queue",
        "_in_recovery",
        "_recovery_point",
        "_rto_timer",
        "_rto_deadline",
        "_rto_backoff",
        "_last_send_time",
        "_loss_scanned_to",
        "_default_rtt",
    )

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        cc: "CongestionController",
        sf_id: int = 0,
        mss: int = MSS,
        initial_window: int = INITIAL_WINDOW,
        idle_reset_enabled: bool = True,
        established_at: float = 0.0,
        max_cwnd: float = 10_000.0,
    ) -> None:
        self.sim = sim
        self.path = path
        self.cc = cc
        self.sf_id = sf_id
        self.uid = _events.next_uid()
        self.mss = int(mss)
        self.initial_window = float(initial_window)
        self.idle_reset_enabled = idle_reset_enabled
        self.established_at = float(established_at)
        self.max_cwnd = float(max_cwnd)

        self.cwnd: float = float(initial_window)
        self.ssthresh: float = float("inf")
        self.rtt = RttEstimator()
        self.stats = SubflowStats()

        self.next_seq = 0
        self.una = 0
        self.highest_acked = -1
        self._outstanding: Dict[int, Segment] = {}
        self._in_flight = 0
        self._retx_queue: Deque[Segment] = deque()
        self._in_recovery = False
        self._recovery_point = -1
        self._rto_timer: Optional[Timer] = None
        self._rto_deadline = 0.0
        self._rto_backoff = 1.0
        self._last_send_time: Optional[float] = None
        self._loss_scanned_to = 0
        # Pre-handshake RTT guess: base propagation + one MSS serialization.
        self._default_rtt = path.base_rtt + self.mss * 8.0 / path.rate_bps

        # Wired by the owning connection:
        #   receiver_callback(packet) runs at the client when data arrives.
        #   on_ack_processed(subflow, packet, newly_acked) runs at the
        #   server after subflow-level ack processing.
        #   on_rto(subflow) runs after a retransmission timeout (the meta
        #   layer uses it to reinject stranded data on other subflows).
        self.receiver_callback: Optional[Callable[[Packet], None]] = None
        self.on_ack_processed: Optional[Callable[["Subflow", Packet, bool], None]] = None
        self.on_rto: Optional[Callable[["Subflow"], None]] = None

        cc.register(self)

    # ------------------------------------------------------------------
    # Capacity queries (what schedulers look at)
    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.sim.now >= self.established_at

    @property
    def flight(self) -> int:
        """Segments currently in the network."""
        return self._in_flight

    @property
    def outstanding_segments(self) -> int:
        """Unacked segments, whether in flight or awaiting retransmit."""
        return len(self._outstanding)

    @property
    def outstanding_bytes(self) -> int:
        """Unacked payload bytes -- the subflow-level send buffer (Fig 3)."""
        return sum(seg.payload for seg in self._outstanding.values())

    def has_window_space(self) -> bool:
        """True if the congestion window admits one more segment."""
        return self._in_flight + 1 <= self.cwnd + _EPS

    def can_send(self) -> bool:
        """True if the scheduler may assign *new* data to this subflow."""
        return self.established and not self._retx_queue and self.has_window_space()

    @property
    def srtt(self) -> Optional[float]:
        return self.rtt.srtt

    def srtt_or_default(self) -> float:
        """SRTT, or the path's base RTT before the first measurement."""
        srtt = self.rtt.srtt
        return srtt if srtt is not None else self._default_rtt

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_segment(self, dsn: int, payload: int) -> Segment:
        """Transmit one new segment carrying ``payload`` bytes at ``dsn``.

        The caller (the MPTCP connection) must have checked
        :meth:`can_send`; violating that is a programming error.
        """
        if not self.can_send():
            raise RuntimeError(f"send_segment() on subflow without window space: {self!r}")
        if payload <= 0 or payload > self.mss:
            raise ValueError(f"payload must be in (0, mss], got {payload!r}")
        self._maybe_idle_restart()
        segment = Segment(self.next_seq, dsn, payload, self.sim.now)
        self.next_seq += 1
        self._outstanding[segment.seq] = segment
        self._transmit(segment, retransmission=False)
        return segment

    def _maybe_idle_restart(self) -> None:
        """RFC 5681: collapse cwnd to IW after an idle period > RTO."""
        if not self.idle_reset_enabled:
            return
        if self._last_send_time is None or self._in_flight > 0 or self._retx_queue:
            return
        idle = self.sim.now - self._last_send_time
        if idle > self.rtt.rto and self.cwnd > self.initial_window:
            # Linux tcp_cwnd_restart(): ssthresh = tcp_current_ssthresh()
            # = max(ssthresh, 3/4 * cwnd), then cwnd collapses to IW.  The
            # subflow therefore slow-starts back toward 3/4 of its decayed
            # window -- still costing several RTTs per object, which is the
            # recurring tax Section 3.2 identifies.
            old_cwnd = self.cwnd
            if self.ssthresh == float("inf"):
                self.ssthresh = 0.75 * self.cwnd
            else:
                self.ssthresh = max(self.ssthresh, 0.75 * self.cwnd)
            self.cwnd = self.initial_window
            self.stats.idle_resets += 1
            if _events.LOG is not None:
                _events.LOG.emit(_events.IdleReset(
                    t=self.sim.now,
                    sf_uid=self.uid,
                    sf_id=self.sf_id,
                    idle=idle,
                    rto=self.rtt.rto,
                    old_cwnd=old_cwnd,
                    new_cwnd=self.cwnd,
                    ssthresh=self.ssthresh,
                ))

    def _transmit(self, segment: Segment, retransmission: bool) -> None:
        now = self.sim.now
        stats = self.stats
        if retransmission:
            segment.retransmitted = True
            segment.lost = False
            stats.segments_retransmitted += 1
        else:
            stats.payload_bytes_sent += segment.payload
        segment.sent_time = now
        segment.in_flight = True
        self._in_flight += 1
        self._last_send_time = now
        stats.segments_sent += 1
        stats.bytes_sent += segment.payload + HEADER_SIZE
        stats.last_data_sent_at = now
        packet = Packet.data_segment(
            segment.payload + HEADER_SIZE,
            segment.payload,
            self.sf_id,
            segment.seq,
            segment.dsn,
            now,
            segment.retransmitted,
        )
        if self.receiver_callback is None:
            raise RuntimeError("subflow.receiver_callback not wired")
        if _events.LOG is not None:
            _events.LOG.emit(_events.SegmentSent(
                t=now,
                sf_uid=self.uid,
                sf_id=self.sf_id,
                seq=segment.seq,
                dsn=segment.dsn,
                payload=segment.payload,
                retransmitted=segment.retransmitted,
                cwnd=self.cwnd,
                in_flight=self._in_flight,
            ))
        self.path.forward.send(packet, self.receiver_callback)
        self._arm_rto()

    def send_ack(self, ack_seq: int, data_ack: int, recv_window: int) -> None:
        """Receiver-side helper: emit a pure ACK back to the sender."""
        ack = Packet.pure_ack(self.sf_id, ack_seq, data_ack, 0.0, recv_window)
        self.path.reverse.send(ack, self.handle_ack)

    # ------------------------------------------------------------------
    # Acknowledgement processing
    # ------------------------------------------------------------------
    def handle_ack(self, packet: Packet) -> None:
        """Process one arriving ACK (selective, per-segment)."""
        segment = self._outstanding.get(packet.ack_seq)
        newly_acked = segment is not None and not segment.acked
        if newly_acked:
            self._absorb_ack(segment)
        if self.on_ack_processed is not None:
            self.on_ack_processed(self, packet, newly_acked)

    def _absorb_ack(self, segment: Segment) -> None:
        now = self.sim.now
        segment.acked = True
        if segment.in_flight:
            segment.in_flight = False
            self._in_flight -= 1
        if segment.lost and self._retx_queue and segment in self._retx_queue:
            self._retx_queue.remove(segment)
        if not segment.retransmitted:
            self.rtt.add_sample(now - segment.sent_time)
            self._rto_backoff = 1.0
        self.stats.bytes_acked += segment.payload
        self.stats.bytes_since_loss += segment.payload
        self.stats.last_data_acked_at = now
        if segment.seq > self.highest_acked:
            self.highest_acked = segment.seq
        self._advance_una()
        if self._in_recovery and self.una > self._recovery_point:
            self._in_recovery = False
        if not self._in_recovery:
            if _profiler.PROFILER is None:
                self.cc.on_ack(self, 1)
            else:
                _profiler.PROFILER.call("cc.update", self.cc.on_ack, self, 1)
        self._detect_losses()
        self._service_retransmissions()
        self._arm_rto()
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.subflow(self)
        if _events.LOG is not None:
            _events.LOG.emit(_events.AckProcessed(
                t=now,
                sf_uid=self.uid,
                sf_id=self.sf_id,
                seq=segment.seq,
                rtt_sampled=not segment.retransmitted,
                cwnd=self.cwnd,
                in_recovery=self._in_recovery,
                backoff=self._rto_backoff,
            ))

    def _advance_una(self) -> None:
        while self.una < self.next_seq:
            segment = self._outstanding.get(self.una)
            if segment is None or not segment.acked:
                break
            del self._outstanding[self.una]
            self.una += 1

    def _detect_losses(self) -> None:
        """FACK: mark unacked segments trailing the ack front by >= 3.

        A monotone scan pointer keeps this amortized O(1) per ACK: each
        sequence number is examined once.  A segment whose *retransmission*
        is also lost is therefore recovered by the RTO backstop rather than
        by dupacks -- the same compromise many real stacks make.
        """
        threshold = self.highest_acked - DUP_THRESHOLD + 1
        start = max(self.una, self._loss_scanned_to)
        if threshold <= start:
            return
        for seq in range(start, threshold):
            segment = self._outstanding.get(seq)
            if segment is None or segment.acked or segment.lost:
                continue
            self._mark_lost(segment)
        self._loss_scanned_to = threshold

    def _mark_lost(self, segment: Segment) -> None:
        segment.lost = True
        if segment.in_flight:
            segment.in_flight = False
            self._in_flight -= 1
        self._retx_queue.append(segment)
        if not self._in_recovery:
            self._in_recovery = True
            self._recovery_point = self.next_seq - 1
            self.stats.fast_retransmits += 1
            self.stats.bytes_since_loss = 0
            if _profiler.PROFILER is None:
                self.cc.on_loss(self)
            else:
                _profiler.PROFILER.call("cc.update", self.cc.on_loss, self)
            if _events.LOG is not None:
                _events.LOG.emit(_events.FastRetransmit(
                    t=self.sim.now,
                    sf_uid=self.uid,
                    sf_id=self.sf_id,
                    seq=segment.seq,
                    recovery_point=self._recovery_point,
                ))

    def _service_retransmissions(self) -> None:
        while self._retx_queue and self.has_window_space():
            segment = self._retx_queue.popleft()
            if segment.acked:
                continue
            self._transmit(segment, retransmission=True)

    # ------------------------------------------------------------------
    # Retransmission timeout
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        """Move the RTO deadline; reschedule the timer lazily.

        The deadline only ever moves later on ACK progress, so instead of
        cancel+push per ACK the live timer is kept and, when it fires
        early, put back to sleep until the real deadline.
        """
        if not self._outstanding:
            return  # a pending timer fires as a no-op; keep the reference
        timeout = min(MAX_BACKOFF, self._rto_backoff) * self.rtt.rto
        self._rto_deadline = self.sim.now + timeout
        if self._rto_timer is None or not self._rto_timer.active:
            self._rto_timer = self.sim.schedule(timeout, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if not self._outstanding:
            return
        if self.sim.now < self._rto_deadline - 1e-12:
            self._rto_timer = self.sim.schedule_at(self._rto_deadline, self._on_rto)
            return
        self.stats.rto_events += 1
        self.stats.bytes_since_loss = 0
        backoff_before = self._rto_backoff
        self._rto_backoff = min(MAX_BACKOFF, self._rto_backoff * 2.0)
        if _events.LOG is not None:
            _events.LOG.emit(_events.RtoFired(
                t=self.sim.now,
                sf_uid=self.uid,
                sf_id=self.sf_id,
                backoff_before=backoff_before,
                backoff_after=self._rto_backoff,
                rto=self.rtt.rto,
                outstanding=len(self._outstanding),
            ))
        if _profiler.PROFILER is None:
            self.cc.on_rto(self)
        else:
            _profiler.PROFILER.call("cc.update", self.cc.on_rto, self)
        self._in_recovery = True
        self._recovery_point = self.next_seq - 1
        # Everything unacked goes back to the retransmission queue in
        # sequence order; the window (now 1) meters it back out.
        self._retx_queue.clear()
        for seq in sorted(self._outstanding):
            segment = self._outstanding[seq]
            if segment.acked:
                continue
            if segment.in_flight:
                segment.in_flight = False
                self._in_flight -= 1
            segment.lost = True
            self._retx_queue.append(segment)
        self._service_retransmissions()
        self._arm_rto()
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.subflow(self)
        if self.on_rto is not None:
            self.on_rto(self)

    # ------------------------------------------------------------------
    # MPTCP hooks
    # ------------------------------------------------------------------
    def penalize(self) -> None:
        """Halve the window (opportunistic-retransmission penalization)."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = max(self.cwnd / 2.0, 1.0)
        self.stats.penalizations += 1

    def oldest_unacked_dsn(self) -> Optional[int]:
        """DSN of the oldest unacked segment (reinjection candidate)."""
        segment = self._outstanding.get(self.una)
        return segment.dsn if segment is not None else None

    def outstanding_dsn_ranges(self) -> list:
        """(dsn, payload) of every unacked segment, in sequence order.

        The meta layer reinjects these on other subflows when this one
        times out.
        """
        return [
            (segment.dsn, segment.payload)
            for seq, segment in sorted(self._outstanding.items())
            if not segment.acked
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Subflow(id={self.sf_id}, path={self.path.name!r}, "
            f"cwnd={self.cwnd:.1f}, flight={self._in_flight}, "
            f"una={self.una}, next={self.next_seq})"
        )
