"""SQLite-backed campaign store: sweeps as durable, resumable state.

A campaign is a named batch of experiment jobs.  Each job is one
:mod:`repro.experiments.spec` spec, keyed by its content address
(:func:`~repro.experiments.spec.spec_hash`), moving through a small state
machine::

    pending --> running --> done
       |           |
       |           +-----> failed --> pending   (requeue)
       +--> done   (cache hit, no claim needed)

All state lives in one SQLite file, so a campaign killed at job 7312 of
10000 resumes exactly where it stopped: ``reset_running`` returns
orphaned ``running`` jobs to ``pending``, and the drain picks them up
again (re-executed jobs that already finished resolve from the result
cache, not by re-simulating).  This is the fg-inet ``mkjobs`` /
``runjobs`` / ``rerunTasks`` shell loop absorbed as library code.

The store also indexes the run journal (every
:class:`~repro.obs.journal.RunJournal` record of a campaign's drains)
and the postmortem bundles of failed jobs, so triage starts from SQL
rather than from grepping JSONL files.

Invariants enforced here rather than by callers:

* job identity is ``(campaign, spec_hash)`` -- re-submitting a spec that
  is already part of the campaign is a no-op (idempotent submit);
* every status change must be a legal transition (``_TRANSITIONS``);
* claims are **process-atomic**: :meth:`CampaignStore.claim` is a single
  conditional ``UPDATE ... WHERE status = 'pending'``, so two runners
  draining the same campaign race safely -- exactly one wins each job,
  the loser just moves on;
* claiming a job for execution bumps its attempt counter, and
  ``requeue_failed`` refuses jobs that already burned ``max_attempts``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.spec import canonical_json, spec_hash, spec_to_dict

PathLike = Union[str, "os.PathLike[str]"]

#: Job states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Legal status transitions.  ``pending -> done`` is the cache-hit
#: short-circuit (the job never needed a worker); ``running -> pending``
#: is crash recovery; ``failed -> pending`` is a requeue.
_TRANSITIONS: Dict[str, FrozenSet[str]] = {
    PENDING: frozenset({RUNNING, DONE}),
    RUNNING: frozenset({DONE, FAILED, PENDING}),
    FAILED: frozenset({PENDING}),
    DONE: frozenset(),
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    backend TEXT NOT NULL,
    cache_dir TEXT,
    created_wall REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    spec_hash TEXT NOT NULL,
    kind TEXT NOT NULL,
    spec TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    wall_s REAL,
    result_path TEXT,
    error_type TEXT,
    error_message TEXT,
    postmortem TEXT,
    updated_wall REAL NOT NULL,
    UNIQUE (campaign_id, spec_hash)
);
CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (campaign_id, status);
CREATE TABLE IF NOT EXISTS journal (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    record TEXT NOT NULL,
    entry TEXT NOT NULL
);
"""


class TransitionError(RuntimeError):
    """An illegal job status transition was attempted."""


@dataclass(frozen=True)
class CampaignRow:
    """One campaign, as stored."""

    id: int
    name: str
    backend: Dict[str, Any]
    cache_dir: Optional[str]
    created_wall: float


@dataclass(frozen=True)
class JobRow:
    """One job, as stored.  ``spec`` is the wire-format dict."""

    id: int
    campaign_id: int
    spec_hash: str
    kind: str
    spec: Dict[str, Any]
    status: str
    attempts: int
    wall_s: Optional[float]
    result_path: Optional[str]
    error_type: Optional[str]
    error_message: Optional[str]
    postmortem: Optional[str]


def _row_to_job(row: sqlite3.Row) -> JobRow:
    return JobRow(
        id=row["id"],
        campaign_id=row["campaign_id"],
        spec_hash=row["spec_hash"],
        kind=row["kind"],
        spec=json.loads(row["spec"]),
        status=row["status"],
        attempts=row["attempts"],
        wall_s=row["wall_s"],
        result_path=row["result_path"],
        error_type=row["error_type"],
        error_message=row["error_message"],
        postmortem=row["postmortem"],
    )


class CampaignStore:
    """Durable campaign/job state in one SQLite file.

    The connection commits per mutating call (autocommit via explicit
    ``commit()``), so a killed process loses at most the statement in
    flight -- SQLite's journal guarantees the file itself stays
    consistent.  Open the same path again to resume.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        # Concurrent drainers hit brief write locks; wait them out
        # instead of surfacing sqlite3.OperationalError to callers.
        self._conn.execute("PRAGMA busy_timeout = 5000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        #: Optional observer called as ``(campaign_id, spec_hash,
        #: old_status, new_status)`` after every committed state-machine
        #: transition (including :meth:`claim` wins).  The telemetry
        #: registry counts transitions through this without the store
        #: knowing metrics exist.  Failures propagate, mirroring the
        #: journal-observer contract.
        self.on_transition: Optional[Callable[[int, str, str, str], None]] = None

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- campaigns -------------------------------------------------------
    def ensure_campaign(
        self,
        name: str,
        backend: Dict[str, Any],
        cache_dir: Optional[str] = None,
    ) -> int:
        """Create the campaign or return the existing one's id.

        Re-opening an existing campaign with a *different* backend config
        is allowed (you may resume a pool campaign inline); the stored
        backend keeps describing the original submission.
        """
        row = self._conn.execute(
            "SELECT id FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is not None:
            return int(row["id"])
        cursor = self._conn.execute(
            "INSERT INTO campaigns (name, backend, cache_dir, created_wall)"
            " VALUES (?, ?, ?, ?)",
            # Bookkeeping timestamp, not simulation state.
            (name, canonical_json(backend), cache_dir, time.time()),  # repro: noqa[RPR101]
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def campaign(self, name: str) -> Optional[CampaignRow]:
        row = self._conn.execute(
            "SELECT * FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        return CampaignRow(
            id=row["id"],
            name=row["name"],
            backend=json.loads(row["backend"]),
            cache_dir=row["cache_dir"],
            created_wall=row["created_wall"],
        )

    def campaigns(self) -> List[CampaignRow]:
        names = [
            row["name"]
            for row in self._conn.execute(
                "SELECT name FROM campaigns ORDER BY id"
            ).fetchall()
        ]
        found = [self.campaign(name) for name in names]
        return [row for row in found if row is not None]

    # -- jobs ------------------------------------------------------------
    def add_jobs(self, campaign_id: int, specs: Sequence[Any]) -> int:
        """Register specs as jobs; returns how many were actually new.

        Identity is the spec hash: a spec already present in the campaign
        (same content, whatever its construction) is skipped, so
        re-submitting a sweep after a crash or an extension is free.
        """
        added = 0
        for spec in specs:
            key = spec_hash(spec)
            wire = spec_to_dict(spec)
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO jobs"
                " (campaign_id, spec_hash, kind, spec, status, updated_wall)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    key,
                    wire["kind"],
                    canonical_json(wire),
                    PENDING,
                    time.time(),  # repro: noqa[RPR101]
                ),
            )
            added += cursor.rowcount
        self._conn.commit()
        return added

    def jobs(self, campaign_id: int, status: Optional[str] = None) -> List[JobRow]:
        """Jobs of a campaign (optionally filtered), in insertion order."""
        if status is None:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE campaign_id = ? ORDER BY id",
                (campaign_id,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE campaign_id = ? AND status = ?"
                " ORDER BY id",
                (campaign_id, status),
            ).fetchall()
        return [_row_to_job(row) for row in rows]

    def job(self, campaign_id: int, key: str) -> Optional[JobRow]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE campaign_id = ? AND spec_hash = ?",
            (campaign_id, key),
        ).fetchone()
        return None if row is None else _row_to_job(row)

    def counts(self, campaign_id: int) -> Dict[str, int]:
        """Per-status job counts (statuses with zero jobs included)."""
        result = {status: 0 for status in _TRANSITIONS}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM jobs WHERE campaign_id = ?"
            " GROUP BY status",
            (campaign_id,),
        ).fetchall():
            result[row["status"]] = row["n"]
        return result

    # -- the state machine ----------------------------------------------
    def _transition(
        self,
        campaign_id: int,
        key: str,
        new_status: str,
        *,
        bump_attempts: bool = False,
        fields: Optional[Dict[str, Any]] = None,
    ) -> None:
        row = self._conn.execute(
            "SELECT status, attempts FROM jobs"
            " WHERE campaign_id = ? AND spec_hash = ?",
            (campaign_id, key),
        ).fetchone()
        if row is None:
            raise KeyError(f"no job {key!r} in campaign {campaign_id}")
        current = row["status"]
        if new_status not in _TRANSITIONS[current]:
            raise TransitionError(
                f"job {key[:12]} cannot go {current!r} -> {new_status!r}"
            )
        sets = ["status = ?", "updated_wall = ?"]
        values: List[Any] = [new_status, time.time()]  # repro: noqa[RPR101]
        if bump_attempts:
            sets.append("attempts = attempts + 1")
        for column, value in (fields or {}).items():
            sets.append(f"{column} = ?")
            values.append(value)
        values.extend([campaign_id, key])
        self._conn.execute(
            f"UPDATE jobs SET {', '.join(sets)}"
            " WHERE campaign_id = ? AND spec_hash = ?",
            values,
        )
        self._conn.commit()
        if self.on_transition is not None:
            self.on_transition(campaign_id, key, current, new_status)

    def claim(self, campaign_id: int, key: str) -> bool:
        """Atomically take a pending job for execution.

        One conditional ``UPDATE`` guarded on ``status = 'pending'``:
        when several drainers race for the same job, SQLite serializes
        the writes and exactly one caller flips the row (and bumps its
        attempt count).  Returns ``True`` when this caller won the
        claim; ``False`` when the job exists but was no longer pending
        (another runner took it, or it already finished).  Raises
        :class:`KeyError` for a job that is not in the campaign at all.
        """
        cursor = self._conn.execute(
            "UPDATE jobs SET status = ?, attempts = attempts + 1,"
            " updated_wall = ?"
            " WHERE campaign_id = ? AND spec_hash = ? AND status = ?",
            # Bookkeeping timestamp, not simulation state.
            (RUNNING, time.time(), campaign_id, key, PENDING),  # repro: noqa[RPR101]
        )
        self._conn.commit()
        if cursor.rowcount > 0:
            if self.on_transition is not None:
                self.on_transition(campaign_id, key, PENDING, RUNNING)
            return True
        if self.job(campaign_id, key) is None:
            raise KeyError(f"no job {key!r} in campaign {campaign_id}")
        return False

    def mark_done(
        self,
        campaign_id: int,
        key: str,
        result_path: Optional[str] = None,
        wall_s: Optional[float] = None,
    ) -> None:
        self._transition(
            campaign_id,
            key,
            DONE,
            fields={
                "result_path": result_path,
                "wall_s": wall_s,
                "error_type": None,
                "error_message": None,
                "postmortem": None,
            },
        )

    def mark_failed(
        self,
        campaign_id: int,
        key: str,
        error_type: str,
        error_message: str,
        postmortem: Optional[str] = None,
        wall_s: Optional[float] = None,
    ) -> None:
        self._transition(
            campaign_id,
            key,
            FAILED,
            fields={
                "error_type": error_type,
                "error_message": error_message,
                "postmortem": postmortem,
                "wall_s": wall_s,
            },
        )

    def reset_running(self, campaign_id: int) -> int:
        """Crash recovery: return orphaned ``running`` jobs to ``pending``.

        Only call this when no other drainer is live: a ``running`` row
        then necessarily belongs to a dead process and is safe to take
        back.  Concurrent drainers skip this step
        (``drain(reset_orphans=False)``) so they cannot steal each
        other's in-flight jobs.  Returns how many were reset.
        """
        reset = 0
        for job in self.jobs(campaign_id, status=RUNNING):
            self._transition(campaign_id, job.spec_hash, PENDING)
            reset += 1
        return reset

    def requeue_failed(self, campaign_id: int, max_attempts: int = 3) -> Tuple[int, int]:
        """Return failed jobs to ``pending``, respecting the attempt cap.

        Returns ``(requeued, exhausted)`` -- jobs whose attempt count
        already reached ``max_attempts`` stay failed so a deterministic
        crash cannot loop forever.
        """
        requeued = 0
        exhausted = 0
        for job in self.jobs(campaign_id, status=FAILED):
            if job.attempts >= max_attempts:
                exhausted += 1
                continue
            self._transition(campaign_id, job.spec_hash, PENDING)
            requeued += 1
        return requeued, exhausted

    # -- journal + postmortem indexes ------------------------------------
    def record_journal(self, campaign_id: int, entry: Dict[str, Any]) -> None:
        """Index one run-journal record against the campaign."""
        self._conn.execute(
            "INSERT INTO journal (campaign_id, record, entry) VALUES (?, ?, ?)",
            (
                campaign_id,
                str(entry.get("record", "unknown")),
                json.dumps(entry, sort_keys=True, default=str),
            ),
        )
        self._conn.commit()

    def journal_records(
        self, campaign_id: int, record: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The campaign's indexed journal records, in arrival order."""
        if record is None:
            rows = self._conn.execute(
                "SELECT entry FROM journal WHERE campaign_id = ? ORDER BY id",
                (campaign_id,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT entry FROM journal"
                " WHERE campaign_id = ? AND record = ? ORDER BY id",
                (campaign_id, record),
            ).fetchall()
        return [json.loads(row["entry"]) for row in rows]

    def postmortems(self, campaign_id: int) -> List[JobRow]:
        """Failed jobs that left a postmortem bundle behind."""
        rows = self._conn.execute(
            "SELECT * FROM jobs WHERE campaign_id = ?"
            " AND postmortem IS NOT NULL ORDER BY id",
            (campaign_id,),
        ).fetchall()
        return [_row_to_job(row) for row in rows]
