"""The campaign runner: submit, drain, requeue, fetch.

:class:`CampaignRunner` ties the three service pieces together -- the
SQLite :class:`~repro.service.store.CampaignStore`, a backend built from
a frozen config (:mod:`repro.service.backends`), and the executor's
cache/journal machinery -- into the submit/run/rerun loop every sweep
needs::

    from repro.service import CampaignRunner, CampaignStore, PoolBackendConfig

    store = CampaignStore("campaigns.db")
    runner = CampaignRunner(
        store, "fig14", backend=PoolBackendConfig(jobs=4),
        cache_dir=".repro-cache",
    )
    runner.submit(specs)          # idempotent: re-submitting is free
    runner.drain()                # runs every pending job, keep-going
    runner.requeue()              # failed jobs back to pending (capped)
    results = runner.fetch(specs) # typed results, in your order

The runner is also a drop-in for :class:`ExperimentExecutor` where only
``run(specs)`` is used (``streaming_grid(executor=...)``,
``wget_matrix(executor=...)``): ``run`` is submit + drain + fetch.

Durability model: job state lives in SQLite, results live in the
content-addressed cache.  A drain killed half-way leaves ``running``
rows behind; the next drain calls ``reset_running`` and re-claims them,
and jobs whose results already landed in the cache resolve as cache
hits (journaled as ``"cached"`` -- that journal line is the proof a
resume did not re-simulate).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.exec import FailedRun, JobOutcome, ResultCache
from repro.experiments.spec import result_from_dict, spec_from_dict, spec_hash
from repro.obs.journal import RunJournal
from repro.service import backends as _backends
from repro.service.store import DONE, PENDING, CampaignStore

PathLike = Union[str, "os.PathLike[str]"]


class CampaignError(RuntimeError):
    """A fetch asked for results the campaign has not (successfully) run."""


class CampaignRunner:
    """Drive one named campaign through a configured backend.

    Parameters
    ----------
    store: the campaign store (shared by any number of campaigns).
    name: campaign name; reopening an existing name resumes it.
    backend: a frozen backend config (``InlineBackendConfig`` /
        ``PoolBackendConfig`` / any registered kind).  Omitted, the
        campaign's stored config is used (resuming), falling back to
        inline for a brand-new campaign.
    cache_dir: the content-addressed result cache -- required, because
        campaign results live in the cache (the store only keeps paths).
    journal: optional journal path; records are additionally indexed
        into the store, so ``status`` can count cache hits per drain.
    max_attempts: per-job attempt budget enforced by ``requeue``.
    progress: forwarded to the executor (``True`` for the stderr ticker).
    journal_kwargs: extra :class:`~repro.obs.journal.RunJournal`
        constructor options (``max_bytes`` / ``max_age_s`` /
        ``retain_tail``) -- the daemon uses this to bound the journal
        for days-long drains.
    journal_observer: additional callable invoked with every journal
        record (after the store indexes it); the telemetry registry
        hangs off this.
    on_outcome: additional callable invoked with every
        :class:`~repro.experiments.exec.JobOutcome` after the store's
        state machine is updated -- carries the per-job perf record
        (when ``REPRO_PERF`` is on) to the metrics layer.
    """

    def __init__(
        self,
        store: CampaignStore,
        name: str,
        backend: Optional[Any] = None,
        cache_dir: Optional[PathLike] = None,
        journal: Optional[PathLike] = None,
        max_attempts: int = 3,
        progress: Any = None,
        journal_kwargs: Optional[Dict[str, Any]] = None,
        journal_observer: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    ) -> None:
        if cache_dir is None:
            raise ValueError(
                "a campaign needs a cache_dir: results live in the "
                "content-addressed cache, the store only tracks state"
            )
        self.store = store
        self.name = name
        self.cache_dir = str(cache_dir)
        self.journal_path = None if journal is None else str(journal)
        self.max_attempts = int(max_attempts)
        self.progress = progress
        self.journal_kwargs = dict(journal_kwargs or {})
        self.journal_observer = journal_observer
        self.on_outcome = on_outcome

        existing = store.campaign(name)
        if backend is None:
            if existing is not None:
                backend = _backends.backend_config_from_dict(existing.backend)
            else:
                backend = _backends.InlineBackendConfig()
        self.backend_config = backend
        self.campaign_id = store.ensure_campaign(
            name, backend.to_dict(), cache_dir=self.cache_dir
        )

    # -- the submit/drain/requeue/fetch loop -----------------------------
    def submit(self, specs: Sequence[Any]) -> int:
        """Register specs as jobs; returns how many were new (idempotent)."""
        return self.store.add_jobs(self.campaign_id, specs)

    def drain(
        self, limit: Optional[int] = None, reset_orphans: bool = True
    ) -> Dict[str, int]:
        """Run pending jobs through the backend until none remain.

        Orphaned ``running`` jobs (a previous drain died) are reset
        first -- pass ``reset_orphans=False`` when several drainers
        share the campaign live, so they cannot steal each other's
        in-flight jobs.  Claiming is the filter: each pending job is
        taken with the store's atomic claim, and jobs another runner
        claimed in the meantime are skipped, so concurrent drains
        partition the work instead of re-running it.  Failures do not
        abort the drain (``keep_going``); they land in ``failed`` with
        their error and any postmortem path, for ``requeue`` to pick
        up.  ``limit`` bounds how many jobs this call claims (mainly
        for tests and incremental draining).

        Returns the per-status counts after the drain.
        """
        if reset_orphans:
            self.store.reset_running(self.campaign_id)
        claimed = []
        budget = None if limit is None else max(0, int(limit))
        for job in self.store.jobs(self.campaign_id, status=PENDING):
            if budget is not None and len(claimed) >= budget:
                break
            if self.store.claim(self.campaign_id, job.spec_hash):
                claimed.append(job)
        if claimed:
            specs = [spec_from_dict(job.spec) for job in claimed]

            cache = ResultCache(self.cache_dir)

            def on_job(outcome: JobOutcome) -> None:
                if outcome.status == "failed":
                    self.store.mark_failed(
                        self.campaign_id,
                        outcome.spec_hash,
                        error_type=(outcome.error or {}).get("type", "Error"),
                        error_message=(outcome.error or {}).get("message", ""),
                        postmortem=outcome.postmortem,
                        wall_s=outcome.wall_s,
                    )
                else:  # "cached" or "executed": the result is in the cache
                    self.store.mark_done(
                        self.campaign_id,
                        outcome.spec_hash,
                        result_path=str(cache.path_for(outcome.spec_hash)),
                        wall_s=outcome.wall_s,
                    )
                if self.on_outcome is not None:
                    self.on_outcome(outcome)

            def observe(entry: Dict[str, Any]) -> None:
                self.store.record_journal(self.campaign_id, entry)
                if self.journal_observer is not None:
                    self.journal_observer(entry)

            journal: Optional[RunJournal] = None
            if self.journal_path is not None:
                journal = RunJournal(
                    self.journal_path,
                    observer=observe,
                    **self.journal_kwargs,
                )
            backend = _backends.build(self.backend_config)
            backend.run(
                specs,
                cache_dir=self.cache_dir,
                journal=journal,
                progress=self.progress,
                keep_going=True,
                on_job=on_job,
            )
        return self.status()

    def requeue(self) -> int:
        """Failed jobs back to pending (attempt-capped); returns count."""
        requeued, _exhausted = self.store.requeue_failed(
            self.campaign_id, max_attempts=self.max_attempts
        )
        return requeued

    def status(self) -> Dict[str, int]:
        """Per-status job counts for this campaign."""
        return self.store.counts(self.campaign_id)

    def fetch(self, specs: Optional[Sequence[Any]] = None) -> List[Any]:
        """Typed results for ``specs`` (default: every job, store order).

        Raises :class:`CampaignError` if any requested job is not done
        -- fetch is for finished work; ``status`` tells you what is left.
        """
        if specs is not None:
            wanted = [(spec_hash(spec), spec.kind) for spec in specs]
        else:
            wanted = [
                (job.spec_hash, job.kind) for job in self.store.jobs(self.campaign_id)
            ]
        cache = ResultCache(self.cache_dir)
        results: List[Any] = []
        for key, kind in wanted:
            job = self.store.job(self.campaign_id, key)
            if job is None or job.status != DONE:
                state = "missing" if job is None else job.status
                raise CampaignError(
                    f"job {key[:12]} ({kind}) is {state}, not done; "
                    "drain (and maybe requeue) the campaign first"
                )
            entry = cache.get(key)
            if entry is None:
                raise CampaignError(
                    f"job {key[:12]} is done but its cache entry is gone "
                    f"(expected at {cache.path_for(key)})"
                )
            results.append(result_from_dict(kind, entry["result"]))
        return results

    def failures(self) -> List[FailedRun]:
        """The failed jobs, as :class:`FailedRun` values."""
        return [
            FailedRun(
                spec_hash=job.spec_hash,
                kind=job.kind,
                error_type=job.error_type or "Error",
                error_message=job.error_message or "",
                postmortem=job.postmortem,
            )
            for job in self.store.jobs(self.campaign_id, status="failed")
        ]

    # -- ExperimentExecutor drop-in --------------------------------------
    def run(self, specs: Sequence[Any]) -> List[Any]:
        """Submit + drain + fetch, in submission order.

        This is the duck-typed :class:`ExperimentExecutor` surface that
        ``streaming_grid(executor=...)`` and ``wget_matrix(executor=...)``
        call, so any sweep can run as a campaign by swapping the
        executor for a runner.
        """
        self.submit(specs)
        self.drain()
        return self.fetch(specs)
