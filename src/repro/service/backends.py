"""Execution backends, config-first: frozen configs in, live backends out.

A *backend* is the thing that actually executes a batch of specs.  It is
described by a small frozen config dataclass (a plain value that
serializes into the campaign store) and realized through :func:`build`,
mirroring the :class:`~repro.net.bandwidth.BandwidthSpec` registry
idiom::

    from repro.service.backends import PoolBackendConfig, build

    backend = build(PoolBackendConfig(jobs=4, timeout_s=120.0))
    results = backend.run(specs, cache_dir=".repro-cache")

Two backends ship today -- ``inline`` (serial, in this process: the
reference path and the debugger-friendly one) and ``pool`` (the process
pool that :class:`~repro.experiments.exec.ExperimentExecutor` always
had).  Both drive the same executor underneath, so cache, timeout,
retry, journal, and ``on_job`` behavior are identical; the config just
pins where the work runs.  Downstream forks register their own kinds
(a cluster submitter, say) with :func:`register_backend` and campaigns
stored with that kind rebuild through the same :func:`build` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.experiments.exec import ExperimentExecutor, JobOutcome


@dataclass(frozen=True)
class InlineBackendConfig:
    """Serial execution in the submitting process (the reference path)."""

    kind: ClassVar[str] = "inline"

    timeout_s: Optional[float] = None
    retries: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "timeout_s": self.timeout_s, "retries": self.retries}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InlineBackendConfig":
        return cls(
            timeout_s=data.get("timeout_s"),
            retries=int(data.get("retries", 1)),
        )


@dataclass(frozen=True)
class PoolBackendConfig:
    """Process-pool fan-out across ``jobs`` workers."""

    kind: ClassVar[str] = "pool"

    jobs: int = 2
    timeout_s: Optional[float] = None
    retries: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "jobs": self.jobs,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PoolBackendConfig":
        return cls(
            jobs=int(data.get("jobs", 2)),
            timeout_s=data.get("timeout_s"),
            retries=int(data.get("retries", 1)),
        )


class ExecutorBackend:
    """Backend over :class:`~repro.experiments.exec.ExperimentExecutor`.

    ``jobs=1`` is the inline backend; ``jobs>1`` the pool.  The batch
    knobs that belong to the *campaign* rather than the backend (cache
    location, journal, keep-going, the per-job callback) arrive per
    ``run`` call.
    """

    def __init__(self, jobs: int, timeout_s: Optional[float], retries: int) -> None:
        self.jobs = int(jobs)
        self.timeout_s = timeout_s
        self.retries = int(retries)

    def run(
        self,
        specs: Sequence[Any],
        cache_dir: Optional[str] = None,
        journal: Any = None,
        progress: Any = None,
        keep_going: bool = False,
        on_job: Optional[Callable[[JobOutcome], None]] = None,
    ) -> List[Any]:
        with ExperimentExecutor(
            jobs=self.jobs,
            cache_dir=cache_dir,
            timeout_s=self.timeout_s,
            retries=self.retries,
            progress=progress,
            journal=journal,
            keep_going=keep_going,
            on_job=on_job,
        ) as executor:
            return executor.run(specs)


_BackendFactory = Callable[[Any], Any]
_ConfigParser = Callable[[Mapping[str, Any]], Any]

_BACKENDS: Dict[str, _BackendFactory] = {}
_CONFIG_PARSERS: Dict[str, _ConfigParser] = {}


def register_backend(
    kind: str, from_dict: _ConfigParser, factory: _BackendFactory
) -> None:
    """Register (or replace) a backend kind.

    ``from_dict`` rebuilds the frozen config from its stored form;
    ``factory`` turns a config into a live backend.
    """
    _CONFIG_PARSERS[kind] = from_dict
    _BACKENDS[kind] = factory


def registered_backend_kinds() -> FrozenSet[str]:
    """Every kind :func:`build` can realize."""
    return frozenset(_BACKENDS)


def backend_config_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild a frozen backend config from its stored dict form."""
    kind = data.get("kind")
    if kind not in _CONFIG_PARSERS:
        raise ValueError(
            f"unknown backend kind {kind!r}; "
            f"registered: {sorted(_CONFIG_PARSERS)}"
        )
    return _CONFIG_PARSERS[kind](data)


def build(config: Any) -> Any:
    """The config-first entry point: a frozen backend config in, a live
    backend out.  Always returns a fresh instance."""
    kind = getattr(config, "kind", None)
    if not isinstance(kind, str) or kind not in _BACKENDS:
        raise TypeError(
            f"cannot build a backend from {type(config).__name__}; "
            f"registered kinds: {sorted(_BACKENDS)}"
        )
    return _BACKENDS[kind](config)


register_backend(
    "inline",
    InlineBackendConfig.from_dict,
    lambda config: ExecutorBackend(1, config.timeout_s, config.retries),
)
register_backend(
    "pool",
    PoolBackendConfig.from_dict,
    lambda config: ExecutorBackend(config.jobs, config.timeout_s, config.retries),
)

__all__ = [
    "InlineBackendConfig",
    "PoolBackendConfig",
    "ExecutorBackend",
    "register_backend",
    "registered_backend_kinds",
    "backend_config_from_dict",
    "build",
]
