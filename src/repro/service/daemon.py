"""Long-lived campaign daemon: drain loop + OpenMetrics scrape endpoint.

``python -m repro.cli campaign serve`` turns the per-invocation drain
into a service: a :class:`CampaignDaemon` owns one campaign, runs drain
iterations in a loop (picking up newly submitted jobs and orphans from
killed predecessors), and exposes an HTTP endpoint -- stdlib
``http.server``, no new dependencies -- with three routes:

``/metrics``
    The telemetry registry (:mod:`repro.obs.metrics`) rendered as
    OpenMetrics text.  Point a Prometheus scrape config at it; the
    ``repro_campaign_jobs`` gauges are refreshed from the store (ground
    truth) on every drain-loop iteration, so a scrape after a
    kill-and-resume equals ``campaign status`` exactly.
``/status``
    The machine-readable JSON status document -- the *same* document
    ``campaign status --json`` prints, plus daemon-side rates
    (events/s, jobs/s, ETA).  ``campaign watch`` polls this.
``/healthz``
    ``ok`` (liveness only).

Threading model: SQLite connections are bound to their creating thread,
so the drain loop (main thread) is the only thing that touches the
store.  The HTTP thread reads a cached status document and the registry
behind ``self._lock``; the loop refreshes both after every iteration.
Telemetry flows in through the three hooks this PR added --
``store.on_transition``, the runner's ``journal_observer``, and the
runner's ``on_outcome`` (which carries per-job perf records across the
pool boundary).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.experiments.exec import JobOutcome
from repro.obs.metrics import (
    OPENMETRICS_CONTENT_TYPE,
    MetricRegistry,
    default_registry,
    publish_journal_record,
    publish_perf_counters,
    publish_store_counts,
    publish_transition,
    render_openmetrics,
)
from repro.service.runner import CampaignRunner
from repro.service.store import CampaignStore

#: Default journal bound for daemon drains: ~16 MiB active file, tail of
#: 1024 records retained across rotations.
DEFAULT_JOURNAL_MAX_BYTES = 16 * 1024 * 1024
DEFAULT_JOURNAL_RETAIN_TAIL = 1024


def status_document(
    store: CampaignStore,
    name: str,
    events_per_s: Optional[float] = None,
    jobs_per_s: Optional[float] = None,
) -> Dict[str, Any]:
    """The campaign's machine-readable status.

    This is the single source both surfaces share: ``campaign status
    --json`` builds it straight from the store; the daemon builds it
    after every drain iteration (adding its measured rates) and serves
    it on ``/status``.
    """
    campaign = store.campaign(name)
    if campaign is None:
        raise KeyError(f"no campaign named {name!r}")
    counts = store.counts(campaign.id)
    total = sum(counts.values())
    jobs = [
        record
        for record in store.journal_records(campaign.id, record="job")
    ]
    by_status: Dict[str, int] = {}
    for record in jobs:
        status = str(record.get("status", "unknown"))
        by_status[status] = by_status.get(status, 0) + 1
    cached = by_status.get("cached", 0)
    executed = by_status.get("executed", 0)
    resolved = cached + executed
    remaining = counts.get("pending", 0) + counts.get("running", 0)
    eta_s: Optional[float] = None
    if remaining == 0:
        eta_s = 0.0
    elif jobs_per_s is not None and jobs_per_s > 0:
        eta_s = remaining / jobs_per_s
    return {
        "campaign": name,
        "backend": campaign.backend,
        "cache_dir": campaign.cache_dir,
        "counts": counts,
        "total": total,
        "remaining": remaining,
        "done_fraction": (counts.get("done", 0) / total) if total else 1.0,
        "journal_jobs": by_status,
        "cache_hit_rate": (cached / resolved) if resolved else None,
        "retries": len(store.journal_records(campaign.id, record="retry")),
        "events_per_s": events_per_s,
        "jobs_per_s": jobs_per_s,
        "eta_s": eta_s,
        # Bookkeeping timestamp (campaign layer, not simulation state).
        "updated_wall": time.time(),  # repro: noqa[RPR101]
    }


def render_watch_line(doc: Dict[str, Any]) -> str:
    """One terminal line of a status document (``campaign watch``)."""
    counts = doc.get("counts", {})
    hit_rate = doc.get("cache_hit_rate")
    hits = "-" if hit_rate is None else f"{100.0 * hit_rate:.0f}%"
    events = doc.get("events_per_s")
    rate = "-" if not events else f"{events / 1000.0:.0f}k/s"
    eta = doc.get("eta_s")
    eta_text = "-" if eta is None else f"{eta:.0f}s"
    return (
        f"[{doc.get('campaign', '?')}] "
        f"pending={counts.get('pending', 0)} "
        f"running={counts.get('running', 0)} "
        f"done={counts.get('done', 0)} "
        f"failed={counts.get('failed', 0)} "
        f"cache-hits={hits} events={rate} eta={eta_text}"
    )


class CampaignDaemon:
    """Own one campaign: drain it in a loop, serve its telemetry.

    Parameters mirror :class:`~repro.service.runner.CampaignRunner`
    (which this wraps); ``port=0`` binds an ephemeral port (read it back
    from :attr:`port` after :meth:`start_http`).  ``registry`` defaults
    to a fresh :func:`~repro.obs.metrics.default_registry`.
    """

    def __init__(
        self,
        store: CampaignStore,
        name: str,
        backend: Optional[Any] = None,
        cache_dir: Optional[str] = None,
        journal: Optional[str] = None,
        max_attempts: int = 3,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval_s: float = 2.0,
        registry: Optional[MetricRegistry] = None,
        journal_max_bytes: Optional[int] = DEFAULT_JOURNAL_MAX_BYTES,
        journal_retain_tail: int = DEFAULT_JOURNAL_RETAIN_TAIL,
    ) -> None:
        self.name = name
        self.store = store
        self.host = host
        self.port = port
        self.poll_interval_s = poll_interval_s
        self.registry = registry if registry is not None else default_registry()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._status: Dict[str, Any] = {"campaign": name, "counts": {}}
        # Daemon-side rate accounting (host wall clock; campaign layer).
        self._started = time.monotonic()  # repro: noqa[RPR101]
        self._events_total = 0.0
        self._events_wall = 0.0
        self._jobs_done = 0
        store.on_transition = self._on_transition
        self.runner = CampaignRunner(
            store,
            name,
            backend=backend,
            cache_dir=cache_dir,
            journal=journal,
            max_attempts=max_attempts,
            journal_kwargs={
                "max_bytes": journal_max_bytes,
                "retain_tail": journal_retain_tail,
            },
            journal_observer=self._on_journal_record,
            on_outcome=self._on_outcome,
        )

    # -- telemetry hooks (drain-loop thread) -----------------------------
    def _on_transition(
        self, campaign_id: int, key: str, old_status: str, new_status: str
    ) -> None:
        if campaign_id != self.runner.campaign_id:
            return  # a shared store may carry other campaigns
        with self._lock:
            publish_transition(
                self.registry, old_status, new_status, campaign=self.name
            )

    def _on_journal_record(self, entry: Dict[str, Any]) -> None:
        with self._lock:
            publish_journal_record(self.registry, entry, campaign=self.name)

    def _on_outcome(self, outcome: JobOutcome) -> None:
        with self._lock:
            if outcome.status in ("cached", "executed"):
                self._jobs_done += 1
            if outcome.perf:
                publish_perf_counters(
                    self.registry, outcome.perf, campaign=self.name
                )
                events = outcome.perf.get("events")
                wall = outcome.perf.get("wall_s")
                if isinstance(events, (int, float)) and isinstance(
                    wall, (int, float)
                ):
                    self._events_total += events
                    self._events_wall += wall
                    if self._events_wall > 0:
                        self.registry.gauge(
                            "repro_serve_events_per_second",
                            "Recent simulator events per wall second "
                            "across drained jobs.",
                            ("campaign",),
                        ).set(
                            self._events_total / self._events_wall,
                            campaign=self.name,
                        )

    # -- rates -----------------------------------------------------------
    def _rates(self) -> Dict[str, Optional[float]]:
        elapsed = time.monotonic() - self._started  # repro: noqa[RPR101]
        jobs_per_s = self._jobs_done / elapsed if elapsed > 0 else None
        events_per_s = (
            self._events_total / self._events_wall
            if self._events_wall > 0
            else None
        )
        return {"jobs_per_s": jobs_per_s, "events_per_s": events_per_s}

    def refresh(self) -> Dict[str, Any]:
        """Rebuild gauges + the cached status doc from store ground truth.

        Runs on the drain-loop thread (the store's thread); the HTTP
        thread only ever reads the results under the lock.
        """
        counts = self.store.counts(self.runner.campaign_id)
        rates = self._rates()
        doc = status_document(
            self.store,
            self.name,
            events_per_s=rates["events_per_s"],
            jobs_per_s=rates["jobs_per_s"],
        )
        with self._lock:
            publish_store_counts(self.registry, counts, campaign=self.name)
            self._status = doc
        return doc

    # -- HTTP ------------------------------------------------------------
    def start_http(self) -> None:
        """Bind and serve ``/metrics`` + ``/status`` on a daemon thread."""
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/metrics/"):
                    with daemon._lock:
                        daemon.registry.counter(
                            "repro_serve_scrapes",
                            "HTTP scrapes served by the campaign daemon.",
                        ).inc()
                        body = render_openmetrics(daemon.registry).encode()
                    self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
                elif path in ("/status", "/status/", "/"):
                    with daemon._lock:
                        body = json.dumps(
                            daemon._status, indent=2, sort_keys=True
                        ).encode()
                    self._reply(200, "application/json; charset=utf-8", body)
                elif path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8", b"ok\n")
                else:
                    self._reply(
                        404, "text/plain; charset=utf-8", b"not found\n"
                    )

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                return  # scrapes are telemetry, not log lines

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-campaign-http",
            daemon=True,
        )
        self._server_thread.start()

    @property
    def endpoint(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- the drain loop ---------------------------------------------------
    def stop(self) -> None:
        """Ask the loop to exit after the current iteration."""
        self._stop.set()

    def serve(
        self,
        max_loops: Optional[int] = None,
        linger: bool = True,
    ) -> Dict[str, Any]:
        """Run the daemon: drain, refresh telemetry, sleep, repeat.

        Every iteration drains whatever is pending (orphaned ``running``
        jobs from a killed predecessor are reset first -- the daemon
        assumes it is the campaign's only drainer) and refreshes the
        scrape surfaces.  With ``linger=False`` the loop exits once no
        work remains; the default keeps serving so a long-lived daemon
        picks up jobs submitted later and its endpoint outlives the
        drain (CI scrapes after completion).  ``max_loops`` bounds the
        iterations (tests).  Returns the final status document.
        """
        loops = 0
        doc = self.refresh()
        while not self._stop.is_set():
            self.runner.drain(reset_orphans=True)
            loops += 1
            with self._lock:
                self.registry.counter(
                    "repro_serve_loops",
                    "Drain-loop iterations completed by the daemon.",
                    ("campaign",),
                ).inc(campaign=self.name)
            doc = self.refresh()
            if max_loops is not None and loops >= max_loops:
                break
            if not linger and doc["remaining"] == 0:
                break
            self._stop.wait(self.poll_interval_s)
        return doc

    def shutdown(self) -> None:
        """Stop the loop and the HTTP server (idempotent)."""
        self.stop()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5)
            self._server_thread = None
        if self.store.on_transition == self._on_transition:
            self.store.on_transition = None


def fetch_status(endpoint: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    """GET ``<endpoint>/status`` and parse it (``campaign watch``)."""
    from urllib.request import urlopen

    url = endpoint.rstrip("/") + "/status"
    with urlopen(url, timeout=timeout_s) as response:  # noqa: S310 - local
        payload = json.loads(response.read().decode())
    if not isinstance(payload, dict):
        raise ValueError(f"unexpected status payload from {url}")
    return payload


def fetch_metrics(endpoint: str, timeout_s: float = 5.0) -> str:
    """GET ``<endpoint>/metrics`` as text (CI validation path)."""
    from urllib.request import urlopen

    url = endpoint.rstrip("/") + "/metrics"
    with urlopen(url, timeout=timeout_s) as response:  # noqa: S310 - local
        return response.read().decode()


__all__ = [
    "CampaignDaemon",
    "DEFAULT_JOURNAL_MAX_BYTES",
    "DEFAULT_JOURNAL_RETAIN_TAIL",
    "fetch_metrics",
    "fetch_status",
    "render_watch_line",
    "status_document",
]
