"""Simulation-as-a-service: durable, resumable sweep campaigns.

The service layer promotes :class:`~repro.experiments.exec.ExperimentExecutor`
from a per-process pool into a campaign service:

* :mod:`repro.service.store` -- a SQLite-backed store of campaigns and
  jobs (keyed by spec hash, moving pending -> running -> done/failed,
  with journal and postmortem indexes);
* :mod:`repro.service.backends` -- execution backends built config-first
  from frozen ``*BackendConfig`` dataclasses through ``build()``;
* :mod:`repro.service.runner` -- the submit / drain / requeue / fetch
  loop, also usable as an executor drop-in for the grid sweeps;
* :mod:`repro.service.daemon` -- the long-lived ``campaign serve``
  daemon: a drain loop plus an OpenMetrics/JSON scrape endpoint fed by
  the :mod:`repro.obs.metrics` registry.

See ``docs/api.md`` for the config-first idiom and
``repro.cli campaign`` for the command-line surface.
"""

from repro.service.backends import (
    ExecutorBackend,
    InlineBackendConfig,
    PoolBackendConfig,
    backend_config_from_dict,
    build,
    register_backend,
    registered_backend_kinds,
)
from repro.service.daemon import (
    CampaignDaemon,
    render_watch_line,
    status_document,
)
from repro.service.runner import CampaignError, CampaignRunner
from repro.service.store import CampaignRow, CampaignStore, JobRow, TransitionError

__all__ = [
    "CampaignStore",
    "CampaignRunner",
    "CampaignDaemon",
    "CampaignError",
    "render_watch_line",
    "status_document",
    "CampaignRow",
    "JobRow",
    "TransitionError",
    "InlineBackendConfig",
    "PoolBackendConfig",
    "ExecutorBackend",
    "register_backend",
    "registered_backend_kinds",
    "backend_config_from_dict",
    "build",
]
