"""Simulation-as-a-service: durable, resumable sweep campaigns.

The service layer promotes :class:`~repro.experiments.exec.ExperimentExecutor`
from a per-process pool into a campaign service:

* :mod:`repro.service.store` -- a SQLite-backed store of campaigns and
  jobs (keyed by spec hash, moving pending -> running -> done/failed,
  with journal and postmortem indexes);
* :mod:`repro.service.backends` -- execution backends built config-first
  from frozen ``*BackendConfig`` dataclasses through ``build()``;
* :mod:`repro.service.runner` -- the submit / drain / requeue / fetch
  loop, also usable as an executor drop-in for the grid sweeps.

See ``docs/api.md`` for the config-first idiom and
``repro.cli campaign`` for the command-line surface.
"""

from repro.service.backends import (
    ExecutorBackend,
    InlineBackendConfig,
    PoolBackendConfig,
    backend_config_from_dict,
    build,
    register_backend,
    registered_backend_kinds,
)
from repro.service.runner import CampaignError, CampaignRunner
from repro.service.store import CampaignRow, CampaignStore, JobRow, TransitionError

__all__ = [
    "CampaignStore",
    "CampaignRunner",
    "CampaignError",
    "CampaignRow",
    "JobRow",
    "TransitionError",
    "InlineBackendConfig",
    "PoolBackendConfig",
    "ExecutorBackend",
    "register_backend",
    "registered_backend_kinds",
    "backend_config_from_dict",
    "build",
]
