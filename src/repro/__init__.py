"""repro -- reproduction of "ECF: An MPTCP Path Scheduler to Manage
Heterogeneous Paths" (Lim, Nahum, Towsley, Gibbens; CoNEXT 2017).

The package is a packet-level discrete-event simulation of MPTCP complete
enough to regenerate every figure and table in the paper's evaluation:
per-subflow TCP with coupled congestion control, the MPTCP meta-socket
with opportunistic retransmission/penalization, the ECF / default(minRTT)
/ BLEST / DAPS path schedulers, a DASH adaptive-streaming stack, and
wget/Web-browsing workloads.

Quickstart
----------
>>> from repro import Simulator, make_scheduler, MptcpConnection
>>> from repro.net import make_path, wifi_config, lte_config
>>> sim = Simulator()
>>> paths = [make_path(sim, wifi_config(1.0)), make_path(sim, lte_config(8.6))]
>>> conn = MptcpConnection(sim, paths, make_scheduler("ecf"))
>>> conn.write(500_000)
>>> sim.run(until=30.0)  # doctest: +SKIP
>>> conn.delivered_bytes  # doctest: +SKIP
500000
"""

from repro.core import (
    BlestScheduler,
    DapsScheduler,
    EcfScheduler,
    MinRttScheduler,
    SCHEDULER_NAMES,
    Scheduler,
    make_scheduler,
)
from repro.mptcp import ConnectionConfig, MptcpConnection, MptcpReceiver
from repro.net import Path, make_path, lte_config, wifi_config
from repro.sim import Simulator, TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "TraceRecorder",
    "Scheduler",
    "EcfScheduler",
    "MinRttScheduler",
    "BlestScheduler",
    "DapsScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "MptcpConnection",
    "ConnectionConfig",
    "MptcpReceiver",
    "Path",
    "make_path",
    "wifi_config",
    "lte_config",
    "__version__",
]
