"""repro -- reproduction of "ECF: An MPTCP Path Scheduler to Manage
Heterogeneous Paths" (Lim, Nahum, Towsley, Gibbens; CoNEXT 2017).

The package is a packet-level discrete-event simulation of MPTCP complete
enough to regenerate every figure and table in the paper's evaluation:
per-subflow TCP with coupled congestion control, the MPTCP meta-socket
with opportunistic retransmission/penalization, the ECF / default(minRTT)
/ BLEST / DAPS path schedulers, a DASH adaptive-streaming stack, and
wget/Web-browsing workloads.

Construction is config-first (see ``docs/api.md``): describe what you
want with a frozen spec, realize it with :func:`build`.

Quickstart
----------
>>> from repro import Simulator, SchedulerSpec, build, MptcpConnection
>>> from repro.net import make_path, wifi_config, lte_config
>>> sim = Simulator()
>>> paths = [make_path(sim, wifi_config(1.0)), make_path(sim, lte_config(8.6))]
>>> conn = MptcpConnection(sim, paths, build(SchedulerSpec.of("ecf")))
>>> conn.write(500_000)
>>> sim.run(until=30.0)  # doctest: +SKIP
>>> conn.delivered_bytes  # doctest: +SKIP
500000
"""

from repro.core import (
    BlestScheduler,
    CcSpec,
    DapsScheduler,
    EcfScheduler,
    MinRttScheduler,
    SCHEDULER_NAMES,
    Scheduler,
    SchedulerSpec,
    build,
    make_scheduler,
    registered_schedulers,
)
from repro.mptcp import ConnectionConfig, MptcpConnection, MptcpReceiver
from repro.net import Path, make_path, lte_config, wifi_config
from repro.service import (
    CampaignRunner,
    CampaignStore,
    InlineBackendConfig,
    PoolBackendConfig,
)
from repro.sim import Simulator, TraceRecorder

__version__ = "1.1.0"

#: The supported public surface.  Everything importable from here is
#: stable API; underscore-prefixed names anywhere in the package are
#: package-private (enforced by lint rule RPR701).
__all__ = [
    # simulation substrate
    "Simulator",
    "TraceRecorder",
    # schedulers + config-first construction
    "Scheduler",
    "EcfScheduler",
    "MinRttScheduler",
    "BlestScheduler",
    "DapsScheduler",
    "SchedulerSpec",
    "CcSpec",
    "build",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "registered_schedulers",
    # MPTCP connection
    "MptcpConnection",
    "ConnectionConfig",
    "MptcpReceiver",
    # paths
    "Path",
    "make_path",
    "wifi_config",
    "lte_config",
    # campaign service
    "CampaignStore",
    "CampaignRunner",
    "InlineBackendConfig",
    "PoolBackendConfig",
    "__version__",
]
