"""MPTCP connection layer.

Glues subflows into one ordered byte stream, mirroring the Linux MPTCP 0.89
architecture the paper builds on:

* :class:`~repro.mptcp.connection.MptcpConnection` -- the meta-socket: a
  connection-level send buffer, DSN assignment through a pluggable path
  scheduler, connection-level send window, and the opportunistic
  retransmission + penalization mechanisms of Raiciu et al. (NSDI'12).
* :class:`~repro.mptcp.receiver.MptcpReceiver` -- the client-side reorder
  buffer that reassembles data sequence numbers into an in-order stream and
  measures the out-of-order delay every packet experiences (Figs 13/14/21/23).
"""

from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.mptcp.receiver import MptcpReceiver

__all__ = ["MptcpConnection", "ConnectionConfig", "MptcpReceiver"]
