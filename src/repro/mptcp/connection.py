"""The MPTCP meta-socket.

:class:`MptcpConnection` owns one subflow per path and moves application
bytes through them:

* the server application calls :meth:`write`; bytes join the
  **connection-level send buffer** (ECF's ``k`` is exactly the part of this
  buffer not yet assigned to any subflow);
* whenever window space exists, the configured **path scheduler** is asked
  which subflow carries the next segment; returning ``None`` means "wait"
  (the ECF/BLEST waiting decision);
* assignment is bounded by the connection-level send window and the
  receiver's advertised window;
* when the connection is window-limited, the **opportunistic
  retransmission + penalization** mechanism of Raiciu et al. (NSDI'12) --
  enabled by default in the paper's experiments -- reinjects the blocking
  segment on a faster subflow and halves the slow subflow's window;
* the client-side :class:`~repro.mptcp.receiver.MptcpReceiver` reassembles
  the DSN stream and feeds DATA_ACKs back on every subflow ACK.

Connection establishment is modelled: the primary subflow (WiFi in the
paper -- "the default in Android") carries data after one handshake RTT,
and each secondary subflow joins one additional handshake later, which is
why short transfers rarely use the secondary path (Section 5.4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.analysis import events as _events
from repro.analysis import sanitize as _sanitize
from repro.net.packet import MSS, Packet
from repro.net.path import Path
from repro.mptcp.receiver import MptcpReceiver
from repro.perf import profiler as _profiler
from repro.sim.engine import Simulator
from repro.tcp.cc.base import CongestionController
from repro.tcp.subflow import Subflow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.base import Scheduler


@dataclass
class ConnectionConfig:
    """Tunables of an MPTCP connection.

    Attributes
    ----------
    mss: maximum segment payload in bytes.
    send_window_bytes: connection-level send window (wmem analogue).
    recv_buffer_bytes: client receive buffer (rmem analogue).
    congestion_control: "coupled" (default, as in MPTCP 0.89), "olia",
        or "reno".
    idle_reset_enabled: RFC 5681 idle restart on each subflow (Fig 6
        disables it).
    penalization_enabled: opportunistic retransmission + penalization
        (enabled throughout the paper's experiments).
    handshake_delays: model connection/subflow establishment latency.
    record_delays: keep per-packet out-of-order delay samples.
    max_cwnd: per-subflow cwnd cap, segments.
    """

    mss: int = MSS
    send_window_bytes: int = 4_000_000
    recv_buffer_bytes: int = 4_000_000
    congestion_control: str = "coupled"
    idle_reset_enabled: bool = True
    penalization_enabled: bool = True
    handshake_delays: bool = True
    record_delays: bool = True
    max_cwnd: float = 10_000.0


class MptcpConnection:
    """One MPTCP connection between a server (sender) and client (receiver).

    Parameters
    ----------
    sim: the simulator.
    paths: one :class:`~repro.net.path.Path` per subflow; the first is the
        primary interface.
    scheduler: a :class:`~repro.core.base.Scheduler` instance (each
        connection needs its own, as schedulers keep per-connection state).
    config: see :class:`ConnectionConfig`.
    on_deliver: ``on_deliver(nbytes)`` invoked at the client for every
        in-order byte run (applications consume the stream through this).
    name: label for traces and debugging.
    """

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "sim",
        "config",
        "scheduler",
        "name",
        "cc",
        "receiver",
        "subflows",
        "next_dsn",
        "conn_una",
        "unassigned_bytes",
        "total_written",
        "peer_recv_window",
        "reinjections",
        "scheduler_waits",
        "duplicate_transmissions",
        "_outstanding_dsn",
        "_dsn_order",
        "_reinjected",
        "_last_penalized",
        "_rto_reinject_queue",
        "_rto_reinject_pending",
        "_sending",
    )

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        scheduler: "Scheduler",
        config: Optional[ConnectionConfig] = None,
        on_deliver: Optional[Callable[[int], None]] = None,
        name: str = "conn",
    ) -> None:
        if not paths:
            raise ValueError("an MPTCP connection needs at least one path")
        self.sim = sim
        self.config = config or ConnectionConfig()
        self.scheduler = scheduler
        self.name = name

        from repro.core.spec import CcSpec, build

        self.cc: CongestionController = build(
            CcSpec.of(self.config.congestion_control)
        )
        self.receiver = MptcpReceiver(
            sim,
            recv_buffer_bytes=self.config.recv_buffer_bytes,
            on_deliver=on_deliver,
            record_delays=self.config.record_delays,
        )

        self.subflows: List[Subflow] = []
        primary_rtt = paths[0].base_rtt
        for index, path in enumerate(paths):
            if not self.config.handshake_delays:
                established_at = sim.now
            elif index == 0:
                established_at = sim.now + primary_rtt
            else:
                established_at = sim.now + primary_rtt + path.base_rtt
            subflow = Subflow(
                sim,
                path,
                self.cc,
                sf_id=index,
                mss=self.config.mss,
                idle_reset_enabled=self.config.idle_reset_enabled,
                established_at=established_at,
                max_cwnd=self.config.max_cwnd,
            )
            subflow.receiver_callback = self._client_on_data
            subflow.on_ack_processed = self._on_subflow_ack
            subflow.on_rto = self._on_subflow_rto
            self.subflows.append(subflow)

        # Connection-level sequence space (bytes).
        self.next_dsn = 0
        self.conn_una = 0
        self.unassigned_bytes = 0
        self.total_written = 0
        self.peer_recv_window = self.config.recv_buffer_bytes
        #: In-order record of assigned, not-yet-data-acked segments:
        #: dsn -> (payload, subflow_id).  Drives reinjection and una.
        self._outstanding_dsn: Dict[int, tuple] = {}
        self._dsn_order: Deque[int] = deque()
        self._reinjected: Set[int] = set()
        self._last_penalized: Dict[int, float] = {}
        #: Meta-level retransmission queue: (dsn, payload) stranded on a
        #: timed-out subflow, to be reinjected on any open subflow.
        self._rto_reinject_queue: Deque[tuple] = deque()
        self._rto_reinject_pending: Set[int] = set()
        self._sending = False

        self.reinjections = 0
        self.scheduler_waits = 0
        self.duplicate_transmissions = 0

        scheduler.attach(self)
        # Subflows that become established later must trigger a scheduling
        # pass even if no ACK arrives (e.g. single-path stall before join).
        for subflow in self.subflows:
            if subflow.established_at > sim.now:
                sim.schedule_at(subflow.established_at, self._on_subflow_established)

    # ------------------------------------------------------------------
    # Application (server) side
    # ------------------------------------------------------------------
    def write(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes <= 0:
            raise ValueError(f"write size must be positive, got {nbytes!r}")
        self.unassigned_bytes += int(nbytes)
        self.total_written += int(nbytes)
        self.try_send()

    @property
    def mss(self) -> int:
        return self.config.mss

    @property
    def bytes_outstanding(self) -> int:
        """Assigned but not yet data-acked bytes (send-window usage)."""
        return self.next_dsn - self.conn_una

    @property
    def effective_send_window(self) -> int:
        """min(local send window, peer's advertised receive window)."""
        return min(self.config.send_window_bytes, self.peer_recv_window)

    @property
    def send_window_free(self) -> int:
        """Bytes of send window still available for new assignments."""
        return max(0, self.effective_send_window - self.bytes_outstanding)

    def window_limited(self) -> bool:
        """True when the send window blocks assigning one more segment."""
        return self.send_window_free < min(self.mss, max(1, self.unassigned_bytes))

    def recv_window_limited(self) -> bool:
        """True when the *peer's advertised window* is the binding limit.

        This is the condition the kernel's opportunistic retransmission
        reacts to (Raiciu et al. [22]): the receive window has filled with
        out-of-order data stuck behind a slow subflow's segment.  A full
        local send buffer alone does not trigger it.
        """
        return self.bytes_outstanding + self.mss > self.peer_recv_window

    @property
    def delivered_bytes(self) -> int:
        """Bytes handed to the client application in order."""
        return self.receiver.delivered_bytes

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def try_send(self) -> None:
        """Assign as much queued data as scheduler + windows allow."""
        if self._sending:
            return
        self._sending = True
        try:
            self._service_rto_reinjections()
            while self.unassigned_bytes > 0:
                if self.window_limited():
                    if self.config.penalization_enabled and self.recv_window_limited():
                        self._opportunistic_retransmit()
                    break
                if _profiler.PROFILER is None:
                    subflow = self.scheduler.select(self)
                else:
                    subflow = _profiler.PROFILER.call(
                        "scheduler.decision", self.scheduler.select, self
                    )
                if subflow is None:
                    self.scheduler_waits += 1
                    break
                if not subflow.can_send():
                    raise RuntimeError(
                        f"scheduler {self.scheduler.name!r} returned a subflow "
                        f"without window space: {subflow!r}"
                    )
                payload = min(self.mss, self.unassigned_bytes)
                dsn = self.next_dsn
                self.next_dsn += payload
                self.unassigned_bytes -= payload
                self._outstanding_dsn[dsn] = (payload, subflow.sf_id)
                self._dsn_order.append(dsn)
                subflow.send_segment(dsn, payload)
                # Redundant-style schedulers ask for copies on other open
                # subflows; the receiver dedupes by DSN.
                for twin in self.scheduler.duplicate_targets(self, subflow):
                    if twin.can_send():
                        twin.send_segment(dsn, payload)
                        self.duplicate_transmissions += 1
        finally:
            self._sending = False
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.connection(self)

    def _on_subflow_established(self) -> None:
        self.try_send()

    # ------------------------------------------------------------------
    # Client side (runs at the receiver host)
    # ------------------------------------------------------------------
    def _client_on_data(self, packet: Packet) -> None:
        if _profiler.PROFILER is None:
            absorbed = self.receiver.on_data(packet)
        else:
            absorbed = _profiler.PROFILER.call(
                "receiver.reassembly", self.receiver.on_data, packet
            )
        if not absorbed:
            # Dropped for lack of receive-buffer space: stay silent so the
            # subflow-level RTO retransmits the segment once the window
            # reopens.  Acking it would discard the data permanently.
            return
        subflow = self.subflows[packet.subflow_id]
        subflow.send_ack(
            ack_seq=packet.seq,
            data_ack=self.receiver.data_ack,
            recv_window=self.receiver.recv_window,
        )

    # ------------------------------------------------------------------
    # Server side ACK processing
    # ------------------------------------------------------------------
    def _on_subflow_ack(self, subflow: Subflow, packet: Packet, newly_acked: bool) -> None:
        if packet.recv_window is not None:
            self.peer_recv_window = packet.recv_window
        if packet.data_ack > self.conn_una:
            self._advance_conn_una(packet.data_ack)
        self.try_send()

    def _advance_conn_una(self, data_ack: int) -> None:
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.conn_una_advance(self, data_ack)
        self.conn_una = data_ack
        while self._dsn_order and self._dsn_order[0] < data_ack:
            del self._outstanding_dsn[self._dsn_order.popleft()]
        if self._reinjected:
            self._reinjected = {d for d in self._reinjected if d >= data_ack}

    # ------------------------------------------------------------------
    # Meta-level retransmission after a subflow RTO
    # ------------------------------------------------------------------
    def _on_subflow_rto(self, subflow: Subflow) -> None:
        """Queue a timed-out subflow's stranded data for reinjection.

        Mirrors the kernel's meta retransmission: a subflow RTO is taken
        as a sign the path may be dead, so its unacknowledged data is
        also scheduled on the surviving subflows (the receiver dedupes if
        the original copy eventually arrives).
        """
        if len(self.subflows) < 2:
            return
        for dsn, payload in subflow.outstanding_dsn_ranges():
            if dsn >= self.conn_una and dsn not in self._rto_reinject_pending:
                self._rto_reinject_pending.add(dsn)
                self._rto_reinject_queue.append((dsn, payload, subflow.sf_id))
        self.try_send()

    def _service_rto_reinjections(self) -> None:
        while self._rto_reinject_queue:
            dsn, payload, owner_id = self._rto_reinject_queue[0]
            if dsn < self.conn_una:
                self._rto_reinject_queue.popleft()
                self._rto_reinject_pending.discard(dsn)
                continue
            # The path scheduler picks the reinjection subflow too (as in
            # the kernel), so path policy is preserved -- a primary-only
            # policy never spills onto the secondary, and a waiting ECF
            # defers the reinjection like any other segment.
            if _profiler.PROFILER is None:
                target = self.scheduler.select(self)
            else:
                target = _profiler.PROFILER.call(
                    "scheduler.decision", self.scheduler.select, self
                )
            if target is None or target.sf_id == owner_id or not target.can_send():
                return
            self._rto_reinject_queue.popleft()
            self._rto_reinject_pending.discard(dsn)
            self.reinjections += 1
            if _events.LOG is not None:
                _events.LOG.emit(_events.Reinjection(
                    t=self.sim.now,
                    conn=self.name,
                    dsn=dsn,
                    payload=payload,
                    from_sf=owner_id,
                    to_sf=target.sf_id,
                    cause="rto",
                ))
            target.send_segment(dsn, payload)

    # ------------------------------------------------------------------
    # Opportunistic retransmission + penalization (Raiciu et al.)
    # ------------------------------------------------------------------
    def _opportunistic_retransmit(self) -> None:
        """Reinject the window-blocking segment on a faster subflow.

        Mirrors the kernel mechanism: when the connection-level window is
        full, the segment at ``conn_una`` (stuck on a slow subflow) is sent
        again on a subflow with free CWND, and the slow subflow is
        penalized by halving its window at most once per its RTT.
        """
        entry = self._outstanding_dsn.get(self.conn_una)
        if entry is None:
            return
        payload, owner_id = entry
        if self.conn_una in self._reinjected:
            return
        owner = self.subflows[owner_id]
        candidates = [
            sf
            for sf in self.subflows
            if sf.sf_id != owner_id and sf.can_send()
        ]
        if not candidates:
            return
        target = min(candidates, key=lambda sf: sf.srtt_or_default())
        if target.srtt_or_default() >= owner.srtt_or_default():
            return
        self._reinjected.add(self.conn_una)
        self.reinjections += 1
        if _events.LOG is not None:
            _events.LOG.emit(_events.Reinjection(
                t=self.sim.now,
                conn=self.name,
                dsn=self.conn_una,
                payload=payload,
                from_sf=owner_id,
                to_sf=target.sf_id,
                cause="opportunistic",
            ))
        target.send_segment(self.conn_una, payload)
        last = self._last_penalized.get(owner_id, -float("inf"))
        if self.sim.now - last >= owner.srtt_or_default():
            owner.penalize()
            self._last_penalized[owner_id] = self.sim.now

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def set_deliver_callback(self, on_deliver: Callable[[int], None]) -> None:
        """(Re)wire the client-side delivery callback after construction."""
        self.receiver.on_deliver = on_deliver

    def payload_sent_by_subflow(self) -> Dict[int, int]:
        """Original payload bytes transmitted per subflow id."""
        return {sf.sf_id: sf.stats.payload_bytes_sent for sf in self.subflows}

    def subflow_by_path_name(self, name: str) -> Subflow:
        """First subflow riding the named path.

        Raises
        ------
        KeyError
            If no subflow uses a path with that name.
        """
        for sf in self.subflows:
            if sf.path.name == name:
                return sf
        raise KeyError(f"no subflow on path named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MptcpConnection({self.name!r}, scheduler={self.scheduler.name!r}, "
            f"unassigned={self.unassigned_bytes}B, outstanding={self.bytes_outstanding}B)"
        )
