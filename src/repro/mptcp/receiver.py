"""Connection-level receiver: DSN reassembly and out-of-order delay.

MPTCP preserves ordering within a subflow but not across subflows, so the
receiver buffers segments that arrive ahead of the connection-level
expected DSN and releases them once the gap fills.  The time a segment
spends in that buffer is the paper's *out-of-order delay* (Section 5.2.4):
"delaying delivery of arrived packets to the application layer".

The receiver also advertises a receive window (buffered-but-undelivered
bytes count against it) and exposes the cumulative DATA_ACK the sender's
penalization logic relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import events as _events
from repro.analysis import sanitize as _sanitize
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class MptcpReceiver:
    """Reassembles the DSN stream and measures reordering delay.

    Parameters
    ----------
    sim: the simulator (for timestamps).
    recv_buffer_bytes: advertised receive buffer capacity.
    on_deliver: ``on_deliver(nbytes)`` called for every in-order chunk
        handed to the application, in DSN order.
    record_delays: collect the per-packet out-of-order delay samples
        (disable in huge sweeps to save memory).
    """

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "sim",
        "uid",
        "recv_buffer_bytes",
        "on_deliver",
        "record_delays",
        "expected_dsn",
        "delivered_bytes",
        "duplicate_packets",
        "window_drops",
        "ooo_delays",
        "max_buffered_bytes",
        "last_arrival_by_subflow",
        "_buffered",
        "_buffered_bytes",
    )
    #: Fields :mod:`repro.sim.snapshot` encodes as owner references and
    #: rebinds on restore (exempts them from RPR914).
    SNAPSHOT_REBIND = ("on_deliver",)

    def __init__(
        self,
        sim: Simulator,
        recv_buffer_bytes: int = 4_000_000,
        on_deliver: Optional[Callable[[int], None]] = None,
        record_delays: bool = True,
    ) -> None:
        if recv_buffer_bytes <= 0:
            raise ValueError(f"recv_buffer_bytes must be positive, got {recv_buffer_bytes!r}")
        self.sim = sim
        self.uid = _events.next_uid()
        self.recv_buffer_bytes = int(recv_buffer_bytes)
        self.on_deliver = on_deliver
        self.record_delays = record_delays

        self.expected_dsn = 0
        self.delivered_bytes = 0
        self.duplicate_packets = 0
        #: Out-of-order segments discarded because buffering them would
        #: exceed ``recv_buffer_bytes``.  The subflow-level RTO recovers
        #: the data later, exactly like real out-of-window TCP data.
        self.window_drops = 0
        self.ooo_delays: List[float] = []
        self.max_buffered_bytes = 0
        #: Arrival time of the most recent data packet per subflow id
        #: (drives the Fig 5 "last packet time difference" analysis).
        self.last_arrival_by_subflow: Dict[int, float] = {}

        self._buffered: Dict[int, Tuple[int, float]] = {}
        self._buffered_bytes = 0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def on_data(self, packet: Packet) -> bool:
        """Absorb one data segment (possibly a duplicate or out of order).

        Returns True when the segment was absorbed (delivered, buffered,
        or recognized as an already-held duplicate) and should be acked at
        the subflow level; False when it was dropped for lack of receive
        buffer space, in which case the caller must *not* ack it so the
        sender's RTO eventually retransmits the data.
        """
        now = self.sim.now
        self.last_arrival_by_subflow[packet.subflow_id] = now
        dsn, payload = packet.dsn, packet.payload
        if dsn < self.expected_dsn or dsn in self._buffered:
            # The sender assigns DSN ranges contiguously and retransmits
            # them verbatim, so a stale segment is always a whole already
            # delivered (or already buffered) chunk -- a segment straddling
            # the delivery edge cannot occur and would silently lose its
            # unseen tail if treated as a duplicate.  Enforce the model
            # invariant here (cheap: duplicates are the rare path).
            if dsn < self.expected_dsn < dsn + payload:
                raise ValueError(
                    f"segment [{dsn}, {dsn + payload}) straddles the delivery "
                    f"edge expected_dsn={self.expected_dsn}; the sender never "
                    "emits overlapping DSN ranges"
                )
            self.duplicate_packets += 1
            return True
        absorbed = True
        if dsn == self.expected_dsn:
            self._deliver(payload, delay=0.0)
            self._drain_buffer()
        elif self._buffered_bytes + payload > self.recv_buffer_bytes:
            # Out-of-window data: the advertised buffer cannot hold it.
            # Real receivers discard such segments; modeling an infinite
            # buffer here would hide flow-control bugs on the sender side.
            self.window_drops += 1
            absorbed = False
        else:
            self._buffered[dsn] = (payload, now)
            self._buffered_bytes += payload
            if self._buffered_bytes > self.max_buffered_bytes:
                self.max_buffered_bytes = self._buffered_bytes
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.receiver(self)
        return absorbed

    def _drain_buffer(self) -> None:
        now = self.sim.now
        while self.expected_dsn in self._buffered:
            payload, arrived = self._buffered.pop(self.expected_dsn)
            self._buffered_bytes -= payload
            self._deliver(payload, delay=now - arrived)

    def _deliver(self, payload: int, delay: float) -> None:
        if _events.LOG is not None:
            _events.LOG.emit(_events.Delivered(
                t=self.sim.now,
                recv_uid=self.uid,
                dsn=self.expected_dsn,
                payload=payload,
                delay=delay,
            ))
        self.expected_dsn += payload
        self.delivered_bytes += payload
        if self.record_delays:
            self.ooo_delays.append(delay)
        if self.on_deliver is not None:
            self.on_deliver(payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def data_ack(self) -> int:
        """Cumulative connection-level acknowledgement (next expected DSN)."""
        return self.expected_dsn

    @property
    def recv_window(self) -> int:
        """Advertised window: capacity minus bytes parked out of order."""
        return max(0, self.recv_buffer_bytes - self._buffered_bytes)

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently held waiting for a DSN gap to fill."""
        return self._buffered_bytes

    @property
    def buffered_segments(self) -> int:
        return len(self._buffered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MptcpReceiver(expected={self.expected_dsn}, "
            f"buffered={self._buffered_bytes}B/{len(self._buffered)}seg)"
        )
