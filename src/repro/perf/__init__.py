"""Hot-path performance layer: deterministic counters and the bench matrix.

:mod:`repro.perf.counters` aggregates per-run event/packet/decision
counters at zero hot-path cost; :mod:`repro.perf.profiler` attributes
host wall time to simulation components (collapsed-stack/flamegraph
output, registry histograms) behind the same pointer-test idiom; and
:mod:`repro.perf.bench` runs the pinned workload matrix behind ``python
-m repro.cli bench`` and emits the machine-readable ``BENCH_<rev>.json``
perf trajectory.

Only the counter and profiler layers are imported eagerly -- the bench
harness pulls in every workload module, and protocol layers importing
``repro.perf`` must stay cycle-free.
"""

from repro.perf.counters import (
    ENV_VAR,
    PerfCollector,
    PerfRecord,
    PerfSnapshot,
    collecting,
    measure,
    perf_enabled,
)
from repro.perf.profiler import (
    SimProfiler,
    profile_enabled,
    profiling,
)

# NOTE: the live ``COLLECTOR`` / ``PROFILER`` globals are deliberately
# not re-exported -- a ``from repro.perf import COLLECTOR`` would freeze
# the binding at import time.  Read them as ``counters.COLLECTOR`` /
# ``profiler.PROFILER`` (hook sites do).

__all__ = [
    "ENV_VAR",
    "PerfCollector",
    "PerfRecord",
    "PerfSnapshot",
    "SimProfiler",
    "collecting",
    "measure",
    "perf_enabled",
    "profile_enabled",
    "profiling",
]
