"""Hot-path performance layer: deterministic counters and the bench matrix.

:mod:`repro.perf.counters` aggregates per-run event/packet/decision
counters at zero hot-path cost; :mod:`repro.perf.bench` runs the pinned
workload matrix behind ``python -m repro.cli bench`` and emits the
machine-readable ``BENCH_<rev>.json`` perf trajectory.

Only the counter layer is imported eagerly -- the bench harness pulls in
every workload module, and protocol layers importing ``repro.perf``
must stay cycle-free.
"""

from repro.perf.counters import (
    ENV_VAR,
    PerfCollector,
    PerfRecord,
    PerfSnapshot,
    collecting,
    measure,
    perf_enabled,
)

# NOTE: the live ``COLLECTOR`` global is deliberately not re-exported --
# a ``from repro.perf import COLLECTOR`` would freeze the binding at
# import time.  Read it as ``counters.COLLECTOR`` (hook sites do).

__all__ = [
    "ENV_VAR",
    "PerfCollector",
    "PerfRecord",
    "PerfSnapshot",
    "collecting",
    "measure",
    "perf_enabled",
]
