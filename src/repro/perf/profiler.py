"""Deterministic sim-profiler: per-component wall-time attribution.

The "next 10x" engine-speed item needs a *map* -- raw counters say how
many events ran, not where the wall time went.  This module attributes
host wall time to simulation components (engine dispatch, link delivery,
subflow processing, receiver reassembly, scheduler decisions, congestion
control updates, application callbacks) without perturbing the
simulation in any way:

* **Zero-cost when off.**  Every hook site reads the module-global
  :data:`PROFILER` and tests it against ``None`` -- the same
  construction-time/pointer-test idiom the perf counters
  (:data:`repro.perf.counters.COLLECTOR`), the sanitizer, and the flight
  recorder use.  With the profiler off, the engine keeps its hooks-off
  fast path; the six golden digests are pinned by
  ``tests/test_perf.py`` and must not move.
* **Byte-identity safe when on.**  The profiler only *reads* the host
  clock around dispatches; it never touches simulated time, event order,
  or protocol state, so results (and digests) are identical with it on
  or off.  Event/call *counts* in its report are deterministic; only the
  wall-second figures are host-dependent.

Attribution model: the engine brackets every dispatched callback with
:meth:`SimProfiler.begin_event` / :meth:`SimProfiler.end_event`; the
callback's owner class decides the component (``repro.net.link`` ->
``link.delivery`` and so on).  Finer-grained hot spots that are *calls
inside* an event -- scheduler decisions, cc updates, receiver
reassembly -- are timed at their call sites via
:meth:`SimProfiler.call`, which nests them under the enclosing
component so the collapsed-stack output reads like a flamegraph::

    engine;link.delivery 41230
    engine;link.delivery;mptcp.receiver.reassembly 8120
    engine;tcp.subflow;scheduler.decision 20050

(weights are integer microseconds; feed the text straight to any
FlameGraph renderer).  :meth:`SimProfiler.publish` folds the same data
into the :mod:`repro.obs.metrics` registry histograms.

Enable with ``REPRO_PROFILE=1`` (honored by the CLI), the
:func:`profiling` context manager, or ``python -m repro.cli bench
--profile out.txt``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

#: Environment toggle (mirrors ``REPRO_PERF`` / ``REPRO_OBS``).
ENV_VAR = "REPRO_PROFILE"

#: Log-spaced per-dispatch buckets, seconds (1us..1s + overflow slot).
#: Kept numerically identical to
#: ``repro.obs.metrics.DEFAULT_SECONDS_BUCKETS`` so :meth:`publish` can
#: fold pre-aggregated counts without resampling.
BUCKET_BOUNDS: Tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

#: Owner-module prefix -> component name, longest prefix wins.
_COMPONENT_BY_MODULE: Tuple[Tuple[str, str], ...] = (
    ("repro.net.link", "link.delivery"),
    ("repro.net", "net.other"),
    ("repro.tcp", "tcp.subflow"),
    ("repro.mptcp.receiver", "mptcp.receiver"),
    ("repro.mptcp", "mptcp.connection"),
    ("repro.apps", "app"),
    ("repro.sim", "engine.timer"),
)

_T = TypeVar("_T")


def profile_enabled() -> bool:
    """True when ``REPRO_PROFILE`` requests profiling."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0", "false", "no")


class SimProfiler:
    """Accumulates wall time per component and per nested hot-spot.

    One instance is meant to span any number of runs (a whole bench
    workload, a whole campaign job); :meth:`report`, :meth:`collapsed`
    and :meth:`publish` read out the totals.
    """

    def __init__(self) -> None:
        # component -> [calls, wall_seconds]
        self._components: Dict[str, List[float]] = {}
        # (component, hook) and ("engine",) style paths -> [calls, wall]
        self._paths: Dict[Tuple[str, ...], List[float]] = {}
        # component -> per-bucket dispatch counts (+ overflow slot)
        self._buckets: Dict[str, List[int]] = {}
        # classification cache: (owner type | bare callable) -> component
        self._classify_cache: Dict[Any, str] = {}
        # Currently dispatching component ("" between events).
        self._current: str = ""
        self._event_t0: float = 0.0
        self._event_wall: float = 0.0  # accumulated, across all events
        self._runs: int = 0
        self._run_wall: float = 0.0
        self._sims_adopted: int = 0

    # -- adoption (construction-time, engine __init__) ------------------
    def adopt_sim(self, sim: Any) -> None:
        """Note a simulator built while profiling (count only; the
        engine's ``run()`` does the actual bracketing)."""
        self._sims_adopted += 1

    # -- engine dispatch bracketing -------------------------------------
    def classify(self, callback: Callable[..., Any]) -> str:
        """Component owning a timer callback, by its bound owner's module."""
        owner = getattr(callback, "__self__", None)
        key: Any = type(owner) if owner is not None else callback
        cached = self._classify_cache.get(key)
        if cached is not None:
            return cached
        module = (
            type(owner).__module__ if owner is not None
            else getattr(callback, "__module__", "") or ""
        )
        component = "other"
        best = -1
        for prefix, name in _COMPONENT_BY_MODULE:
            if module.startswith(prefix) and len(prefix) > best:
                component = name
                best = len(prefix)
        self._classify_cache[key] = component
        return component

    def begin_event(self, callback: Callable[..., Any]) -> None:
        self._current = self.classify(callback)
        # Host-side attribution of host wall time; never simulated state.
        self._event_t0 = time.perf_counter()  # repro: noqa[RPR101]

    def end_event(self) -> None:
        dt = time.perf_counter() - self._event_t0  # repro: noqa[RPR101]
        component = self._current
        self._current = ""
        self._event_wall += dt
        slot = self._components.get(component)
        if slot is None:
            slot = self._components[component] = [0, 0.0]
        slot[0] += 1
        slot[1] += dt
        buckets = self._buckets.get(component)
        if buckets is None:
            buckets = self._buckets[component] = [0] * (len(BUCKET_BOUNDS) + 1)
        index = 0
        for bound in BUCKET_BOUNDS:
            if dt <= bound:
                break
            index += 1
        buckets[index] += 1
        path = ("engine", component)
        pslot = self._paths.get(path)
        if pslot is None:
            pslot = self._paths[path] = [0, 0.0]
        pslot[0] += 1
        pslot[1] += dt

    # -- nested hot-spot hooks ------------------------------------------
    def call(self, name: str, fn: Callable[..., _T], *args: Any) -> _T:
        """Time ``fn(*args)`` as hot-spot ``name`` nested under the
        component currently dispatching (call sites guard with
        ``PROFILER is not None``, so this never runs when off)."""
        t0 = time.perf_counter()  # repro: noqa[RPR101]
        try:
            return fn(*args)
        finally:
            dt = time.perf_counter() - t0  # repro: noqa[RPR101]
            parent = self._current or "outside"
            path = ("engine", parent, name) if parent != "outside" else (
                "outside", name,
            )
            slot = self._paths.get(path)
            if slot is None:
                slot = self._paths[path] = [0, 0.0]
            slot[0] += 1
            slot[1] += dt

    # -- run bracketing --------------------------------------------------
    def run_started(self) -> Tuple[float, float]:
        return (
            time.perf_counter(),  # repro: noqa[RPR101]
            self._event_wall,
        )

    def run_finished(self, token: Tuple[float, float]) -> None:
        t0, event_wall_before = token
        total = time.perf_counter() - t0  # repro: noqa[RPR101]
        inside_events = self._event_wall - event_wall_before
        overhead = max(0.0, total - inside_events)
        self._runs += 1
        self._run_wall += total
        slot = self._components.get("engine.dispatch")
        if slot is None:
            slot = self._components["engine.dispatch"] = [0, 0.0]
        slot[0] += 1
        slot[1] += overhead
        path = ("engine", "engine.dispatch")
        pslot = self._paths.get(path)
        if pslot is None:
            pslot = self._paths[path] = [0, 0.0]
        pslot[0] += 1
        pslot[1] += overhead

    # -- read-out ---------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Structured totals: per-component and per-nested-path."""
        components = {
            name: {"calls": int(calls), "wall_s": wall}
            for name, (calls, wall) in sorted(self._components.items())
        }
        hot_spots = {
            ";".join(path): {"calls": int(calls), "wall_s": wall}
            for path, (calls, wall) in sorted(self._paths.items())
            if len(path) > 2 or path[0] == "outside"
        }
        return {
            "runs": self._runs,
            "run_wall_s": self._run_wall,
            "sims_adopted": self._sims_adopted,
            "components": components,
            "hot_spots": hot_spots,
        }

    def collapsed(self) -> str:
        """Collapsed-stack text (``frame;frame weight`` per line, weight
        in integer microseconds) -- FlameGraph-renderer ready.

        Nested hot-spot time is subtracted from its parent frame so the
        flamegraph's self-time semantics hold (children never double
        count against their parent).
        """
        child_wall: Dict[Tuple[str, ...], float] = {}
        for path, (_calls, wall) in self._paths.items():
            if len(path) > 2:
                parent = path[:2]
                child_wall[parent] = child_wall.get(parent, 0.0) + wall
        lines = []
        for path, (_calls, wall) in sorted(self._paths.items()):
            self_wall = wall - child_wall.get(path, 0.0)
            usec = int(round(max(0.0, self_wall) * 1e6))
            if usec > 0:
                lines.append(f"{';'.join(path)} {usec}")
        return "\n".join(lines) + ("\n" if lines else "")

    def publish(self, registry: Any, campaign: str = "") -> None:
        """Fold totals into a :class:`repro.obs.metrics.MetricRegistry`."""
        from repro.obs import metrics as _metrics

        calls = registry.counter(
            "repro_profile_component_calls",
            _metrics.CATALOG["repro_profile_component_calls"][1],
            ("component",),
        )
        wall = registry.counter(
            "repro_profile_component_wall_seconds",
            _metrics.CATALOG["repro_profile_component_wall_seconds"][1],
            ("component",),
        )
        for name, (n, seconds) in sorted(self._components.items()):
            if n:
                calls.inc(n, component=name)
            if seconds > 0:
                wall.inc(seconds, component=name)
        histogram = registry.histogram(
            "repro_profile_event_seconds",
            _metrics.CATALOG["repro_profile_event_seconds"][1],
            ("component",),
            buckets=BUCKET_BOUNDS,
        )
        for name, bucket_counts in sorted(self._buckets.items()):
            total_wall = self._components.get(name, [0, 0.0])[1]
            histogram.merge_counts(bucket_counts, total_wall, component=name)


#: The live profiler, or ``None`` (the overwhelmingly common case).
#: Hook sites read this through the module (``_profiler.PROFILER``) so
#: rebinding is visible everywhere; one global load + ``is None`` test
#: is the entire cost when off.
PROFILER: Optional[SimProfiler] = None


@contextmanager
def profiling() -> Iterator[SimProfiler]:
    """Install a fresh :class:`SimProfiler` for the body; restores the
    previous global on exit (nesting replaces, it does not stack)."""
    global PROFILER
    previous = PROFILER
    profiler = SimProfiler()
    PROFILER = profiler
    try:
        yield profiler
    finally:
        PROFILER = previous


__all__ = [
    "BUCKET_BOUNDS",
    "ENV_VAR",
    "PROFILER",
    "SimProfiler",
    "profile_enabled",
    "profiling",
]
