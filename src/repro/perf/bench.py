"""The pinned bench matrix: the repo's perf trajectory.

``python -m repro.cli bench`` runs four fixed workloads -- bulk transfer,
DASH on-off streaming, Web-object retrieval, and a 4-subflow streaming
session -- under :func:`repro.perf.counters.measure` and writes
``BENCH_<rev>.json``.  The counters in each record are deterministic
(same spec, same counts -- tested); only ``wall_s`` and the derived
``events_per_wall_s`` vary with the host, which is exactly the quantity
the trajectory tracks across revisions.

The matrix is *pinned*: workload shapes never change, only the ``scale``
knob (CI smoke runs a small scale, local profiling a large one), so
events/sec numbers are comparable within a scale.  :func:`compare`
implements the CI regression gate against a committed baseline.
"""

from __future__ import annotations

import subprocess
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.perf.counters import PerfRecord, measure

#: Version of the BENCH_*.json layout.
BENCH_SCHEMA_VERSION = 1

#: Workload names in matrix order.
WORKLOADS = ("bulk", "dash_onoff", "web", "four_subflow")


def _bulk_spec(scale: float) -> Tuple[Callable[[Any], Any], Any]:
    from repro.apps.bulk import BulkDownloadSpec, run_bulk
    from repro.net.profiles import lte_config, wifi_config

    return run_bulk, BulkDownloadSpec(
        scheduler="ecf",
        path_configs=(wifi_config(8.6), lte_config(8.6)),
        size=max(64_000, int(4_000_000 * scale)),
        seed=1,
    )


def _dash_spec(scale: float) -> Tuple[Callable[[Any], Any], Any]:
    from repro.experiments.runner import StreamingRunConfig, run_streaming

    return run_streaming, StreamingRunConfig(
        scheduler="ecf",
        wifi_mbps=4.2,
        lte_mbps=8.6,
        video_duration=max(10.0, 60.0 * scale),
        seed=1,
    )


def _web_spec(scale: float) -> Tuple[Callable[[Any], Any], Any]:
    from repro.net.profiles import lte_config, wifi_config
    from repro.workloads.web import WebBrowsingSpec, cnn_like_page, run_web

    sizes = cnn_like_page().object_sizes
    count = max(6, int(len(sizes) * scale))
    return run_web, WebBrowsingSpec(
        scheduler="ecf",
        path_configs=(wifi_config(8.6), lte_config(8.6)),
        seed=1,
        object_sizes=sizes[:count],
    )


def _four_subflow_spec(scale: float) -> Tuple[Callable[[Any], Any], Any]:
    from repro.experiments.runner import StreamingRunConfig, run_streaming

    return run_streaming, StreamingRunConfig(
        scheduler="ecf",
        wifi_mbps=4.2,
        lte_mbps=8.6,
        video_duration=max(10.0, 45.0 * scale),
        seed=1,
        subflows_per_interface=2,
    )


_MATRIX: Dict[str, Callable[[float], Tuple[Callable[[Any], Any], Any]]] = {
    "bulk": _bulk_spec,
    "dash_onoff": _dash_spec,
    "web": _web_spec,
    "four_subflow": _four_subflow_spec,
}


def run_workload(name: str, scale: float = 1.0, repeat: int = 1) -> PerfRecord:
    """Run one matrix workload under perf collection.

    With ``repeat > 1`` the workload runs that many times and the record
    with the smallest wall time is kept (counters are deterministic, so
    only the wall clock differs between repeats; the minimum is the
    standard noise-resistant estimator for a fixed workload).
    """
    if name not in _MATRIX:
        raise ValueError(f"unknown workload {name!r}; choose from {WORKLOADS}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat!r}")
    best: Optional[PerfRecord] = None
    for _ in range(repeat):
        runner, spec = _MATRIX[name](scale)
        _result, record = measure(runner, spec)
        if best is None or record.wall_s < best.wall_s:
            best = record
    assert best is not None
    return best


def run_bench(
    scale: float = 1.0, workloads: Optional[List[str]] = None, repeat: int = 1
) -> Dict[str, PerfRecord]:
    """Run the matrix (or a subset); returns records keyed by workload."""
    names = list(workloads) if workloads else list(WORKLOADS)
    return {name: run_workload(name, scale, repeat=repeat) for name in names}


def current_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def report_to_dict(
    records: Dict[str, PerfRecord], rev: str, scale: float
) -> Dict[str, Any]:
    """The ``BENCH_<rev>.json`` payload."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "rev": rev,
        "scale": scale,
        "workloads": {name: record.to_dict() for name, record in records.items()},
    }


def compare(
    report: Dict[str, Any], baseline: Dict[str, Any], tolerance: float = 0.30
) -> List[str]:
    """Regression gate: events/sec drops beyond ``tolerance`` vs baseline.

    Only workloads present in both reports are compared (the gate must
    not fail because a baseline predates a new matrix entry).  Returns
    human-readable complaints, empty when everything is within bounds.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    complaints: List[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, record in report.get("workloads", {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        old = base.get("events_per_wall_s", 0.0)
        new = record.get("events_per_wall_s", 0.0)
        if old <= 0:
            continue
        floor = old * (1.0 - tolerance)
        if new < floor:
            complaints.append(
                f"{name}: {new:,.0f} events/s is below the regression floor "
                f"{floor:,.0f} (baseline {old:,.0f}, tolerance {tolerance:.0%})"
            )
    return complaints
