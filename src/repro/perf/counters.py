"""Deterministic per-run performance instrumentation.

The simulator's cost model is dominated by the per-packet event loop, so
the counters that matter are the ones the hot path already maintains for
free: events dispatched and stale (cancelled-but-popped) heap entries on
the :class:`~repro.sim.engine.Simulator`, packet counters on
:class:`~repro.net.link.LinkStats`, and decision counters on
:class:`~repro.core.base.Scheduler`.  This module aggregates them over a
*collection window* without adding any per-packet work:

* a window is opened with :func:`collecting` (or implicitly by the
  ``REPRO_PERF=1`` environment variable + :func:`measure`), which installs
  a process-global :data:`COLLECTOR`;
* ``Simulator``, ``Link``, and ``Scheduler`` constructors check the global
  once at *construction* time and register themselves when a window is
  open -- so when collection is off the hot path is untouched, and when it
  is on the only added cost is one pointer test per object built;
* :meth:`PerfCollector.snapshot` sums the adopted objects' lifetime
  counters into a :class:`PerfSnapshot`.

Every counter in a snapshot is a deterministic function of the simulated
run (same spec, same counts -- asserted in tests).  Wall-clock time is
*not*: :func:`measure` reports it separately in the :class:`PerfRecord`
so deterministic and noisy quantities never mix in one field.

This module must stay dependency-free within the package (like
:mod:`repro.analysis.sanitize`): the engine and link import it, so it
cannot import any protocol layer back.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Environment variable that enables perf collection around executor runs.
ENV_VAR = "REPRO_PERF"


def perf_enabled() -> bool:
    """True when the environment asks for per-run perf records."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


@dataclass(frozen=True)
class PerfSnapshot:
    """Deterministic counter totals over one collection window."""

    #: Events executed by adopted simulators (callbacks actually run).
    events_dispatched: int = 0
    #: Cancelled heap entries that were popped and skipped (dead weight).
    stale_pops: int = 0
    #: Timers pushed onto adopted heaps.
    timers_scheduled: int = 0
    #: ``Timer.cancel()`` calls that actually cancelled a live timer.
    timers_cancelled: int = 0
    #: Times a heap was rebuilt to shed cancelled entries.
    heap_compactions: int = 0
    #: Packets presented to adopted links.
    packets_in: int = 0
    #: Packets delivered out the far end of adopted links.
    packets_delivered: int = 0
    #: Packets dropped for any reason (queue, random loss, outage).
    packets_dropped: int = 0
    #: Payload + header bytes delivered by adopted links.
    bytes_delivered: int = 0
    #: ``select()`` calls answered by adopted schedulers.
    scheduler_decisions: int = 0
    #: Decisions that returned "wait" (no subflow chosen).
    scheduler_waits: int = 0
    #: Largest simulated clock reached by any adopted simulator.
    sim_time: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class PerfRecord:
    """One measured run: deterministic counters plus wall-clock context.

    ``events_per_wall_s`` is the headline throughput figure the bench
    trajectory tracks; ``wall_per_sim_s`` is how many host seconds one
    simulated second costs.
    """

    wall_s: float
    sim_s: float
    events: int
    counters: PerfSnapshot

    @property
    def events_per_wall_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def wall_per_sim_s(self) -> float:
        return self.wall_s / self.sim_s if self.sim_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "events": self.events,
            "events_per_wall_s": self.events_per_wall_s,
            "counters": self.counters.to_dict(),
        }


class PerfCollector:
    """Adopts simulators, links, and schedulers built while it is active.

    Strong references are intentional: a collection window brackets one
    run, so adopted objects die with the window.
    """

    def __init__(self) -> None:
        self._sims: List[Any] = []
        self._link_stats: List[Any] = []
        self._schedulers: List[Any] = []

    # -- adoption hooks (called from constructors) ----------------------
    def adopt_sim(self, sim: Any) -> None:
        self._sims.append(sim)

    def adopt_link(self, link: Any) -> None:
        self._link_stats.append(link.stats)

    def adopt_scheduler(self, scheduler: Any) -> None:
        self._schedulers.append(scheduler)

    def adopted_counts(self) -> Dict[str, int]:
        """How many objects of each kind this collector adopted."""
        return {
            "sims": len(self._sims),
            "links": len(self._link_stats),
            "schedulers": len(self._schedulers),
        }

    # -- aggregation -----------------------------------------------------
    def snapshot(self) -> PerfSnapshot:
        events = stale = scheduled = cancelled = compactions = 0
        sim_time = 0.0
        for sim in self._sims:
            events += sim.events_processed
            stale += sim.stale_pops
            scheduled += sim.timers_scheduled
            cancelled += sim.timers_cancelled
            compactions += sim.heap_compactions
            if sim.now > sim_time:
                sim_time = sim.now
        pin = pout = pdrop = bdel = 0
        for stats in self._link_stats:
            pin += stats.packets_in
            pout += stats.packets_delivered
            pdrop += stats.packets_dropped
            bdel += stats.bytes_delivered
        decisions = waits = 0
        for scheduler in self._schedulers:
            decisions += scheduler.decisions
            waits += scheduler.waits
        return PerfSnapshot(
            events_dispatched=events,
            stale_pops=stale,
            timers_scheduled=scheduled,
            timers_cancelled=cancelled,
            heap_compactions=compactions,
            packets_in=pin,
            packets_delivered=pout,
            packets_dropped=pdrop,
            bytes_delivered=bdel,
            scheduler_decisions=decisions,
            scheduler_waits=waits,
            sim_time=sim_time,
        )


#: The active collector, or ``None`` (the default: collection off).
COLLECTOR: Optional[PerfCollector] = None


@contextmanager
def collecting() -> Iterator[PerfCollector]:
    """Open a collection window; restores the previous collector on exit.

    Windows nest (the innermost wins), but simulators built in an outer
    window are not re-adopted by an inner one -- each object belongs to
    the window that was active when it was constructed.
    """
    global COLLECTOR
    previous = COLLECTOR
    COLLECTOR = collector = PerfCollector()
    try:
        yield collector
    finally:
        COLLECTOR = previous


def measure(runner: Callable[..., Any], *args: Any) -> Tuple[Any, PerfRecord]:
    """Run ``runner(*args)`` inside a collection window and time it.

    Returns the runner's result and a :class:`PerfRecord` combining the
    deterministic counter snapshot with the (non-deterministic) wall
    clock spent.
    """
    with collecting() as collector:
        # Host wall clock, not simulated time: this measures how fast the
        # hardware chews through the event loop, which is the whole point.
        start = time.perf_counter()  # repro: noqa[RPR101]
        result = runner(*args)
        wall = time.perf_counter() - start  # repro: noqa[RPR101]
    snap = collector.snapshot()
    record = PerfRecord(
        wall_s=wall,
        sim_s=snap.sim_time,
        events=snap.events_dispatched,
        counters=snap,
    )
    return result, record
