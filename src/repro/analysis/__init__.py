"""Static analysis, runtime sanitization, and trace-level checking.

Four layers guard the simulator's invariants:

* :mod:`repro.analysis.lint` -- an AST linter with simulator-specific
  rules (wall-clock reads, ad-hoc randomness, mutable defaults, float
  equality on timestamps, unfrozen specs, unresolvable registry kinds,
  out-of-engine event-queue manipulation), fronting the whole-program
  engine in :mod:`repro.analysis.flow` (import graph, call graph,
  taint dataflow) whose RPR8xx rules live in
  :mod:`repro.analysis.rules8xx`, with SARIF output
  (:mod:`repro.analysis.sarif`) and a committed findings baseline
  (:mod:`repro.analysis.baseline`);
* :mod:`repro.analysis.sanitize` -- runtime assertion hooks in the
  protocol layers, enabled with ``REPRO_SANITIZE=1`` / ``--sanitize``
  and compiled down to a single ``is None`` test when off;
* :mod:`repro.analysis.events` + :mod:`repro.analysis.check` -- a
  structured event log and a temporal property catalog over it,
  including the :mod:`repro.analysis.reference` differential oracles
  (``REPRO_CHECK=1`` / ``repro check``);
* :mod:`repro.analysis.races` -- an event-order race detector re-running
  scenarios under randomized same-timestamp tie-breaking.

Only the sanitizer is imported eagerly: every protocol module imports
``repro.analysis.sanitize`` and ``repro.analysis.events`` (which run
this ``__init__``), so importing the heavier layers here would drag the
scheduler and experiment registries into every hot-path import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.sanitize import SanitizerError, disable, enable, enabled

if TYPE_CHECKING:  # pragma: no cover - typing-only re-exports
    from repro.analysis.lint import (
        RULES,
        LintRun,
        Violation,
        lint_paths,
        lint_source,
        run_lint,
    )

__all__ = [
    "SanitizerError",
    "enable",
    "disable",
    "enabled",
    "RULES",
    "Violation",
    "LintRun",
    "lint_paths",
    "lint_source",
    "run_lint",
]

_LINT_EXPORTS = (
    "RULES",
    "Violation",
    "LintRun",
    "lint_paths",
    "lint_source",
    "run_lint",
)


def __getattr__(name: str):
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
