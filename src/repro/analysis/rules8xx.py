"""The RPR8xx rule family: semantic rules over the whole program.

Where the RPR1xx-9xx rules in :mod:`repro.analysis.lint` judge one
statement at a time, these consume a :class:`repro.analysis.flow.Project`
-- symbol tables, call graph, taint propagation -- so a violation can be
*N call hops* away from the source that causes it:

=======  ===========================================================
code     invariant
=======  ===========================================================
RPR811   no call path from simulation code to a wall-clock read
         (interprocedural RPR101)
RPR812   no call path from simulation code to a module-level
         ``random.*`` draw (interprocedural RPR102)
RPR813   no call path from simulation code to ad-hoc
         ``random.Random(...)`` construction (interprocedural RPR103)
RPR821   no mutation of state reachable from a frozen ``*Spec`` --
         including through aliases RPR402's field check cannot see
RPR831   no iteration over an unordered set feeding event scheduling,
         RNG stream derivation, or spec hashing
RPR841   no mixed-dimension arithmetic (seconds vs bytes vs packets,
         inferred from name suffixes and propagated through
         assignments and returns)
=======  ===========================================================

RPR811-813 report at **call sites** inside the simulation-semantics
packages (:data:`repro.analysis.flow.DEFAULT_TAINT_SCOPE`); the other
rules apply everywhere.  All of them honour ``# repro: noqa[...]`` and
the committed baseline exactly like the syntactic rules.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.flow import (
    DETERMINISM_SINKS,
    TAINT_CLOCK,
    TAINT_RANDOM,
    TAINT_RNG_CTOR,
    Project,
    Violation,
)

#: Rule catalog: code -> (summary, fix-it hint).
RULES_8XX: Dict[str, Tuple[str, str]] = {
    "RPR811": (
        "call path reaches a wall-clock read",
        "pass the simulator clock (sim.now) down instead; a helper that "
        "reads real time poisons every simulation that calls it",
    ),
    "RPR812": (
        "call path reaches a module-level random.* draw",
        "thread an injected random.Random / RngRegistry stream through "
        "the call chain instead of drawing from the shared module state",
    ),
    "RPR813": (
        "call path reaches ad-hoc random.Random construction",
        "derive the stream from RngRegistry at the top of the chain so "
        "seeds stay refactoring-proof",
    ),
    "RPR821": (
        "mutation of state reachable from a frozen spec",
        "specs are immutable cache keys: copy the payload "
        "(dataclasses.replace / tuple(...)) before mutating, or rebuild "
        "the spec with the new value",
    ),
    "RPR831": (
        "unordered set iteration feeds a determinism-sensitive sink",
        "iterate sorted(...) (or an insertion-ordered structure) before "
        "scheduling events, deriving RNG streams, or hashing specs; set "
        "order varies with hash randomization",
    ),
    "RPR841": (
        "mixed-dimension arithmetic",
        "convert explicitly at the boundary (e.g. bytes * 8 / rate_bps); "
        "the *_s/*_bytes/*_pkts suffix is a contract, not decoration",
    ),
}

_TAINT_CODE = {
    TAINT_CLOCK: "RPR811",
    TAINT_RANDOM: "RPR812",
    TAINT_RNG_CTOR: "RPR813",
}

#: Reporting order for multi-kind taints.
_KIND_ORDER = (TAINT_CLOCK, TAINT_RANDOM, TAINT_RNG_CTOR)


def _make(path: str, line: int, col: int, code: str, detail: str) -> Violation:
    summary, fixit = RULES_8XX[code]
    return Violation(
        path=path,
        line=line,
        col=col,
        code=code,
        message=f"{summary}: {detail}",
        fixit=fixit,
    )


def taint_violations(project: Project) -> List[Violation]:
    """RPR811-813: call sites of transitively tainted functions.

    The *direct* source call (``time.time()`` itself) is the syntactic
    RPR101-103's business; these fire one level up and beyond, at every
    in-scope call of a function whose body -- however deep -- reaches a
    source.
    """
    violations: List[Violation] = []
    for summary in project.summaries:
        if not project.in_taint_scope(summary.module):
            continue
        for site in summary.calls:
            target = project.resolve(summary, site.caller, site.callee)
            if target is None:
                continue
            kinds = project.taint.get(target)
            if not kinds:
                continue
            for kind in _KIND_ORDER:
                if kind not in kinds:
                    continue
                chain = project.taint_chain(target, kind)
                violations.append(
                    _make(
                        summary.path,
                        site.line,
                        site.col,
                        _TAINT_CODE[kind],
                        f"{site.callee}() reaches {chain[-1]} "
                        f"(via {' -> '.join(chain)})",
                    )
                )
    return violations


def spec_mutation_violations(project: Project) -> List[Violation]:
    """RPR821: mutations of frozen-spec-reachable state, alias-aware.

    Candidates recorded with a class name are confirmed against the
    program-wide frozen-spec set (a mutation through a plain mutable
    dataclass is fine); by-convention candidates (a variable literally
    named ``spec``/``*_spec``) always report -- naming something a spec
    and then mutating its payload is the bug either way.
    """
    violations: List[Violation] = []
    for summary in project.summaries:
        for mutation in summary.spec_mutations:
            if mutation.cls is not None and mutation.cls not in project.frozen_specs:
                continue
            cls = mutation.cls or "a *Spec-named object"
            violations.append(
                _make(
                    summary.path,
                    mutation.line,
                    mutation.col,
                    "RPR821",
                    f"{mutation.detail} mutates state reachable from "
                    f"frozen {cls}",
                )
            )
    return violations


def unordered_iteration_violations(project: Project) -> List[Violation]:
    """RPR831: set iteration whose body feeds a determinism sink.

    A loop is flagged when its body calls a sink directly
    (``schedule`` / ``schedule_at`` / ``stream`` / ``fork`` /
    ``spec_hash`` / ``canonical_json``) *or* calls a function the call
    graph proves reaches one -- the static sibling of the runtime race
    detector.
    """
    violations: List[Violation] = []
    for summary in project.summaries:
        calls_by_loop: Dict[int, List] = {}
        for site in summary.calls:
            if site.loop is not None:
                calls_by_loop.setdefault(site.loop, []).append(site)
        for loop in summary.loops:
            detail = None
            for site in calls_by_loop.get(loop.index, ()):
                terminal = site.callee.rsplit(".", 1)[-1]
                if terminal in DETERMINISM_SINKS:
                    detail = f"calls {terminal}() while iterating {loop.desc}"
                    break
                target = project.resolve(summary, site.caller, site.callee)
                if target is not None and target in project.reaches_sink:
                    chain = project.sink_chain(target)
                    detail = (
                        f"calls {site.callee}() while iterating {loop.desc} "
                        f"(reaches {chain[-1]} via {' -> '.join(chain)})"
                    )
                    break
            if detail is not None:
                violations.append(
                    _make(summary.path, loop.line, loop.col, "RPR831", detail)
                )
    return violations


def unit_violations(project: Project) -> List[Violation]:
    """RPR841: collected during extraction; cached with the module."""
    violations: List[Violation] = []
    for summary in project.summaries:
        violations.extend(v for v in summary.local if v.code == "RPR841")
    return violations


def flow_violations(project: Project) -> List[Violation]:
    """Every RPR8xx finding for the program, unsorted and un-noqa'd.

    RPR841 findings are **not** included: they are intra-module, so
    they live in each summary's ``local`` list alongside the syntactic
    rules (and get cached with the file).  The front end merges both
    streams.
    """
    violations: List[Violation] = []
    violations.extend(taint_violations(project))
    violations.extend(spec_mutation_violations(project))
    violations.extend(unordered_iteration_violations(project))
    return violations
