"""The static state model: ownership graph, snapshot contract, RPR9xx.

The ROADMAP's checkpoint/fork item (counterfactual twin runs) needs an
answer to one question before any refactor can start: *what is the
complete mutable state of a running simulation?*  This module derives
that answer statically from the :class:`repro.analysis.flow.Project`
summaries -- for every class in the simulation-state packages it
collects the full set of instance attributes ever assigned, classifies
each field, and assembles the object-ownership graph rooted at
``Simulator``:

* **fields** -- every ``self.<attr>`` assignment, classified as
  ``scalar`` / ``container`` / ``rng`` (an RNG stream) / ``ref``
  (another sim object) / ``callable`` (a stored callable or bound
  method) / ``generator`` / ``handle`` (an OS resource);
* **ownership edges** -- a class references another when a field holds
  an instance of it (constructor call, class-annotated parameter, or a
  class-typed annotation), plus base-class edges;
* the **simulator component** -- every class reachable from a class
  named ``Simulator`` along those edges; this is the state a
  checkpoint must capture and a fork must deep-copy.

:func:`build_state_model` renders the whole thing as a deterministic
JSON document -- the committed ``state-model.json`` is the contract the
checkpoint/fork refactor codes against, and a regen test asserts it
byte-identical.  On top of the same model sit the RPR9xx rules
(:data:`RULES_9XX`), routed through :func:`repro.analysis.lint.run_lint`
like every other family:

=======  ===========================================================
code     invariant
=======  ===========================================================
RPR911   no hidden state: every instance attribute is born in
         ``__init__`` (or a declared reset path), so a snapshot of
         ``__init__``-visible state is complete
RPR912   no ``__slots__`` drift: slotted classes assign only declared
         slots, declare no dead slots, and small hot-path classes on
         the Simulator ownership graph declare ``__slots__`` at all
RPR913   no shared-mutable aliasing: caller-provided containers are
         copied before storing; one local container is not stored
         into two fields
RPR914   no fork-unsafe state reachable from ``Simulator``: open
         files/sockets/threads, live generators, stored lambdas or
         bound methods of *other* objects would dangle across a
         snapshot
RPR915   no drift between a class's declared ``STATE_FIELDS``
         contract and the fields the analysis actually observes
=======  ===========================================================

All findings honour ``# repro: noqa[RPR91x]`` on the reported line and
the committed baseline, exactly like the RPR1xx-9xx syntactic rules
and the RPR8xx flow rules.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow import (
    ClassInfo,
    FieldAssign,
    ModuleSummary,
    Project,
    Violation,
    class_candidates,
)

#: Schema version of the rendered ``state-model.json``.
STATE_MODEL_VERSION = 1

#: Packages whose classes carry simulation state.  Telemetry
#: (``repro.obs`` / ``repro.perf``), the service layer, and the
#: analysis package itself legitimately hold handles, wall-clock
#: readers, and caches -- they are rebuilt, not snapshotted, so they
#: are out of scope.  Files outside the repro package (fixtures,
#: scripts linted explicitly) are always in scope.
STATE_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.tcp",
    "repro.net",
    "repro.mptcp",
    "repro.apps",
    "repro.core",
)

#: Methods that legitimately give birth to instance attributes: the
#: constructor family plus the conventional reset paths.  ``<class>``
#: marks dataclass-style class-body annotations.
INIT_METHODS = frozenset(
    {"<class>", "__init__", "__post_init__", "__new__", "__set_name__", "reset", "clear", "setup"}
)

#: Classes with at most this many observed fields are "small": when one
#: sits on the Simulator ownership graph without ``__slots__``, RPR912
#: flags it (the ROADMAP speed item's per-instance-dict tax).  Larger
#: classes are config-heavy aggregates where ``__slots__`` buys little.
HOT_PATH_MAX_FIELDS = 10

#: Slot names the interpreter itself may populate.
_IMPLICIT_SLOTS = frozenset({"__dict__", "__weakref__"})

#: Merged-field kind precedence: when a field is assigned different
#: value shapes in different methods, the most snapshot-relevant kind
#: wins (a field that is *ever* a handle is a handle).
_KIND_PRECEDENCE = (
    "handle",
    "generator",
    "rng",
    "callable",
    "callable-self",
    "ref",
    "container",
    "scalar",
    "param",
    "decl",
    "unknown",
    "aug",
)
_KIND_RANK = {kind: rank for rank, kind in enumerate(_KIND_PRECEDENCE)}

#: Rule catalog: code -> (summary, fix-it hint).
RULES_9XX: Dict[str, Tuple[str, str]] = {
    "RPR911": (
        "hidden state: attribute born outside __init__/reset",
        "assign the attribute (even to None) in __init__ or a declared "
        "reset path; a snapshot of __init__-visible state must be the "
        "complete state",
    ),
    "RPR912": (
        "__slots__ drift",
        "keep __slots__ in lockstep with the fields actually assigned; "
        "small hot-path classes on the Simulator ownership graph should "
        "declare __slots__ (per-instance dicts are the speed item's tax)",
    ),
    "RPR913": (
        "shared mutable container aliased into instance state",
        "copy before storing (list(x) / dict(x) / deque(x)); two objects "
        "mutating one container makes checkpoint/fork and cache keys lie",
    ),
    "RPR914": (
        "fork-unsafe state reachable from Simulator",
        "keep OS handles, live generators, and bound methods of other "
        "objects out of snapshot-reachable state; store plain data and "
        "rebind behaviour after a fork, or declare the field in the "
        "class's SNAPSHOT_REBIND tuple when repro.sim.snapshot rebinds "
        "it through the owner registry",
    ),
    "RPR915": (
        "declared STATE_FIELDS drift from observed fields",
        "update the class's STATE_FIELDS tuple to match the attributes "
        "the analysis observes; the declaration is the snapshot contract",
    ),
}


def _make(path: str, line: int, col: int, code: str, detail: str) -> Violation:
    summary, fixit = RULES_9XX[code]
    return Violation(
        path=path,
        line=line,
        col=col,
        code=code,
        message=f"{summary}: {detail}",
        fixit=fixit,
    )


def in_state_scope(module: str, scope: Sequence[str] = STATE_SCOPE) -> bool:
    """Whether RPR9xx rules report findings for this module."""
    if module != "repro" and not module.startswith("repro."):
        return True  # explicitly linted external file (fixtures, scripts)
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in scope
    )


class FieldModel:
    """One instance attribute, merged across every assignment to it."""

    __slots__ = ("name", "kind", "target", "methods", "assigns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.kind = "unknown"
        self.target: Optional[str] = None
        self.methods: Set[str] = set()
        self.assigns: List[FieldAssign] = []


class ClassModel:
    """One class: its summary, raw info, and merged field views."""

    __slots__ = ("qual", "module", "name", "summary", "info", "fields", "refs", "in_component")

    def __init__(self, qual: str, summary: ModuleSummary, info: ClassInfo) -> None:
        self.qual = qual
        self.module = summary.module
        self.name = qual.rsplit(".", 1)[1]
        self.summary = summary
        self.info = info
        self.fields: Dict[str, FieldModel] = {}
        self.refs: Set[str] = set()
        self.in_component = False


class StateModel:
    """The whole-program state model over a :class:`Project`."""

    def __init__(self, project: Project, scope: Sequence[str] = STATE_SCOPE) -> None:
        self.project = project
        self.scope = tuple(scope)
        #: qualified class name ("module.Class") -> model
        self.classes: Dict[str, ClassModel] = {}
        #: bare class name -> list of quals (for unique-name fallback)
        self._by_name: Dict[str, List[str]] = {}
        for summary in project.summaries:
            for name, info in summary.classes.items():
                qual = f"{summary.module}.{name}"
                self.classes[qual] = ClassModel(qual, summary, info)
                self._by_name.setdefault(name, []).append(qual)
        for model in self.classes.values():
            self._merge_fields(model)
        for model in self.classes.values():
            self._collect_refs(model)
        self._mark_component()

    # -- resolution ----------------------------------------------------
    def resolve_class(self, summary: ModuleSummary, name: str) -> Optional[str]:
        """Qualified class name for a bare name used inside ``summary``.

        Local classes win, then imported names (including TYPE_CHECKING
        imports -- the extractor records them all), then a program-wide
        unique-name fallback; an ambiguous bare name stays unresolved so
        the graph never invents an edge.
        """
        if name in summary.classes:
            return f"{summary.module}.{name}"
        if name in summary.imports:
            target = summary.imports[name]
            module, _, cls = target.rpartition(".")
            owner = self.project.by_module.get(module)
            if owner is not None and cls in owner.classes:
                return f"{module}.{cls}"
        matches = self._by_name.get(name, [])
        if len(matches) == 1:
            return matches[0]
        return None

    def base_quals(self, model: ClassModel) -> List[Optional[str]]:
        """Resolved qual (or None) for each declared base, in order."""
        return [
            self.resolve_class(model.summary, base.rsplit(".", 1)[-1])
            for base in model.info.bases
        ]

    def slots_closure(self, model: ClassModel) -> Optional[Set[str]]:
        """All slot names an instance has, or None when it has a dict.

        None means "cannot prove the instance is slot-restricted": the
        class (or any resolvable base) lacks ``__slots__``, or a base
        does not resolve in-project (so it may well define ``__dict__``).
        """
        seen: Set[str] = set()
        return self._slots_closure(model, seen)

    def _slots_closure(self, model: ClassModel, seen: Set[str]) -> Optional[Set[str]]:
        if model.qual in seen:
            return set()
        seen.add(model.qual)
        if model.info.slots is None:
            return None
        closure = set(model.info.slots)
        for base_qual in self.base_quals(model):
            if base_qual is None:
                return None
            base = self.classes.get(base_qual)
            if base is None:
                return None
            inherited = self._slots_closure(base, seen)
            if inherited is None:
                return None
            closure.update(inherited)
        return closure

    def subclasses_of(self, qual: str) -> List[str]:
        """Every in-project class that (transitively) inherits ``qual``."""
        found: List[str] = []
        for model in self.classes.values():
            if model.qual == qual:
                continue
            probe = [model]
            seen: Set[str] = set()
            while probe:
                current = probe.pop()
                if current.qual in seen:
                    continue
                seen.add(current.qual)
                for base_qual in self.base_quals(current):
                    if base_qual == qual:
                        found.append(model.qual)
                        probe = []
                        break
                    if base_qual is not None and base_qual in self.classes:
                        probe.append(self.classes[base_qual])
                else:
                    continue
                break
        return sorted(set(found))

    # -- field merging -------------------------------------------------
    def _final_kind(
        self, model: ClassModel, assign: FieldAssign
    ) -> Tuple[str, Optional[str]]:
        """(kind, resolved target qual) after whole-program resolution."""
        if assign.kind == "ref" and assign.target is not None:
            return "ref", self.resolve_class(model.summary, assign.target)
        if assign.kind == "selfattr" and assign.target is not None:
            if f"{model.qual}.{assign.target}" in self.project.functions:
                return "callable-self", None
            return "unknown", None
        if assign.kind == "paramattr" and assign.target is not None:
            cls_name, _, attr = assign.target.partition(".")
            qual = self.resolve_class(model.summary, cls_name)
            if qual is not None and f"{qual}.{attr}" in self.project.functions:
                return "callable", qual
            return "unknown", qual
        return assign.kind, None

    def _merge_fields(self, model: ClassModel) -> None:
        for assign in model.info.fields:
            field = model.fields.get(assign.name)
            if field is None:
                field = model.fields[assign.name] = FieldModel(assign.name)
            field.assigns.append(assign)
            field.methods.add(assign.method)
            kind, target = self._final_kind(model, assign)
            if _KIND_RANK.get(kind, len(_KIND_RANK)) < _KIND_RANK.get(
                field.kind, len(_KIND_RANK)
            ):
                field.kind = kind
                field.target = target

    def _collect_refs(self, model: ClassModel) -> None:
        for field in model.fields.values():
            if field.target is not None:
                model.refs.add(field.target)
            for assign in field.assigns:
                for candidate in class_candidates(assign.ann):
                    qual = self.resolve_class(model.summary, candidate)
                    if qual is not None:
                        model.refs.add(qual)
        for base_qual in self.base_quals(model):
            if base_qual is not None:
                model.refs.add(base_qual)
        model.refs.discard(model.qual)

    # -- the simulator component ---------------------------------------
    def _mark_component(self) -> None:
        undirected: Dict[str, Set[str]] = {qual: set() for qual in self.classes}
        for model in self.classes.values():
            for ref in model.refs:
                if ref in undirected:
                    undirected[model.qual].add(ref)
                    undirected[ref].add(model.qual)
        roots = sorted(
            qual for qual, model in self.classes.items() if model.name == "Simulator"
        )
        work = list(roots)
        seen: Set[str] = set()
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            self.classes[current].in_component = True
            work.extend(undirected[current])
        self.roots = roots

    def in_scope(self, model: ClassModel) -> bool:
        return in_state_scope(model.module, self.scope)


# ----------------------------------------------------------------------
# The committed artifact
# ----------------------------------------------------------------------


def build_state_model(
    project: Project, scope: Sequence[str] = STATE_SCOPE
) -> Dict[str, Any]:
    """The ``state-model.json`` document: deterministic, line-free.

    Only repro classes inside the state scope are included, so the
    document depends on the package sources alone -- not on which extra
    paths (tests, fixtures) happened to be analyzed alongside them.
    Line numbers are deliberately omitted: editing a docstring above a
    class must not churn the committed contract.
    """
    model = StateModel(project, scope=scope)
    classes: Dict[str, Any] = {}
    for qual in sorted(model.classes):
        cls = model.classes[qual]
        if not cls.module.startswith("repro.") or not model.in_scope(cls):
            continue
        fields: Dict[str, Any] = {}
        for name in sorted(cls.fields):
            field = cls.fields[name]
            entry: Dict[str, Any] = {
                "kind": field.kind,
                "methods": sorted(field.methods),
            }
            if field.target is not None:
                entry["target"] = field.target
            fields[name] = entry
        classes[qual] = {
            "bases": [
                resolved if resolved is not None else base
                for base, resolved in zip(cls.info.bases, model.base_quals(cls))
            ],
            "dataclass": cls.info.is_dataclass,
            "slots": sorted(cls.info.slots) if cls.info.slots is not None else None,
            "declared_state": (
                sorted(cls.info.declared_state)
                if cls.info.declared_state is not None
                else None
            ),
            "rebind": sorted(cls.info.rebind) if cls.info.rebind is not None else None,
            "in_simulator_component": cls.in_component,
            "fields": fields,
            "refs": sorted(ref for ref in cls.refs if ref in model.classes),
        }
    return {
        "version": STATE_MODEL_VERSION,
        "roots": [root for root in model.roots if root in classes],
        "scope": list(scope),
        "classes": classes,
    }


def render_state_model(document: Dict[str, Any]) -> str:
    """Canonical byte form: sorted keys, two-space indent, one newline."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def state_fields_index(document: Dict[str, Any]) -> Dict[str, Set[str]]:
    """Per-class observed-field closure from a ``state-model.json`` doc.

    Maps each qualified class name to the union of its own observed
    field names and those of every (transitively resolvable) base in
    the document.  This is the static side of the runtime snapshot
    contract: :mod:`repro.sim.snapshot` refuses to capture any field
    that does not appear here for the object's class.
    """
    classes = document.get("classes", {})
    cache: Dict[str, Set[str]] = {}

    def closure(qual: str, trail: Set[str]) -> Set[str]:
        if qual in cache:
            return cache[qual]
        if qual in trail:
            return set()
        entry = classes.get(qual)
        if entry is None:
            return set()
        trail = trail | {qual}
        names = set(entry.get("fields", {}))
        for base in entry.get("bases", []):
            names |= closure(base, trail)
        cache[qual] = names
        return names

    return {qual: closure(qual, set()) for qual in classes}


# ----------------------------------------------------------------------
# The RPR9xx rules
# ----------------------------------------------------------------------


def _hidden_state(model: StateModel, cls: ClassModel) -> List[Violation]:
    violations: List[Violation] = []
    for name in sorted(cls.fields):
        field = cls.fields[name]
        births = [a for a in field.assigns if a.kind != "aug"]
        if not births:
            continue
        if any(a.method in INIT_METHODS for a in births):
            continue
        first = min(births, key=lambda a: (a.line, a.col))
        violations.append(
            _make(
                cls.summary.path,
                first.line,
                first.col,
                "RPR911",
                f"{cls.name}.{name} first assigned in {first.method}()",
            )
        )
    return violations


def _slots_drift(model: StateModel, cls: ClassModel) -> List[Violation]:
    violations: List[Violation] = []
    closure = model.slots_closure(cls)
    if cls.info.slots is not None and closure is not None:
        # (a) assigned attributes missing from the slot closure.
        for name in sorted(cls.fields):
            if name in closure or name in _IMPLICIT_SLOTS:
                continue
            setattrs = [a for a in cls.fields[name].assigns if a.kind != "decl"]
            if not setattrs:
                continue
            first = min(setattrs, key=lambda a: (a.line, a.col))
            violations.append(
                _make(
                    cls.summary.path,
                    first.line,
                    first.col,
                    "RPR912",
                    f"{cls.name}.{name} assigned but not in __slots__",
                )
            )
        # (b) declared slots never assigned, here or in any subclass.
        assigned = set(cls.fields)
        for sub_qual in model.subclasses_of(cls.qual):
            assigned.update(model.classes[sub_qual].fields)
        dead = sorted(
            slot
            for slot in cls.info.slots
            if slot not in assigned and slot not in _IMPLICIT_SLOTS
        )
        if dead:
            violations.append(
                _make(
                    cls.summary.path,
                    cls.info.slots_line or cls.info.line,
                    1,
                    "RPR912",
                    f"{cls.name} declares dead slot(s): {', '.join(dead)}",
                )
            )
    if (
        cls.info.slots is None
        and cls.in_component
        and not cls.info.is_dataclass
        and cls.fields
        and len(cls.fields) <= HOT_PATH_MAX_FIELDS
    ):
        # (c) small hot-path class on the ownership graph without slots;
        # only when every base is provably slot-restricted (or absent),
        # so adding __slots__ actually removes the instance dict.
        bases = model.base_quals(cls)
        slotted_bases = all(
            base is not None
            and base in model.classes
            and model.slots_closure(model.classes[base]) is not None
            for base in bases
        )
        if slotted_bases:
            violations.append(
                _make(
                    cls.summary.path,
                    cls.info.line,
                    1,
                    "RPR912",
                    f"{cls.name} ({len(cls.fields)} field(s)) is on the "
                    "Simulator ownership graph but declares no __slots__",
                )
            )
    return violations


def _shared_aliasing(model: StateModel, cls: ClassModel) -> List[Violation]:
    violations: List[Violation] = []
    by_alias: Dict[Tuple[str, str], List[FieldAssign]] = {}
    for name in sorted(cls.fields):
        field = cls.fields[name]
        for assign in field.assigns:
            if assign.shared and assign.kind == "container":
                violations.append(
                    _make(
                        cls.summary.path,
                        assign.line,
                        assign.col,
                        "RPR913",
                        f"{cls.name}.{name} stores a caller-provided mutable "
                        "container without copying",
                    )
                )
            if assign.alias is not None:
                by_alias.setdefault((assign.method, assign.alias), []).append(assign)
    for (method, alias), assigns in sorted(by_alias.items()):
        names = sorted({a.name for a in assigns})
        if len(names) < 2:
            continue
        second = sorted(assigns, key=lambda a: (a.line, a.col))[1]
        violations.append(
            _make(
                cls.summary.path,
                second.line,
                second.col,
                "RPR913",
                f"{cls.name}.{' and '.join(names[:2])} alias the same local "
                f"container {alias!r} (in {method}())",
            )
        )
    return violations


def _fork_unsafe(model: StateModel, cls: ClassModel) -> List[Violation]:
    if not cls.in_component:
        return []
    violations: List[Violation] = []
    # Fields the snapshot protocol re-encodes as owner references and
    # rebinds on restore: stored callables there are fork-safe by
    # construction.  A rebind declaration cannot bless handles or live
    # generators -- no registry can recreate those.
    rebind = frozenset(cls.info.rebind or ())
    for name in sorted(cls.fields):
        field = cls.fields[name]
        for assign in field.assigns:
            kind, target = model._final_kind(cls, assign)
            detail = None
            if kind == "handle":
                detail = f"{cls.name}.{name} holds an OS handle"
            elif kind == "generator":
                detail = f"{cls.name}.{name} holds a live generator"
            elif kind == "callable" and name in rebind:
                continue
            elif kind == "callable":
                if assign.target == "<lambda>":
                    detail = f"{cls.name}.{name} stores a lambda"
                elif assign.shared:
                    detail = f"{cls.name}.{name} stores a caller-provided callable"
                elif target is not None:
                    detail = (
                        f"{cls.name}.{name} stores a bound method of "
                        f"{target.rsplit('.', 1)[-1]}"
                    )
                else:
                    detail = f"{cls.name}.{name} stores a callable"
            if detail is not None:
                violations.append(
                    _make(cls.summary.path, assign.line, assign.col, "RPR914", detail)
                )
                break  # one finding per field is enough
    return violations


def _declared_drift(model: StateModel, cls: ClassModel) -> List[Violation]:
    if cls.info.declared_state is None:
        return []
    declared = set(cls.info.declared_state)
    # Aug-only fields (``self.decisions += 1``) mutate *inherited* state;
    # the declaring class, not the mutator, owns them in the contract.
    observed = {
        name
        for name, field in cls.fields.items()
        if any(assign.kind != "aug" for assign in field.assigns)
    }
    missing = sorted(declared - observed)
    extra = sorted(observed - declared)
    if not missing and not extra:
        return []
    parts = []
    if extra:
        parts.append(f"observed but undeclared: {', '.join(extra)}")
    if missing:
        parts.append(f"declared but never assigned: {', '.join(missing)}")
    return [
        _make(
            cls.summary.path,
            cls.info.declared_line or cls.info.line,
            1,
            "RPR915",
            f"{cls.name} STATE_FIELDS drift ({'; '.join(parts)})",
        )
    ]


def state_violations(
    project: Project, scope: Sequence[str] = STATE_SCOPE
) -> List[Violation]:
    """Every RPR9xx finding for the program, unsorted and un-noqa'd.

    The front end (:func:`repro.analysis.lint.run_lint`) merges these
    with the per-module and RPR8xx streams, applies noqa against the
    sources, and sorts.
    """
    model = StateModel(project, scope=scope)
    violations: List[Violation] = []
    for qual in sorted(model.classes):
        cls = model.classes[qual]
        if not model.in_scope(cls):
            continue
        violations.extend(_hidden_state(model, cls))
        violations.extend(_slots_drift(model, cls))
        violations.extend(_shared_aliasing(model, cls))
        violations.extend(_fork_unsafe(model, cls))
        violations.extend(_declared_drift(model, cls))
    return violations
