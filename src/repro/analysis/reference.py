"""Reference scheduler models: Algorithm 1 transcribed from the paper.

These are *independent re-implementations* used as differential oracles:
the production schedulers log every decision with its raw inputs
(:class:`repro.analysis.events.EcfDecision`,
:class:`repro.analysis.events.MinRttDecision`), and the replay functions
here recompute what the paper says the decision should have been from
those inputs alone.  A divergence means the implementation and the paper
disagree -- either a bug or an intentional deviation that must be
documented.

The ECF reference is deliberately written from the paper's Algorithm 1
pseudocode (Section 4), not from ``repro/core/ecf.py``: it keeps its own
``waiting`` hysteresis state machine and recomputes the threshold rather
than trusting the logged one.  Keep it that way -- an oracle that shares
code with the subject checks nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.events import EcfDecision, MinRttDecision


@dataclass(frozen=True)
class Divergence:
    """One decision where the implementation and the reference disagree."""

    index: int  # position in the replayed decision sequence
    t: float
    expected: str
    actual: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - message formatting
        return (
            f"decision #{self.index} at t={self.t:.6f}: reference says "
            f"{self.expected!r}, implementation did {self.actual!r} ({self.detail})"
        )


class EcfReference:
    """Algorithm 1 from the paper, as a standalone state machine.

    Replays one scheduler instance's decision stream: feed it the logged
    inputs of each decision in order and it answers ``"wait"`` or
    ``"slow"``, tracking the ``waiting`` hysteresis flag itself.

    Paper semantics (Section 4, Algorithm 1), with ``k`` the unassigned
    send-buffer bytes in segments, ``x_f``/``x_s`` the fastest and
    candidate subflows, ``n = 1 + ceil(k/CWND_f)`` fast-path rounds, and
    ``delta = max(sigma_f, sigma_s)``::

        if n * RTT_f < (1 + waiting * beta) * (RTT_s + delta):
            if ceil(k/CWND_s) * RTT_s >= 2 * RTT_f + delta:
                waiting = True          -> wait for the fast subflow
            else:
                -> send on the slow subflow (waiting unchanged)
        else:
            waiting = False             -> send on the slow subflow
    """

    def __init__(self, beta: float, use_second_inequality: bool = True) -> None:
        self.beta = beta
        self.use_second_inequality = use_second_inequality
        self.waiting = False

    def decide(
        self,
        k_segments: float,
        rtt_f: float,
        rtt_s: float,
        cwnd_f: float,
        cwnd_s: float,
        delta: float,
    ) -> str:
        """One Algorithm 1 evaluation; returns ``"wait"`` or ``"slow"``."""
        n = 1.0 + math.ceil(k_segments / max(cwnd_f, 1.0))
        threshold = (1.0 + (self.beta if self.waiting else 0.0)) * (rtt_s + delta)
        if n * rtt_f < threshold:
            if not self.use_second_inequality:
                self.waiting = True
                return "wait"
            rounds_s = math.ceil(k_segments / max(cwnd_s, 1.0))
            if rounds_s * rtt_s >= 2.0 * rtt_f + delta:
                self.waiting = True
                return "wait"
            return "slow"
        self.waiting = False
        return "slow"


def replay_ecf(decisions: Sequence[EcfDecision]) -> List[Divergence]:
    """Differentially replay one ECF scheduler's logged decision stream.

    ``decisions`` must belong to a single scheduler instance (one
    ``sched_uid``), in emission order; mixing instances interleaves
    unrelated hysteresis states.  After a divergence the reference's
    ``waiting`` flag is resynchronized to the implementation's logged
    ``waiting_after``, so one bug yields one report instead of a cascade
    of bogus follow-on divergences.
    """
    uids = {d.sched_uid for d in decisions}
    if len(uids) > 1:
        raise ValueError(
            f"replay_ecf() takes one scheduler's decisions, got uids {sorted(uids)}"
        )
    divergences: List[Divergence] = []
    model: EcfReference = None  # type: ignore[assignment]
    for index, dec in enumerate(decisions):
        if model is None:
            model = EcfReference(dec.beta, dec.use_second_inequality)
        if model.waiting != dec.waiting_before:
            # State drift without a decision divergence means the
            # implementation mutated `waiting` outside Algorithm 1.
            divergences.append(Divergence(
                index=index,
                t=dec.t,
                expected=f"waiting={model.waiting}",
                actual=f"waiting={dec.waiting_before}",
                detail="hysteresis state drifted between decisions",
            ))
            model.waiting = dec.waiting_before
        expected = model.decide(
            k_segments=dec.k_segments,
            rtt_f=dec.rtt_f,
            rtt_s=dec.rtt_s,
            cwnd_f=dec.cwnd_f,
            cwnd_s=dec.cwnd_s,
            delta=dec.delta,
        )
        if expected != dec.decision:
            divergences.append(Divergence(
                index=index,
                t=dec.t,
                expected=expected,
                actual=dec.decision,
                detail=(
                    f"k={dec.k_segments:.1f} cwnd_f={dec.cwnd_f:.1f} "
                    f"cwnd_s={dec.cwnd_s:.1f} rtt_f={dec.rtt_f:.4f} "
                    f"rtt_s={dec.rtt_s:.4f} delta={dec.delta:.4f} "
                    f"waiting_before={dec.waiting_before}"
                ),
            ))
            model.waiting = dec.waiting_after
    return divergences


def replay_minrtt(decisions: Sequence[MinRttDecision]) -> List[Divergence]:
    """Check every logged minRTT pick against "smallest SRTT first".

    The paper's default scheduler "selects the subflow with the smallest
    RTT for which there is available congestion window space"; the log
    records the candidate set (already filtered to window-open subflows)
    with their SRTTs, so the reference is a pure argmin with the
    implementation's documented tie-break (lowest subflow id).
    """
    divergences: List[Divergence] = []
    for index, dec in enumerate(decisions):
        if not dec.available:
            expected = None
        else:
            expected = min(dec.available, key=lambda pair: (pair[1], pair[0]))[0]
        if expected != dec.chosen_sf:
            divergences.append(Divergence(
                index=index,
                t=dec.t,
                expected=f"sf={expected}",
                actual=f"sf={dec.chosen_sf}",
                detail=f"candidates={dec.available!r}",
            ))
    return divergences
