"""Runtime sanitizer: protocol invariants checked while the simulator runs.

The simulator's credibility rests on invariants nothing in normal
operation enforces: congestion windows never collapse below one segment,
data sequence numbers only move forward, link queues conserve bytes, the
event loop dispatches in non-decreasing time order.  An aggressive
refactor can silently break any of them and every downstream figure with
it.  This module is the guardrail: protocol layers call cheap hook
points (``if CHECKS is not None: CHECKS.xxx(...)``) that are ``None`` --
and therefore skipped in one pointer test -- unless sanitizing is on.

Enable with ``REPRO_SANITIZE=1`` in the environment (read at import
time, so ``REPRO_SANITIZE=1 pytest`` sanitizes the whole suite), the
CLI's ``--sanitize`` flag, or programmatically::

    from repro.analysis import sanitize
    sanitize.enable()      # or disable(); both are idempotent

A failed check raises :class:`SanitizerError` (an ``AssertionError``
subclass, so ``pytest.raises(AssertionError)`` also catches it) naming
the object and the violated invariant.  When the flight recorder is
also armed (``REPRO_OBS=1``, see :mod:`repro.obs.flight`), the executor
catches the escaping error and snapshots a postmortem bundle -- the
recent event tail, trace tails, and perf counters leading up to the
violation -- before re-raising it.

This module must stay dependency-free within the package: every protocol
layer imports it, so it cannot import any of them back.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.connection import MptcpConnection
    from repro.mptcp.receiver import MptcpReceiver
    from repro.net.link import Link
    from repro.tcp.subflow import Subflow

#: Tolerance for float window arithmetic (cwnd is a float in segments).
_EPS = 1e-9

#: Environment variable that turns the sanitizer on at import time.
ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(AssertionError):
    """A protocol invariant was violated at runtime."""


def _fail(subject: Any, invariant: str, detail: str) -> None:
    raise SanitizerError(f"{subject!r}: {invariant}: {detail}")


class Checks:
    """The invariant checks, one method per hook point.

    Instances are stateless except for per-object monotonicity floors,
    which are tracked on the checked objects themselves (``_sz_*``
    attributes) so one ``Checks`` instance can watch any number of
    simultaneous simulations.
    """

    # ------------------------------------------------------------------
    # sim.engine
    # ------------------------------------------------------------------
    def event_dispatch(self, now: float, event_time: float) -> None:
        """Event times leaving the heap must never run backwards."""
        if event_time < now:
            _fail(
                "Simulator",
                "non-decreasing event dispatch",
                f"popped event at t={event_time!r} while clock is at {now!r}",
            )

    # ------------------------------------------------------------------
    # tcp.subflow / tcp.cc
    # ------------------------------------------------------------------
    def cwnd(self, subflow: "Subflow") -> None:
        """Window sanity after any congestion-controller action."""
        if subflow.cwnd < 1.0 - _EPS:
            _fail(subflow, "cwnd >= 1 MSS", f"cwnd={subflow.cwnd!r}")
        if subflow.cwnd > subflow.max_cwnd + _EPS:
            _fail(
                subflow,
                "cwnd <= max_cwnd",
                f"cwnd={subflow.cwnd!r} > max_cwnd={subflow.max_cwnd!r}",
            )
        if not subflow.ssthresh > 0.0:
            _fail(subflow, "ssthresh > 0", f"ssthresh={subflow.ssthresh!r}")

    def subflow(self, subflow: "Subflow") -> None:
        """Full sequence/flight bookkeeping audit (after ACK or RTO)."""
        self.cwnd(subflow)
        if not 0 <= subflow.una <= subflow.next_seq:
            _fail(
                subflow,
                "0 <= una <= next_seq",
                f"una={subflow.una}, next_seq={subflow.next_seq}",
            )
        in_flight = subflow.flight
        if in_flight < 0:
            _fail(subflow, "flight >= 0", f"flight={in_flight}")
        outstanding = subflow._outstanding
        actual = sum(1 for seg in outstanding.values() if seg.in_flight)
        if in_flight != actual:
            _fail(
                subflow,
                "flight counter matches segment flags",
                f"counter={in_flight}, flagged={actual}",
            )
        if in_flight > len(outstanding):
            _fail(
                subflow,
                "flight <= outstanding segments",
                f"flight={in_flight}, outstanding={len(outstanding)}",
            )

    # ------------------------------------------------------------------
    # mptcp.connection
    # ------------------------------------------------------------------
    def conn_una_advance(self, conn: "MptcpConnection", data_ack: int) -> None:
        """DATA_ACKs only move the connection-level una forward."""
        if data_ack < conn.conn_una:
            _fail(
                conn,
                "data-sequence monotonicity",
                f"DATA_ACK {data_ack} < conn_una {conn.conn_una}",
            )
        if data_ack > conn.next_dsn:
            _fail(
                conn,
                "DATA_ACK within assigned sequence space",
                f"DATA_ACK {data_ack} > next_dsn {conn.next_dsn}",
            )

    def connection(self, conn: "MptcpConnection") -> None:
        """Connection-level buffer accounting after a scheduling pass."""
        if conn.unassigned_bytes < 0:
            _fail(conn, "unassigned_bytes >= 0", f"{conn.unassigned_bytes}")
        if not 0 <= conn.conn_una <= conn.next_dsn:
            _fail(
                conn,
                "0 <= conn_una <= next_dsn",
                f"conn_una={conn.conn_una}, next_dsn={conn.next_dsn}",
            )
        if conn.next_dsn + conn.unassigned_bytes > conn.total_written:
            _fail(
                conn,
                "assigned + unassigned <= written",
                f"next_dsn={conn.next_dsn} + unassigned={conn.unassigned_bytes}"
                f" > written={conn.total_written}",
            )

    # ------------------------------------------------------------------
    # mptcp.receiver
    # ------------------------------------------------------------------
    def receiver(self, receiver: "MptcpReceiver") -> None:
        """Reorder-buffer bounds and delivery accounting."""
        buffered = receiver._buffered
        byte_sum = sum(payload for payload, _ in buffered.values())
        if byte_sum != receiver.buffered_bytes:
            _fail(
                receiver,
                "reorder-buffer byte conservation",
                f"counter={receiver.buffered_bytes}, actual={byte_sum}",
            )
        if buffered and min(buffered) <= receiver.expected_dsn:
            _fail(
                receiver,
                "buffered DSNs beyond the delivery point",
                f"min buffered={min(buffered)}, expected={receiver.expected_dsn}",
            )
        if receiver.buffered_bytes > receiver.recv_buffer_bytes:
            _fail(
                receiver,
                "reorder buffer within the advertised capacity",
                f"buffered={receiver.buffered_bytes}"
                f" > capacity={receiver.recv_buffer_bytes}",
            )
        if buffered:
            # Buffered chunks must be pairwise disjoint: the sender assigns
            # DSN ranges contiguously, so overlap means double-assignment.
            edge = receiver.expected_dsn
            for dsn in sorted(buffered):
                if dsn < edge:
                    _fail(
                        receiver,
                        "buffered DSN ranges are disjoint",
                        f"chunk at {dsn} overlaps previous range ending {edge}",
                    )
                edge = dsn + buffered[dsn][0]
        if receiver.delivered_bytes != receiver.expected_dsn:
            _fail(
                receiver,
                "delivered bytes equal the in-order DSN frontier",
                f"delivered={receiver.delivered_bytes}, expected={receiver.expected_dsn}",
            )
        floor = getattr(receiver, "_sz_dsn_floor", 0)
        if receiver.expected_dsn < floor:
            _fail(
                receiver,
                "expected DSN never decreases",
                f"expected={receiver.expected_dsn} < previously {floor}",
            )
        receiver._sz_dsn_floor = receiver.expected_dsn

    # ------------------------------------------------------------------
    # net.link
    # ------------------------------------------------------------------
    def link(self, link: "Link") -> None:
        """Packet and byte conservation across the queue/transmitter."""
        queued = sum(packet.size for packet, _ in link._queue)
        if queued != link.queued_bytes:
            _fail(
                link,
                "queue byte conservation",
                f"counter={link.queued_bytes}, actual={queued}",
            )
        if not 0 <= link.queued_bytes <= link.queue_bytes:
            _fail(
                link,
                "0 <= queued_bytes <= capacity",
                f"queued={link.queued_bytes}, capacity={link.queue_bytes}",
            )
        stats = link.stats
        accounted = (
            stats.packets_delivered
            + stats.packets_dropped
            + link.queue_depth
            + (1 if link.busy else 0)
            + link._in_propagation
        )
        if stats.packets_in != accounted:
            _fail(
                link,
                "packet conservation",
                f"in={stats.packets_in}, accounted={accounted} "
                f"(delivered={stats.packets_delivered}, dropped={stats.packets_dropped}, "
                f"queued={link.queue_depth}, busy={link.busy}, "
                f"propagating={link._in_propagation})",
            )


#: The active hook object, or ``None`` when sanitizing is off.  Protocol
#: layers read this through the module (``sanitize.CHECKS``) so
#: :func:`enable` / :func:`disable` take effect everywhere at once.
CHECKS: Optional[Checks] = None


def enable() -> None:
    """Turn the sanitizer on (idempotent)."""
    global CHECKS
    if CHECKS is None:
        CHECKS = Checks()


def disable() -> None:
    """Turn the sanitizer off (idempotent)."""
    global CHECKS
    CHECKS = None


def enabled() -> bool:
    """True while sanitizer checks are active."""
    return CHECKS is not None


if os.environ.get(ENV_VAR, "").strip() not in ("", "0"):
    enable()
