"""Structured event log: typed protocol records for trace-level checking.

The trace recorder (:mod:`repro.sim.trace`) collects ``(time, value)``
series for plotting; this module records *what happened* -- typed records
of every send, ACK, timeout, idle restart, delivery, and scheduler
decision, each carrying the inputs the decision was made from.  The
temporal property checker (:mod:`repro.analysis.check`) and the reference
oracles (:mod:`repro.analysis.reference`) consume these logs to verify
the paper's semantics, not just endpoint metrics.

The hook pattern mirrors :mod:`repro.analysis.sanitize`: protocol layers
do ``if _events.LOG is not None: _events.LOG.emit(...)``, which costs one
pointer test when logging is off.  Enable a fresh log with
:func:`start` / :func:`stop`, or the :func:`recording` context manager::

    from repro.analysis import events

    with events.recording() as log:
        run_bulk(spec)
    decisions = log.of_kind(events.EcfDecision)

Objects that appear in events (subflows, receivers, schedulers) carry a
process-unique ``uid`` from :func:`next_uid`, so records from several
simultaneous connections (or sequential connections reusing subflow ids,
as the web workload does) never alias in one log.

This module must stay dependency-free within the package: every protocol
layer imports it, so it cannot import any of them back.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple, Type, TypeVar

_UIDS = itertools.count(1)


def next_uid() -> int:
    """Process-unique id for log subjects (subflows, receivers, ...)."""
    return next(_UIDS)


# ----------------------------------------------------------------------
# Record types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Event:
    """Base record: every event carries its simulated timestamp."""

    t: float

    @property
    def kind(self) -> str:
        return type(self).__name__

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            data[f.name] = getattr(self, f.name)
        return data


@dataclass(frozen=True)
class Dispatch(Event):
    """One engine event leaving the heap (``EventLog.capture_dispatch``)."""

    seq: int


@dataclass(frozen=True)
class SegmentSent(Event):
    """A data segment left a subflow (original or retransmission)."""

    sf_uid: int
    sf_id: int
    seq: int
    dsn: int
    payload: int
    retransmitted: bool
    cwnd: float
    in_flight: int


@dataclass(frozen=True)
class AckProcessed(Event):
    """A newly acknowledged segment was absorbed by the sender.

    ``cwnd``, ``in_recovery``, and ``backoff`` are the values *after* the
    full ACK processing pass (controller action, recovery bookkeeping,
    loss detection), which is what the temporal properties reason about.
    """

    sf_uid: int
    sf_id: int
    seq: int
    rtt_sampled: bool
    cwnd: float
    in_recovery: bool
    backoff: float


@dataclass(frozen=True)
class RtoFired(Event):
    """A retransmission timeout actually expired (not a lazy re-arm)."""

    sf_uid: int
    sf_id: int
    backoff_before: float
    backoff_after: float
    rto: float
    outstanding: int


@dataclass(frozen=True)
class FastRetransmit(Event):
    """Dupack-driven loss recovery started (one per recovery episode)."""

    sf_uid: int
    sf_id: int
    seq: int
    recovery_point: int


@dataclass(frozen=True)
class IdleReset(Event):
    """RFC 5681 idle restart collapsed a subflow's window to IW."""

    sf_uid: int
    sf_id: int
    idle: float
    rto: float
    old_cwnd: float
    new_cwnd: float
    ssthresh: float


@dataclass(frozen=True)
class Delivered(Event):
    """The receiver handed one in-order chunk to the application."""

    recv_uid: int
    dsn: int
    payload: int
    delay: float


@dataclass(frozen=True)
class Reinjection(Event):
    """The meta layer re-sent a DSN on another subflow."""

    conn: str
    dsn: int
    payload: int
    from_sf: int
    to_sf: int
    cause: str  # "rto" or "opportunistic"


@dataclass(frozen=True)
class EcfDecision(Event):
    """One full evaluation of ECF's Algorithm 1 (fast subflow was full).

    Records every input the two inequalities read, the actual threshold
    the implementation computed, and the waiting state before and after,
    so the decision can be replayed offline by the reference model.
    ``decision`` is ``"wait"`` (send nothing, wait for the fast subflow)
    or ``"slow"`` (send on the second-fastest subflow).
    """

    sched_uid: int
    decision: str
    fastest_uid: int
    fastest_sf: int
    second_uid: int
    second_sf: int
    k_segments: float
    cwnd_f: float
    cwnd_s: float
    rtt_f: float
    rtt_s: float
    delta: float
    beta: float
    use_second_inequality: bool
    waiting_before: bool
    waiting_after: bool
    n_rounds: float
    threshold: float
    #: True when a twin-run fork overrode Algorithm 1's outcome for this
    #: decision (the logged ``decision`` is the forced one).
    forced: bool = False


@dataclass(frozen=True)
class MinRttDecision(Event):
    """One minRTT pick among the currently available subflows."""

    sched_uid: int
    chosen_sf: Optional[int]
    available: Tuple[Tuple[int, float], ...]  # (sf_id, srtt) pairs


E = TypeVar("E", bound=Event)

#: Registry of every concrete record type by its ``kind`` name; the wire
#: format of ``to_dict`` / :func:`event_from_dict`.  Exporters iterate
#: this to stay exhaustive, and the round-trip tests assert it is.
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.__name__: cls
    for cls in (
        Dispatch,
        SegmentSent,
        AckProcessed,
        RtoFired,
        FastRetransmit,
        IdleReset,
        Delivered,
        Reinjection,
        EcfDecision,
        MinRttDecision,
    )
}


def event_from_dict(data: Dict[str, Any]) -> Event:
    """Rebuild a typed record from its ``to_dict`` form (lossless).

    JSON has no tuples, so :class:`MinRttDecision.available` comes back
    as nested lists and is re-frozen here; everything else round-trips
    as-is.

    >>> event_from_dict(Delivered(t=1.5, recv_uid=7, dsn=0,
    ...                           payload=1448, delay=0.25).to_dict())
    Delivered(t=1.5, recv_uid=7, dsn=0, payload=1448, delay=0.25)
    """
    kind = data.get("kind")
    cls = EVENT_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValueError(f"unknown event kind: {kind!r}")
    payload = {k: v for k, v in data.items() if k != "kind"}
    if cls is MinRttDecision:
        payload["available"] = tuple(
            (int(sf_id), float(srtt)) for sf_id, srtt in payload["available"]
        )
    return cls(**payload)


# ----------------------------------------------------------------------
# The log
# ----------------------------------------------------------------------
class EventLog:
    """Append-only store of typed event records.

    Parameters
    ----------
    capacity:
        Optional bound on retained events; once full the *oldest* records
        are dropped and counted in :attr:`dropped`.  Capped logs are for
        interactive inspection -- the property checker refuses partial
        logs by default, since a missing record can fake a violation.
    capture_dispatch:
        Also record one :class:`Dispatch` per engine event (very chatty;
        off by default).
    """

    def __init__(
        self, capacity: Optional[int] = None, capture_dispatch: bool = False
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.capture_dispatch = capture_dispatch
        self.dropped = 0
        self._events: Deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        """Append one record (dropping the oldest when at capacity)."""
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def of_kind(self, kind: Type[E]) -> List[E]:
        """All records of one type, in emission order."""
        return [e for e in self._events if type(e) is kind]

    def events(self) -> List[Event]:
        """All records, in emission order."""
        return list(self._events)

    def tail(self, n: int) -> List[Event]:
        """The most recent ``n`` records (all of them if ``n`` exceeds
        the current length), in emission order."""
        if n <= 0:
            return []
        if n >= len(self._events):
            return list(self._events)
        return list(self._events)[-n:]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds: Dict[str, int] = {}
        for event in self._events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return f"EventLog(n={len(self._events)}, dropped={self.dropped}, kinds={kinds})"


#: The active log, or ``None`` when event logging is off.  Protocol layers
#: read this through the module (``events.LOG``) so :func:`start` /
#: :func:`stop` take effect everywhere at once.
LOG: Optional[EventLog] = None


def start(
    capacity: Optional[int] = None, capture_dispatch: bool = False
) -> EventLog:
    """Install (and return) a fresh active log, replacing any current one."""
    global LOG
    LOG = EventLog(capacity=capacity, capture_dispatch=capture_dispatch)
    return LOG


def stop() -> Optional[EventLog]:
    """Deactivate logging; returns the log that was active, if any."""
    global LOG
    log, LOG = LOG, None
    return log


def active() -> bool:
    """True while an event log is installed."""
    return LOG is not None


@contextmanager
def recording(
    capacity: Optional[int] = None, capture_dispatch: bool = False
) -> Iterator[EventLog]:
    """Event-log a block of code; restores the previous log on exit."""
    global LOG
    previous = LOG
    log = EventLog(capacity=capacity, capture_dispatch=capture_dispatch)
    LOG = log
    try:
        yield log
    finally:
        LOG = previous
