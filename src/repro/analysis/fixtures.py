"""Deliberately broken scheduler variants: seeded violations for the checker.

These exist to prove the checking layer in :mod:`repro.analysis.check`
has teeth: ``python -m repro.cli check --scheduler ecf-nowait`` (or
``ecf-noineq2``) must exit non-zero, and a checker change that stops
flagging them is itself a bug.  They are registered in the scheduler
registry under fixture-only names but kept out of ``SCHEDULER_NAMES`` so
no experiment sweep ever picks one up by accident.

Both subclass the real :class:`~repro.core.ecf.EcfScheduler` and override
only its pure :meth:`~repro.core.ecf.EcfScheduler._evaluate` step, so
decision logging and the hysteresis state machine -- which live in the
superclass's ``_should_wait_for_fast`` -- keep running and the
differential oracle sees every (mis)decision.
"""

from __future__ import annotations

from repro.core.ecf import EcfInputs, EcfScheduler


class NoWaitEcfScheduler(EcfScheduler):
    """ECF that never waits: Algorithm 1's output is ignored entirely.

    Every decision where the paper mandates waiting becomes a send on
    the slow subflow, so any scenario in which stock ECF waits at least
    once trips both ``ecf-wait-respects-inequality-1`` and the
    differential oracle.
    """

    name = "ecf-nowait"

    def _evaluate(self, inputs: EcfInputs) -> bool:
        return False


class NoSecondInequalityEcfScheduler(EcfScheduler):
    """ECF that skips inequality 2 while claiming to apply it.

    Unlike the honest ``use_second_inequality=False`` ablation, this
    variant *logs* ``use_second_inequality=True``, so the reference
    model expects inequality 2 to gate every wait -- and flags each
    decision where the slow path was fast enough to be worth using.
    """

    name = "ecf-noineq2"

    def _evaluate(self, inputs: EcfInputs) -> bool:
        return inputs.n_rounds * inputs.rtt_f < inputs.threshold


class LateHalvingEcfScheduler(EcfScheduler):
    """ECF applying hysteresis backwards: beta when *not* yet waiting.

    Breaks the threshold equation rather than the decision rule, so it
    is caught by ``ecf-beta-only-when-waiting`` (the logged threshold no
    longer matches ``(1 + waiting*beta)(RTT_s + delta)``) even on runs
    where the final wait/send outcomes happen to coincide with stock.
    """

    name = "ecf-invbeta"

    def _decision_inputs(self, conn, fastest, second):  # type: ignore[no-untyped-def]
        inputs = super()._decision_inputs(conn, fastest, second)
        inverted = (1.0 + (0.0 if self.waiting else self.beta)) * (
            inputs.rtt_s + inputs.delta
        )
        return EcfInputs(
            k_segments=inputs.k_segments,
            rtt_f=inputs.rtt_f,
            rtt_s=inputs.rtt_s,
            cwnd_f=inputs.cwnd_f,
            cwnd_s=inputs.cwnd_s,
            delta=inputs.delta,
            n_rounds=inputs.n_rounds,
            threshold=inverted,
        )


#: Registry names of all seeded-violation fixtures (never in
#: ``SCHEDULER_NAMES``; surfaced by ``repro check --scheduler ...``).
FIXTURE_SCHEDULERS = ("ecf-nowait", "ecf-noineq2", "ecf-invbeta")
