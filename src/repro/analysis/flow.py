"""Whole-program semantic analysis over the repro package.

Where :mod:`repro.analysis.lint` judges one module at a time by its
syntax, this module sees the *program*: which module imports which,
which function calls which, and what flows where.  Four artifacts are
built from one pass over the sources:

* a **module import graph** (``Project.import_graph``);
* per-module **symbol tables** (functions, methods, classes, imports);
* a conservative **call graph** -- edges only where a callee resolves
  statically (local names, imported names, ``self.method`` within the
  defining class), so it under-approximates and never invents an edge;
* an interprocedural **taint pass**: a function that *transitively*
  reaches ``time.time()`` / module-level ``random.*`` / ad-hoc
  ``random.Random(...)`` is tainted, however many call hops sit between
  it and the source.

The RPR8xx rule family (:mod:`repro.analysis.rules8xx`) consumes these
to upgrade the syntactic rules to semantic ones.  The front end that
ties parsing, caching, and reporting together is
:func:`repro.analysis.lint.run_lint`.

Incrementality: every module's facts are distilled into a
:class:`ModuleSummary`, a plain-JSON value cached by file content hash
(:class:`SummaryCache`).  A warm re-lint of an unchanged tree reads and
hashes the files but parses **zero** of them -- the whole-program passes
(graph building, taint propagation) run over cached summaries, which is
cheap.  ``CacheStats.parsed`` is the counter tests assert on.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Bump when the summary shape or the extraction logic changes: stale
#: cache entries from an older analyzer must not survive an upgrade.
CACHE_VERSION = 3

#: Dotted call targets that read the wall clock (shared with the
#: syntactic RPR101; kept here so both layers agree on the source set).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Call terminal names that feed event ordering, RNG stream derivation,
#: or spec hashing -- the sinks RPR831 cares about.
DETERMINISM_SINKS = frozenset(
    {"schedule", "schedule_at", "stream", "fork", "spec_hash", "canonical_json"}
)

#: Method names that mutate their receiver in place (RPR821).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Name-suffix -> dimension, for RPR841.  Longest suffix wins, so
#: ``retry_delay_ms`` is milliseconds, not seconds.
DIMENSION_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_seconds", "seconds"),
    ("_secs", "seconds"),
    ("_ms", "milliseconds"),
    ("_us", "microseconds"),
    ("_ns", "nanoseconds"),
    ("_s", "seconds"),
    ("_bytes", "bytes"),
    ("_byte", "bytes"),
    ("_bits", "bits"),
    ("_pkts", "packets"),
    ("_packets", "packets"),
    ("_mbps", "megabits/s"),
    ("_kbps", "kilobits/s"),
    ("_bps", "bits/s"),
)

#: Modules RPR811-813 report call sites in: the simulation-semantics
#: packages that must stay wall-clock- and ambient-RNG-free even
#: transitively.  Files outside the repro package (fixtures, scripts
#: linted explicitly) are always in scope.
DEFAULT_TAINT_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.tcp",
    "repro.net",
    "repro.core",
)

#: Taint kinds, in reporting order.
TAINT_CLOCK = "clock"
TAINT_RANDOM = "random"
TAINT_RNG_CTOR = "rng-ctor"

NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and how to fix it."""

    path: str
    line: int
    col: int
    code: str
    message: str
    fixit: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message} ({self.fixit})"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "fixit": self.fixit,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(**data)


def dotted_name(node: ast.expr) -> Optional[str]:
    """'a.b.c' for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a Name or Attribute expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _string_tuple(node: ast.expr) -> List[str]:
    """String elements of a tuple/list/set literal (or one bare string)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return [
            element.value
            for element in node.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]
    return []


def annotation_names(annotation: ast.expr) -> List[str]:
    """Every type identifier in an annotation, forward-ref strings included."""
    names: List[str] = []
    for sub in ast.walk(annotation):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            terminal = terminal_name(sub)
            if terminal is not None and terminal not in names:
                names.append(terminal)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                parsed = ast.parse(sub.value, mode="eval")
            except SyntaxError:
                continue
            for name in annotation_names(parsed.body):
                if name not in names:
                    names.append(name)
    return names


def suppressed_codes(line: str) -> Optional[Set[str]]:
    """Codes a ``# repro: noqa`` comment suppresses; None = no comment,
    empty set = blanket suppression."""
    match = NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip() for code in codes.split(",") if code.strip()}


def apply_noqa(violations: List[Violation], source: str) -> List[Violation]:
    """Drop violations suppressed by a ``# repro: noqa`` on their line."""
    lines = source.splitlines()
    kept: List[Violation] = []
    for violation in violations:
        line = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        suppressed = suppressed_codes(line)
        if suppressed is not None and (not suppressed or violation.code in suppressed):
            continue
        kept.append(violation)
    return kept


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    Files under a ``repro`` package directory get their real import
    path (``src/repro/sim/engine.py`` -> ``repro.sim.engine``); files
    outside it (fixtures, scripts) get a path-derived unique name so
    symbol tables never collide.  Paths are relativized against the
    working directory first, so the same file gets the same module name
    whether it was given relative or absolute -- cross-module import
    resolution depends on that.
    """
    resolved = Path(path)
    try:
        resolved = resolved.resolve().relative_to(Path.cwd())
    except (OSError, ValueError):
        pass
    parts = list(resolved.as_posix().split("/"))
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[start:])
    return ".".join(part for part in parts if part and part != "..").lstrip(".")


def dimension_of_name(name: Optional[str]) -> Optional[str]:
    """The unit dimension a name suffix declares, if any."""
    if not name:
        return None
    for suffix, dim in DIMENSION_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return dim
    return None


# ----------------------------------------------------------------------
# Per-module facts
# ----------------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression: who calls what, where."""

    caller: str  # enclosing function qualname, or "<mod>.<module>"
    callee: str  # dotted text as written ("self.send", "helpers.now")
    line: int
    col: int
    loop: Optional[int] = None  # index into ModuleSummary.loops, if inside one

    def to_dict(self) -> Dict[str, Any]:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "loop": self.loop,
        }


@dataclass
class UnorderedLoop:
    """A ``for`` statement iterating a set-typed expression."""

    index: int
    caller: str
    line: int
    col: int
    desc: str  # human description of the iterable

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "caller": self.caller,
            "line": self.line,
            "col": self.col,
            "desc": self.desc,
        }


@dataclass
class SpecMutation:
    """A mutation of state reachable from a (candidate) frozen spec."""

    line: int
    col: int
    caller: str
    detail: str
    cls: Optional[str]  # spec class name if known; None = by-name candidate

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "caller": self.caller,
            "detail": self.detail,
            "cls": self.cls,
        }


@dataclass
class FieldAssign:
    """One ``self.<name> = ...`` observed inside a class body.

    ``kind`` is the extractor's local classification of the assigned
    value (see :class:`ModuleExtractor`); kinds that need whole-program
    knowledge to finish (``param``/``selfattr``/``paramattr``/``ref``)
    are resolved later by :mod:`repro.analysis.state`.
    """

    name: str
    method: str  # bare method name, or "<class>" for body annotations
    line: int
    col: int
    kind: str
    target: Optional[str] = None  # class / "Ann.attr" the value points at
    shared: bool = False  # caller-provided mutable stored without copy
    alias: Optional[str] = None  # local variable the value aliases
    ann: List[str] = field(default_factory=list)  # annotation type names

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "method": self.method,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "target": self.target,
            "shared": self.shared,
            "alias": self.alias,
            "ann": list(self.ann),
        }


@dataclass
class ClassInfo:
    """What the whole-program passes need to know about a class."""

    line: int
    frozen_dataclass: bool
    spec_like: bool  # *Spec / *Config name, or ClassVar ``kind``
    set_attrs: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)
    is_dataclass: bool = False
    slots: Optional[List[str]] = None  # None = no __slots__ declared
    slots_line: int = 0
    declared_state: Optional[List[str]] = None  # STATE_FIELDS contract
    declared_line: int = 0
    rebind: Optional[List[str]] = None  # SNAPSHOT_REBIND declaration
    rebind_line: int = 0
    fields: List[FieldAssign] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "frozen_dataclass": self.frozen_dataclass,
            "spec_like": self.spec_like,
            "set_attrs": list(self.set_attrs),
            "bases": list(self.bases),
            "is_dataclass": self.is_dataclass,
            "slots": list(self.slots) if self.slots is not None else None,
            "slots_line": self.slots_line,
            "declared_state": (
                list(self.declared_state) if self.declared_state is not None else None
            ),
            "declared_line": self.declared_line,
            "rebind": list(self.rebind) if self.rebind is not None else None,
            "rebind_line": self.rebind_line,
            "fields": [assign.to_dict() for assign in self.fields],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        payload = dict(data)
        payload["fields"] = [FieldAssign(**f) for f in payload.get("fields", [])]
        return cls(**payload)


@dataclass
class ModuleSummary:
    """Everything the whole-program passes need from one module.

    Plain-JSON serializable: this is the cache payload.  ``local``
    holds the already-noqa-filtered per-module findings (syntactic
    rules plus the intra-module RPR841 pass), so a cache hit skips the
    per-module rules entirely.
    """

    module: str
    path: str
    functions: Dict[str, int] = field(default_factory=dict)  # qualname -> line
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)  # local -> dotted target
    calls: List[CallSite] = field(default_factory=list)
    taints: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    loops: List[UnorderedLoop] = field(default_factory=list)
    spec_mutations: List[SpecMutation] = field(default_factory=list)
    local: List[Violation] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "functions": dict(self.functions),
            "classes": {name: info.to_dict() for name, info in self.classes.items()},
            "imports": dict(self.imports),
            "calls": [site.to_dict() for site in self.calls],
            "taints": {
                qualname: [list(entry) for entry in entries]
                for qualname, entries in self.taints.items()
            },
            "loops": [loop.to_dict() for loop in self.loops],
            "spec_mutations": [mut.to_dict() for mut in self.spec_mutations],
            "local": [violation.to_dict() for violation in self.local],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            functions=dict(data["functions"]),
            classes={
                name: ClassInfo.from_dict(info)
                for name, info in data["classes"].items()
            },
            imports=dict(data["imports"]),
            calls=[CallSite(**site) for site in data["calls"]],
            taints={
                qualname: [tuple(entry) for entry in entries]
                for qualname, entries in data["taints"].items()
            },
            loops=[UnorderedLoop(**loop) for loop in data["loops"]],
            spec_mutations=[SpecMutation(**mut) for mut in data["spec_mutations"]],
            local=[Violation.from_dict(v) for v in data["local"]],
        )


# ----------------------------------------------------------------------
# Extraction: one AST walk distills a module into its summary
# ----------------------------------------------------------------------


class _Scope:
    """Per-function (or module) inference state."""

    __slots__ = ("set_vars", "dims", "spec_vars", "spec_aliases", "params", "container_vars")

    def __init__(self) -> None:
        self.set_vars: Set[str] = set()
        self.dims: Dict[str, str] = {}
        # var -> spec class name (None = matched by naming convention)
        self.spec_vars: Dict[str, Optional[str]] = {}
        # var -> (description, spec class) for aliases of spec payloads
        self.spec_aliases: Dict[str, Tuple[str, Optional[str]]] = {}
        # param name -> annotation type names ([] when unannotated)
        self.params: Dict[str, List[str]] = {}
        # locals bound to a freshly built container in this scope
        self.container_vars: Set[str] = set()


_SET_ANNOTATIONS = frozenset({"set", "Set", "FrozenSet", "frozenset", "AbstractSet", "MutableSet"})
_SET_OPS = frozenset({"union", "intersection", "difference", "symmetric_difference"})

#: Constructor terminals that build a fresh mutable container.
_CONTAINER_CTORS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter", "bytearray"}
)

#: Annotation terminals naming a mutable container type: a parameter so
#: annotated that is stored on ``self`` without a copy aliases
#: caller-owned state (RPR913).
_MUTABLE_CONTAINER_ANNS = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "bytearray",
        "List",
        "Dict",
        "Set",
        "Deque",
        "DefaultDict",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
    }
)

#: Typing/builtin wrapper names that never name a simulator class; the
#: first capitalized annotation name *outside* this set is treated as a
#: class reference for the ownership graph.
_TYPING_NAMES = frozenset(
    {
        "Optional",
        "Union",
        "Any",
        "Tuple",
        "FrozenSet",
        "Sequence",
        "Iterable",
        "Iterator",
        "Mapping",
        "Callable",
        "ClassVar",
        "Type",
        "Final",
        "Literal",
        "Annotated",
        "None",
        "TYPE_CHECKING",
    }
)


def class_candidates(names: Iterable[str]) -> List[str]:
    """Annotation names that plausibly reference a user-defined class."""
    return [
        name
        for name in names
        if name
        and name[0].isupper()
        and name not in _TYPING_NAMES
        and name not in _MUTABLE_CONTAINER_ANNS
    ]


#: Dotted call targets that yield OS-level handles: state a snapshot /
#: fork of the simulation cannot carry across (RPR914).
_HANDLE_CALLS = frozenset(
    {
        "open",
        "io.open",
        "socket.socket",
        "socket.create_connection",
        "threading.Thread",
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "subprocess.Popen",
        "sqlite3.connect",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "mmap.mmap",
    }
)


def _is_spec_name(name: str) -> bool:
    lowered = name.lower()
    return lowered == "spec" or lowered.endswith("_spec") or lowered.endswith("spec")


def _spec_class_name(name: Optional[str]) -> Optional[str]:
    """Class names that *look like* frozen-spec types; confirmed against
    the program-wide frozen-spec set later."""
    if name and (name.endswith("Spec") or name.endswith("Config")):
        return name
    return None


class ModuleExtractor(ast.NodeVisitor):
    """One pass over a module AST, filling a :class:`ModuleSummary`.

    The extractor is deliberately flow-insensitive beyond straight-line
    assignment order: it never invents facts, so downstream rules
    under-approximate (a lint must not cry wolf).
    """

    def __init__(self, module: str, path: str) -> None:
        self.summary = ModuleSummary(module=module, path=path)
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []
        self._method_stack: List[str] = []  # enclosing method bare name, "" outside
        self._loop_stack: List[int] = []
        self._scopes: List[_Scope] = [_Scope()]  # module-level scope

    # -- context helpers -----------------------------------------------
    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _caller(self) -> str:
        if self._func_stack:
            return self._func_stack[-1]
        return f"{self.summary.module}.<module>"

    def _qualname(self, name: str) -> str:
        parts = [self.summary.module, *self._class_stack]
        if self._func_stack:
            # nested function: qualify under the innermost function
            parts = [self._func_stack[-1]]
        return ".".join(parts + [name])

    # -- definitions ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        frozen = False
        is_dataclass = False
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if terminal_name(target) == "dataclass":
                is_dataclass = True
                if isinstance(dec, ast.Call):
                    for keyword in dec.keywords:
                        if keyword.arg == "frozen":
                            frozen = (
                                isinstance(keyword.value, ast.Constant)
                                and keyword.value.value is True
                            )
        spec_like = node.name.endswith("Spec") or node.name.endswith("Config")
        set_attrs: List[str] = []
        bases = [dotted_name(base) or terminal_name(base) or "" for base in node.bases]
        bases = [base for base in bases if base]
        slots: Optional[List[str]] = None
        slots_line = 0
        declared_state: Optional[List[str]] = None
        declared_line = 0
        rebind: Optional[List[str]] = None
        rebind_line = 0
        body_fields: List[FieldAssign] = []
        for statement in node.body:
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    slots = _string_tuple(statement.value)
                    slots_line = statement.lineno
                elif isinstance(target, ast.Name) and target.id == "STATE_FIELDS":
                    declared_state = _string_tuple(statement.value)
                    declared_line = statement.lineno
                elif isinstance(target, ast.Name) and target.id == "SNAPSHOT_REBIND":
                    rebind = _string_tuple(statement.value)
                    rebind_line = statement.lineno
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                is_classvar = "ClassVar" in ast.dump(statement.annotation)
                if statement.target.id == "kind" and is_classvar:
                    spec_like = True
                if statement.target.id == "STATE_FIELDS" and statement.value is not None:
                    declared_state = _string_tuple(statement.value)
                    declared_line = statement.lineno
                elif (
                    statement.target.id == "SNAPSHOT_REBIND"
                    and statement.value is not None
                ):
                    rebind = _string_tuple(statement.value)
                    rebind_line = statement.lineno
                elif statement.target.id == "__slots__" and statement.value is not None:
                    slots = _string_tuple(statement.value)
                    slots_line = statement.lineno
                elif not is_classvar and not statement.target.id.startswith("__"):
                    # Dataclass-style instance field declaration.
                    body_fields.append(
                        FieldAssign(
                            name=statement.target.id,
                            method="<class>",
                            line=statement.lineno,
                            col=statement.col_offset + 1,
                            kind="decl",
                            ann=annotation_names(statement.annotation),
                        )
                    )
                if self._annotation_is_set(statement.annotation):
                    set_attrs.append(statement.target.id)
        self.summary.classes[node.name] = ClassInfo(
            line=node.lineno,
            frozen_dataclass=is_dataclass and frozen,
            spec_like=spec_like,
            set_attrs=set_attrs,
            bases=bases,
            is_dataclass=is_dataclass,
            slots=slots,
            slots_line=slots_line,
            declared_state=declared_state,
            declared_line=declared_line,
            rebind=rebind,
            rebind_line=rebind_line,
            fields=body_fields,
        )
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _annotation_is_set(annotation: ast.expr) -> bool:
        for sub in ast.walk(annotation):
            name = None
            if isinstance(sub, (ast.Name, ast.Attribute)):
                name = terminal_name(sub)
            if name in _SET_ANNOTATIONS:
                return True
        return False

    def _visit_function(self, node: Any) -> None:
        qualname = self._qualname(node.name)
        self.summary.functions[qualname] = node.lineno
        scope = _Scope()
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]:
            if arg.arg not in ("self", "cls"):
                scope.params[arg.arg] = (
                    annotation_names(arg.annotation)
                    if arg.annotation is not None
                    else []
                )
            if arg.annotation is not None:
                if self._annotation_is_set(arg.annotation):
                    scope.set_vars.add(arg.arg)
                ann = terminal_name(arg.annotation)
                spec_cls = _spec_class_name(ann)
                if spec_cls is not None:
                    scope.spec_vars[arg.arg] = spec_cls
            if arg.arg not in scope.spec_vars and _is_spec_name(arg.arg):
                scope.spec_vars[arg.arg] = None
            dim = dimension_of_name(arg.arg)
            if dim is not None:
                scope.dims[arg.arg] = dim
        if self._class_stack and not self._func_stack:
            method = node.name
        elif self._method_stack:
            method = self._method_stack[-1]
        else:
            method = ""
        self._method_stack.append(method)
        self._func_stack.append(qualname)
        self._scopes.append(scope)
        saved_loops, self._loop_stack = self._loop_stack, []
        self.generic_visit(node)
        self._loop_stack = saved_loops
        self._scopes.pop()
        self._func_stack.pop()
        self._method_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.summary.imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Relative import: anchor at the importing module's package.
            package_parts = self.summary.module.split(".")[: -node.level]
            base = ".".join(package_parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.summary.imports[local] = f"{base}.{alias.name}" if base else alias.name
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        text = dotted_name(node.func)
        if text is not None:
            self.summary.calls.append(
                CallSite(
                    caller=self._caller(),
                    callee=text,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    loop=self._loop_stack[-1] if self._loop_stack else None,
                )
            )
            self._record_taint_source(text)
            self._record_mutation_call(node, text)
        self.generic_visit(node)

    def _record_taint_source(self, text: str) -> None:
        kind: Optional[str] = None
        if text in WALL_CLOCK_CALLS:
            kind = TAINT_CLOCK
        elif text.startswith("random."):
            head = text.split(".", 2)[1]
            kind = TAINT_RNG_CTOR if head in ("Random", "SystemRandom") else TAINT_RANDOM
        if kind is not None:
            entries = self.summary.taints.setdefault(self._caller(), [])
            if (kind, text) not in entries:
                entries.append((kind, text))

    def _record_mutation_call(self, node: ast.Call, text: str) -> None:
        """``spec.field.append(x)`` / ``alias.add(x)`` -> candidate RPR821."""
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in MUTATING_METHODS:
            return
        receiver = node.func.value
        found = self._spec_payload(receiver)
        if found is not None:
            desc, cls = found
            self._add_mutation(node, f"{desc}.{node.func.attr}(...)", cls)

    def _spec_payload(self, node: ast.expr) -> Optional[Tuple[str, Optional[str]]]:
        """(description, spec class) when ``node`` reads spec-reachable
        state: ``spec.field``, a recorded alias, or a subscript of one."""
        if isinstance(node, ast.Subscript):
            inner = self._spec_payload(node.value)
            if inner is not None:
                return f"{inner[0]}[...]", inner[1]
            return None
        if isinstance(node, ast.Attribute):
            root = node.value
            if isinstance(root, ast.Name) and root.id in self._scope.spec_vars:
                return f"{root.id}.{node.attr}", self._scope.spec_vars[root.id]
            inner = self._spec_payload(root)
            if inner is not None:
                return f"{inner[0]}.{node.attr}", inner[1]
            return None
        if isinstance(node, ast.Name) and node.id in self._scope.spec_aliases:
            return self._scope.spec_aliases[node.id]
        return None

    def _add_mutation(self, node: ast.AST, detail: str, cls: Optional[str]) -> None:
        self.summary.spec_mutations.append(
            SpecMutation(
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                caller=self._caller(),
                detail=detail,
                cls=cls,
            )
        )

    # -- loops ---------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        desc = self._unordered_desc(node.iter)
        if desc is not None:
            loop = UnorderedLoop(
                index=len(self.summary.loops),
                caller=self._caller(),
                line=node.lineno,
                col=node.col_offset + 1,
                desc=desc,
            )
            self.summary.loops.append(loop)
            self._loop_stack.append(loop.index)
            self.generic_visit(node)
            self._loop_stack.pop()
        else:
            self.generic_visit(node)

    def _unordered_desc(self, node: ast.expr) -> Optional[str]:
        """Description of ``node`` when it evaluates to an unordered set."""
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return "a set literal"
        if isinstance(node, ast.Call):
            callee = terminal_name(node.func)
            if callee in ("set", "frozenset"):
                return f"{callee}(...)"
            if callee in _SET_OPS and isinstance(node.func, ast.Attribute):
                if self._unordered_desc(node.func.value) is not None or node.args:
                    # x.union(y): unordered whenever the receiver is a set
                    # we can see; conservative otherwise.
                    if self._unordered_desc(node.func.value) is not None:
                        return f"a set .{callee}()"
            if callee == "sorted":
                return None
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            left = self._unordered_desc(node.left)
            right = self._unordered_desc(node.right)
            if left is not None or right is not None:
                return "a set expression"
            return None
        if isinstance(node, ast.Name) and node.id in self._scope.set_vars:
            return f"set-typed {node.id!r}"
        if isinstance(node, ast.Attribute):
            root = node.value
            if (
                isinstance(root, ast.Name)
                and root.id in ("self", "cls")
                and self._class_stack
            ):
                info = self.summary.classes.get(self._class_stack[-1])
                if info is not None and node.attr in info.set_attrs:
                    return f"set-typed self.{node.attr}"
        return None

    # -- instance-field extraction (the state model's raw material) ----
    def _classify_value(
        self, value: ast.expr
    ) -> Tuple[str, Optional[str], bool, Optional[str]]:
        """(kind, target, shared, alias) for an assigned value.

        ``shared`` marks values the caller still owns (a mutable
        container or callable passed in as a parameter); ``alias`` names
        the local variable the value aliases, for same-method aliasing
        detection.  Kinds needing whole-program knowledge to finish
        (``param``/``selfattr``/``paramattr``/``ref``) are resolved by
        :mod:`repro.analysis.state`.
        """
        if isinstance(value, ast.Constant):
            return ("scalar", None, False, None)
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.Tuple, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return ("container", None, False, None)
        if isinstance(value, ast.GeneratorExp):
            return ("generator", None, False, None)
        if isinstance(value, ast.Lambda):
            return ("callable", "<lambda>", False, None)
        if isinstance(value, (ast.UnaryOp, ast.BinOp, ast.Compare, ast.BoolOp)):
            return ("scalar", None, False, None)
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            terminal = terminal_name(value.func)
            if dotted in _HANDLE_CALLS:
                return ("handle", None, False, None)
            if terminal in _CONTAINER_CTORS:
                return ("container", None, False, None)
            if terminal == "stream" and isinstance(value.func, ast.Attribute):
                return ("rng", None, False, None)
            if dotted in ("random.Random", "random.SystemRandom") or terminal in (
                "RngRegistry",
                "Random",
                "SystemRandom",
            ):
                return ("rng", None, False, None)
            if terminal and terminal[0].isupper() and terminal not in _TYPING_NAMES:
                return ("ref", terminal, False, None)
            return ("unknown", None, False, None)
        if isinstance(value, ast.Name):
            scope = self._scope
            if value.id in scope.params:
                names = scope.params[value.id]
                if any(name in _MUTABLE_CONTAINER_ANNS for name in names):
                    return ("container", None, True, None)
                if "Callable" in names:
                    return ("callable", None, True, None)
                candidates = class_candidates(names)
                if candidates:
                    return ("ref", candidates[0], False, None)
                return ("param", None, False, None)
            if value.id in scope.container_vars:
                return ("container", None, False, value.id)
            return ("unknown", None, False, None)
        if isinstance(value, ast.Attribute):
            root = value.value
            if isinstance(root, ast.Name):
                if root.id == "self":
                    return ("selfattr", value.attr, False, None)
                if root.id in self._scope.params:
                    candidates = class_candidates(self._scope.params[root.id])
                    if candidates:
                        return (
                            "paramattr",
                            f"{candidates[0]}.{value.attr}",
                            False,
                            None,
                        )
            return ("unknown", None, False, None)
        return ("unknown", None, False, None)

    def _record_self_assigns(
        self,
        targets: List[ast.expr],
        value: Optional[ast.expr],
        aug: bool = False,
        annotation: Optional[ast.expr] = None,
    ) -> None:
        """Record ``self.<attr> = ...`` targets into the enclosing class."""
        if not self._class_stack or not self._method_stack or not self._method_stack[-1]:
            return
        info = self.summary.classes.get(self._class_stack[-1])
        if info is None:
            return
        direct: List[ast.Attribute] = []
        unpacked: List[ast.Attribute] = []

        def collect(target: ast.expr, into: List[ast.Attribute]) -> None:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                into.append(target)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    collect(element, unpacked)

        for target in targets:
            collect(target, direct)
        if not direct and not unpacked:
            return
        if aug:
            kind, ref_target, shared, alias = "aug", None, False, None
        elif value is None:
            kind, ref_target, shared, alias = "decl", None, False, None
        else:
            kind, ref_target, shared, alias = self._classify_value(value)
        ann = annotation_names(annotation) if annotation is not None else []
        method = self._method_stack[-1]
        for attr in direct:
            info.fields.append(
                FieldAssign(
                    name=attr.attr,
                    method=method,
                    line=attr.lineno,
                    col=attr.col_offset + 1,
                    kind=kind,
                    target=ref_target,
                    shared=shared,
                    alias=alias,
                    ann=ann,
                )
            )
        for attr in unpacked:
            info.fields.append(
                FieldAssign(
                    name=attr.attr,
                    method=method,
                    line=attr.lineno,
                    col=attr.col_offset + 1,
                    kind="unknown",
                )
            )

    # -- assignments: set-typedness, aliasing, dimensions --------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_self_assigns(node.targets, node.value)
        self._note_assignment(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if self._annotation_is_set(node.annotation):
                self._scope.set_vars.add(node.target.id)
            ann_spec = _spec_class_name(terminal_name(node.annotation))
            if ann_spec is not None:
                self._scope.spec_vars[node.target.id] = ann_spec
        self._record_self_assigns([node.target], node.value, annotation=node.annotation)
        if node.value is not None:
            self._note_assignment([node.target], node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_self_assigns([node.target], node.value, aug=True)
        target = node.target
        found = None
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            found = self._spec_payload(target)
            if found is None and isinstance(target, ast.Attribute):
                root = target.value
                if isinstance(root, ast.Name) and root.id in self._scope.spec_vars:
                    found = (f"{root.id}.{target.attr}", self._scope.spec_vars[root.id])
        if found is not None:
            self._add_mutation(node, f"{found[0]} augmented in place", found[1])
        # dimension check: x_s += y_bytes
        target_dim = self._dim_of(target)
        value_dim = self._dim_of(node.value)
        if target_dim and value_dim and target_dim != value_dim and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            self._unit_violation(
                node,
                f"{self._describe(target)} [{target_dim}] "
                f"{'+=' if isinstance(node.op, ast.Add) else '-='} "
                f"{self._describe(node.value)} [{value_dim}]",
            )
        self.generic_visit(node)

    def _note_assignment(
        self, targets: List[ast.expr], value: ast.expr, node: ast.AST
    ) -> None:
        # Mutations through subscript/attribute targets of spec payloads.
        for target in targets:
            if isinstance(target, (ast.Subscript,)):
                found = self._spec_payload(target.value)
                if found is not None:
                    self._add_mutation(node, f"{found[0]}[...] assigned", found[1])
            elif isinstance(target, ast.Attribute):
                root = target.value
                if isinstance(root, ast.Name) and root.id in self._scope.spec_vars:
                    cls = self._scope.spec_vars[root.id]
                    self._add_mutation(
                        node, f"{root.id}.{target.attr} assigned", cls
                    )
                else:
                    found = self._spec_payload(root)
                    if found is not None:
                        self._add_mutation(
                            node, f"{found[0]}.{target.attr} assigned", found[1]
                        )
        # Inference for simple name targets.
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            self._check_value_dims(value)
            return
        if self._classify_value(value)[0] == "container":
            self._scope.container_vars.update(names)
        if self._unordered_desc(value) is not None or (
            isinstance(value, ast.Call) and terminal_name(value.func) in ("set", "frozenset")
        ):
            self._scope.set_vars.update(names)
        # Alias tracking: payload = spec.field (or another alias/spec).
        if isinstance(value, ast.Name) and value.id in self._scope.spec_vars:
            for name in names:
                self._scope.spec_vars[name] = self._scope.spec_vars[value.id]
        else:
            payload = self._spec_payload(value)
            if payload is not None:
                for name in names:
                    self._scope.spec_aliases[name] = payload
        if isinstance(value, ast.Call):
            ctor = _spec_class_name(terminal_name(value.func))
            if ctor is not None:
                for name in names:
                    self._scope.spec_vars[name] = ctor
        # Dimension propagation and mismatch-on-assignment.
        value_dim = self._dim_of(value)
        for name in names:
            name_dim = dimension_of_name(name)
            if name_dim is not None and value_dim is not None and name_dim != value_dim:
                self._unit_violation(
                    node,
                    f"{name} [{name_dim}] = {self._describe(value)} [{value_dim}]",
                )
            elif name_dim is None and value_dim is not None:
                self._scope.dims[name] = value_dim

    # -- dimensions (RPR841) -------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        self._check_value_dims(node, recurse=False)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for left, right in zip(operands, operands[1:]):
            ldim, rdim = self._dim_of(left), self._dim_of(right)
            if ldim and rdim and ldim != rdim:
                self._unit_violation(
                    node,
                    f"{self._describe(left)} [{ldim}] compared with "
                    f"{self._describe(right)} [{rdim}]",
                )
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._func_stack:
            func_dim = dimension_of_name(self._func_stack[-1].rsplit(".", 1)[-1])
            value_dim = self._dim_of(node.value)
            if func_dim and value_dim and func_dim != value_dim:
                self._unit_violation(
                    node,
                    f"function returns {self._describe(node.value)} [{value_dim}] "
                    f"but its name declares [{func_dim}]",
                )
        self.generic_visit(node)

    def _check_value_dims(self, node: ast.expr, recurse: bool = True) -> None:
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            ldim, rdim = self._dim_of(node.left), self._dim_of(node.right)
            if ldim and rdim and ldim != rdim:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self._unit_violation(
                    node,
                    f"{self._describe(node.left)} [{ldim}] {op} "
                    f"{self._describe(node.right)} [{rdim}]",
                )

    def _dim_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = terminal_name(node)
            dim = dimension_of_name(name)
            if dim is not None:
                return dim
            if isinstance(node, ast.Name):
                return self._scope.dims.get(node.id)
            return None
        if isinstance(node, ast.Call):
            callee = terminal_name(node.func)
            if callee in ("min", "max", "abs", "sum", "sorted", "round", "float", "int"):
                dims = {self._dim_of(arg) for arg in node.args}
                dims.discard(None)
                return dims.pop() if len(dims) == 1 else None
            return dimension_of_name(callee)
        if isinstance(node, ast.UnaryOp):
            return self._dim_of(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                ldim, rdim = self._dim_of(node.left), self._dim_of(node.right)
                if ldim is not None and (rdim is None or rdim == ldim):
                    return ldim
                if rdim is not None and ldim is None:
                    return rdim
            # Mult/Div legitimately change dimension: bytes / seconds, ...
            return None
        return None

    @staticmethod
    def _describe(node: ast.expr) -> str:
        return dotted_name(node) or terminal_name(node) or "<expr>"

    def _unit_violation(self, node: ast.AST, detail: str) -> None:
        # RULES catalog lives in rules8xx; import at call time to avoid a
        # module cycle (rules8xx imports flow for the data types).
        from repro.analysis.rules8xx import RULES_8XX

        summary, fixit = RULES_8XX["RPR841"]
        self.summary.local.append(
            Violation(
                path=self.summary.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code="RPR841",
                message=f"{summary}: {detail}",
                fixit=fixit,
            )
        )


def extract_module(source: str, path: str, tree: Optional[ast.AST] = None) -> ModuleSummary:
    """Distill one module's source into its :class:`ModuleSummary`."""
    if tree is None:
        tree = ast.parse(source, filename=path)
    extractor = ModuleExtractor(module_name_for(path), path)
    extractor.visit(tree)
    return extractor.summary


# ----------------------------------------------------------------------
# Whole-program passes
# ----------------------------------------------------------------------


class Project:
    """The program: summaries plus the graphs/propagations over them."""

    def __init__(
        self,
        summaries: Sequence[ModuleSummary],
        taint_scope: Sequence[str] = DEFAULT_TAINT_SCOPE,
    ) -> None:
        self.summaries: List[ModuleSummary] = list(summaries)
        self.taint_scope = tuple(taint_scope)
        self.by_module: Dict[str, ModuleSummary] = {
            summary.module: summary for summary in self.summaries
        }
        #: qualname -> defining module
        self.functions: Dict[str, str] = {}
        for summary in self.summaries:
            for qualname in summary.functions:
                self.functions[qualname] = summary.module
        #: class name -> True when a frozen spec-like dataclass anywhere
        self.frozen_specs: Set[str] = {
            name
            for summary in self.summaries
            for name, info in summary.classes.items()
            if info.frozen_dataclass and info.spec_like
        }
        self._resolved: Dict[Tuple[str, str, str], Optional[str]] = {}
        self._build_graph()
        self._propagate()

    # -- resolution ----------------------------------------------------
    def resolve(self, summary: ModuleSummary, caller: str, callee: str) -> Optional[str]:
        """Resolve a call-site's dotted text to a defined qualname, or None.

        Under-approximating on purpose: only local names, imported
        names, absolute dotted paths, and ``self.method`` within the
        defining class resolve; anything dynamic stays unresolved.
        """
        key = (summary.module, caller, callee)
        if key in self._resolved:
            return self._resolved[key]
        result = self._resolve_uncached(summary, caller, callee)
        self._resolved[key] = result
        return result

    def _resolve_uncached(
        self, summary: ModuleSummary, caller: str, callee: str
    ) -> Optional[str]:
        parts = callee.split(".")
        head = parts[0]
        if head in ("self", "cls") and len(parts) == 2:
            # caller is "<module>.<Class>.<method>"; siblings resolve.
            prefix = caller.rsplit(".", 1)[0]
            return self._lookup(f"{prefix}.{parts[1]}")
        candidate = self._lookup(f"{summary.module}.{callee}")
        if candidate is not None:
            return candidate
        if head in summary.imports:
            target = summary.imports[head]
            full = target if len(parts) == 1 else f"{target}.{'.'.join(parts[1:])}"
            return self._lookup(full)
        return self._lookup(callee)

    def _lookup(self, qualname: str) -> Optional[str]:
        if qualname in self.functions:
            return qualname
        init = f"{qualname}.__init__"
        if init in self.functions:
            return init
        return None

    # -- graphs --------------------------------------------------------
    def _build_graph(self) -> None:
        #: callee qualname -> set of caller qualnames (reverse call graph)
        self.callers_of: Dict[str, Set[str]] = {}
        #: caller qualname -> direct sink terminal it calls (RPR831)
        self.direct_sink: Dict[str, str] = {}
        for summary in self.summaries:
            for site in summary.calls:
                target = self.resolve(summary, site.caller, site.callee)
                if target is not None:
                    self.callers_of.setdefault(target, set()).add(site.caller)
                terminal = site.callee.rsplit(".", 1)[-1]
                if terminal in DETERMINISM_SINKS and site.caller not in self.direct_sink:
                    self.direct_sink[site.caller] = terminal

    def import_graph(self) -> Dict[str, Set[str]]:
        """module -> set of analyzed modules it imports (direct edges)."""
        known = set(self.by_module)
        graph: Dict[str, Set[str]] = {}
        for summary in self.summaries:
            edges: Set[str] = set()
            for target in summary.imports.values():
                probe = target
                while probe:
                    if probe in known and probe != summary.module:
                        edges.add(probe)
                        break
                    probe = probe.rpartition(".")[0]
            graph[summary.module] = edges
        return graph

    # -- propagation ---------------------------------------------------
    def _propagate(self) -> None:
        #: qualname -> {kind: (detail-or-via, next-hop-or-None)}
        self.taint: Dict[str, Dict[str, Tuple[str, Optional[str]]]] = {}
        seeds: List[Tuple[str, str, str]] = []
        for summary in self.summaries:
            for qualname, entries in summary.taints.items():
                for kind, detail in entries:
                    seeds.append((qualname, kind, detail))
        for qualname, kind, detail in seeds:
            self.taint.setdefault(qualname, {}).setdefault(kind, (detail, None))
        work = [(qualname, kind) for qualname, kind, _ in seeds]
        while work:
            tainted, kind = work.pop()
            for caller in self.callers_of.get(tainted, ()):
                kinds = self.taint.setdefault(caller, {})
                if kind not in kinds:
                    kinds[kind] = ("via", tainted)
                    work.append((caller, kind))
        #: qualname -> sink terminal (directly or transitively reached)
        self.reaches_sink: Dict[str, Tuple[str, Optional[str]]] = {
            qualname: (terminal, None) for qualname, terminal in self.direct_sink.items()
        }
        work2 = list(self.reaches_sink)
        while work2:
            reaching = work2.pop()
            terminal = self.reaches_sink[reaching][0]
            for caller in self.callers_of.get(reaching, ()):
                if caller not in self.reaches_sink:
                    self.reaches_sink[caller] = (terminal, reaching)
                    work2.append(caller)

    def taint_chain(self, qualname: str, kind: str) -> List[str]:
        """Human-readable hop list from ``qualname`` down to the source."""
        chain: List[str] = []
        current: Optional[str] = qualname
        seen: Set[str] = set()
        while current is not None and current not in seen:
            seen.add(current)
            chain.append(current.rsplit(".", 1)[-1])
            entry = self.taint.get(current, {}).get(kind)
            if entry is None:
                break
            detail, nxt = entry
            if nxt is None:
                chain.append(f"{detail}()")
                break
            current = nxt
        return chain

    def sink_chain(self, qualname: str) -> List[str]:
        chain: List[str] = []
        current: Optional[str] = qualname
        seen: Set[str] = set()
        while current is not None and current not in seen:
            seen.add(current)
            chain.append(current.rsplit(".", 1)[-1])
            terminal, nxt = self.reaches_sink[current]
            if nxt is None:
                chain.append(f"{terminal}()")
                break
            current = nxt
        return chain

    def in_taint_scope(self, module: str) -> bool:
        """Whether RPR811-813 report call sites in this module."""
        if module != "repro" and not module.startswith("repro."):
            return True  # explicitly linted external file (fixtures, scripts)
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.taint_scope
        )


# ----------------------------------------------------------------------
# The incremental summary cache
# ----------------------------------------------------------------------


@dataclass
class CacheStats:
    """How much work a lint run actually did."""

    files: int = 0
    parsed: int = 0
    reused: int = 0


class SummaryCache:
    """Content-hash-keyed store of :class:`ModuleSummary` values.

    The key is the file's SHA-256 plus a signature of the analyzer
    itself (rule catalog + registry kinds), so editing a file, adding a
    rule, or registering a new scheduler kind each invalidate exactly
    what they must.  ``path=None`` gives an inert in-memory cache.
    """

    def __init__(self, path: Optional[Path], signature: str) -> None:
        self.path = path
        self.signature = signature
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text())
            except (ValueError, OSError):
                data = {}
            if (
                data.get("version") == CACHE_VERSION
                and data.get("signature") == signature
            ):
                self._entries = data.get("files", {})

    @staticmethod
    def digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def lookup(self, path: str, sha: str) -> Optional[ModuleSummary]:
        entry = self._entries.get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError):
            return None

    def store(self, path: str, sha: str, summary: ModuleSummary) -> None:
        self._entries[path] = {"sha": sha, "summary": summary.to_dict()}
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        document = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "files": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(document, sort_keys=True))
        self._dirty = False


def analyzer_signature(rules: Iterable[str], registries: Dict[str, Set[str]]) -> str:
    """Cache signature: rule catalog + registry kind sets + version."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "rules": sorted(rules),
            "registries": {key: sorted(value) for key, value in registries.items()},
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
