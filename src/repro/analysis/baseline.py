"""Lint baselines: adopt a tool upgrade without a flag day.

A baseline is a committed JSON file recording the findings a team has
*seen and accepted* (for now).  CI lints with ``--baseline``: findings
in the file are suppressed, anything new fails the build.  That lets a
stricter analyzer land immediately -- pre-existing debt is frozen in
the baseline (each entry carries a ``reason``), while every new
violation is a hard error from day one.

Fingerprints are **line-independent** -- ``sha1(path : code : message)``
-- so inserting a line above an accepted finding does not churn the
baseline.  Identical findings (same file, rule, and message) are
counted: the baseline absorbs up to ``count`` of them, and the
``count+1``-th is new.

Workflow::

    python -m repro.cli lint --baseline lint-baseline.json        # gate
    python -m repro.cli lint --update-baseline                    # adopt
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.analysis.flow import Violation

BASELINE_VERSION = 1

#: The conventional committed location, used by ``--update-baseline``
#: when no ``--baseline`` path is given.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

PathLike = Union[str, Path]


def normalize_path(path: PathLike) -> str:
    """Invocation-independent form of a finding's path.

    Paths under the working directory become relative POSIX paths, so
    ``lint src/repro`` and ``lint /abs/repo/src/repro`` fingerprint
    identically and a committed baseline matches on any machine.
    """
    candidate = Path(path)
    try:
        candidate = candidate.resolve().relative_to(Path.cwd())
    except (OSError, ValueError):
        pass
    return candidate.as_posix()


def fingerprint(violation: Violation) -> str:
    """Stable identity of a finding, independent of its line number."""
    payload = f"{normalize_path(violation.path)}:{violation.code}:{violation.message}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def make_baseline(
    violations: Sequence[Violation], reasons: Dict[str, str] = None
) -> Dict[str, Any]:
    """A baseline document covering exactly ``violations``.

    ``reasons`` maps fingerprints to human explanations; entries
    without one get a placeholder that review should replace.
    """
    findings: Dict[str, Dict[str, Any]] = {}
    for violation in violations:
        key = fingerprint(violation)
        entry = findings.get(key)
        if entry is None:
            findings[key] = {
                "path": normalize_path(violation.path),
                "code": violation.code,
                "message": violation.message,
                "count": 1,
                "reason": (reasons or {}).get(key, "accepted pre-existing finding"),
            }
        else:
            entry["count"] += 1
    return {"version": BASELINE_VERSION, "findings": findings}


def save_baseline(document: Dict[str, Any], path: PathLike) -> None:
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_baseline(path: PathLike) -> Dict[str, Any]:
    document = json.loads(Path(path).read_text())
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}; "
            f"this analyzer reads version {BASELINE_VERSION}"
        )
    return document


def apply_baseline(
    violations: Sequence[Violation], document: Dict[str, Any]
) -> Tuple[List[Violation], int]:
    """(new findings, suppressed count) after subtracting the baseline.

    Per fingerprint, up to ``count`` occurrences are suppressed (in
    report order); the rest surface as new.
    """
    budget: Dict[str, int] = {
        key: int(entry.get("count", 1))
        for key, entry in document.get("findings", {}).items()
    }
    fresh: List[Violation] = []
    suppressed = 0
    for violation in violations:
        key = fingerprint(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed
