"""Temporal property checker: past-time predicates over the event log.

Where the runtime sanitizer (:mod:`repro.analysis.sanitize`) asserts
*instantaneous* state invariants as the simulation runs, this module
checks *temporal* properties -- claims about event orderings and
histories -- after the fact, over the structured log collected by
:mod:`repro.analysis.events`.  The built-in :data:`CATALOG` encodes the
paper's headline semantics (ECF's Algorithm 1 inequalities and
hysteresis, the idle-restart pathology of Section 3.2) plus core TCP/
MPTCP rules (recovery freezes the window, RTO backoff doubles, DSNs
deliver in order), and wires in the differential oracles from
:mod:`repro.analysis.reference`.

Each property is a pure function ``EventLog -> [Violation]``; adding one
means appending a :class:`Property` to :data:`CATALOG` (see
``docs/architecture.md``, "Checking layer").  Use :func:`check_log` on a
log you already have, or :func:`run_with_checks` to record-and-check any
executor spec in one call (the ``--check`` flag and the ``REPRO_CHECK``
environment variable route through the latter).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import events as _events
from repro.analysis.events import (
    AckProcessed,
    Delivered,
    EcfDecision,
    EventLog,
    IdleReset,
    MinRttDecision,
    RtoFired,
)
from repro.analysis.reference import replay_ecf, replay_minrtt

#: Setting this environment variable to anything non-empty makes the
#: executor wrap every run in record-and-check (pool workers inherit it).
ENV_VAR = "REPRO_CHECK"

#: Relative tolerance for re-deriving float quantities the implementation
#: logged (thresholds).  Generous: these are recomputed from the same
#: inputs, so anything beyond accumulated rounding is a real divergence.
_REL_TOL = 1e-9

#: Cap on subflow RTO backoff (mirrors ``repro.tcp.subflow.MAX_BACKOFF``;
#: restated here because the checker must not import its subject).
_MAX_BACKOFF = 64.0


def check_enabled() -> bool:
    """True when the ``REPRO_CHECK`` environment variable is set."""
    return bool(os.environ.get(ENV_VAR))


class CheckError(AssertionError):
    """Raised by :func:`run_with_checks` when any property is violated."""


@dataclass(frozen=True)
class Violation:
    """One property violation, anchored at the offending event's time."""

    prop: str
    t: float
    message: str

    def __str__(self) -> str:  # pragma: no cover - message formatting
        return f"[{self.prop}] t={self.t:.6f}: {self.message}"


@dataclass(frozen=True)
class Property:
    """A named past-time predicate over a completed event log."""

    name: str
    description: str
    check: Callable[[EventLog], List[Violation]]


@dataclass
class CheckReport:
    """Outcome of running a property catalog over one log."""

    properties_checked: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    events_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self, limit: int = 20) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"checked {len(self.properties_checked)} properties over "
            f"{self.events_seen} events: "
            + ("OK" if self.ok else f"{len(self.violations)} violation(s)")
        ]
        for violation in self.violations[:limit]:
            lines.append(f"  {violation}")
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Built-in properties
# ----------------------------------------------------------------------
def _ecf_wait_inequalities(log: EventLog) -> List[Violation]:
    """ECF never sends on the slow subflow while Algorithm 1 said wait.

    For every logged ``"slow"`` decision, re-derive both inequalities
    from the decision's own inputs; if inequality 1 held -- and
    inequality 2 too, when enabled -- Algorithm 1 mandated waiting, so
    transmitting on the slow subflow violates the paper.
    """
    out: List[Violation] = []
    for dec in log.of_kind(EcfDecision):
        if dec.decision != "slow":
            continue
        ineq1 = dec.n_rounds * dec.rtt_f < dec.threshold
        if not ineq1:
            continue
        if dec.use_second_inequality:
            rounds_s = math.ceil(dec.k_segments / max(dec.cwnd_s, 1.0))
            if not (rounds_s * dec.rtt_s >= 2.0 * dec.rtt_f + dec.delta):
                continue  # inequality 2 released the wait: send is legal
        out.append(Violation(
            prop="ecf-wait-respects-inequality-1",
            t=dec.t,
            message=(
                f"sent on slow subflow {dec.second_sf} while Algorithm 1 held "
                f"(n*RTT_f={dec.n_rounds * dec.rtt_f:.6f} < "
                f"threshold={dec.threshold:.6f})"
            ),
        ))
    return out


def _ecf_beta_hysteresis(log: EventLog) -> List[Violation]:
    """``beta`` inflates the waiting threshold iff ``waiting`` was set.

    The logged threshold must equal ``(1 + waiting_before*beta) *
    (RTT_s + delta)`` -- applying hysteresis without the flag (or
    dropping it with the flag) silently changes when ECF stops waiting.
    """
    out: List[Violation] = []
    for dec in log.of_kind(EcfDecision):
        factor = 1.0 + (dec.beta if dec.waiting_before else 0.0)
        expected = factor * (dec.rtt_s + dec.delta)
        if not math.isclose(dec.threshold, expected, rel_tol=_REL_TOL, abs_tol=0.0):
            out.append(Violation(
                prop="ecf-beta-only-when-waiting",
                t=dec.t,
                message=(
                    f"threshold {dec.threshold:.9f} != expected {expected:.9f} "
                    f"(waiting_before={dec.waiting_before}, beta={dec.beta})"
                ),
            ))
    return out


def _no_cwnd_growth_in_recovery(log: EventLog) -> List[Violation]:
    """The congestion window never grows while a subflow is in recovery.

    Sound on adjacent ACK records: every ACK emits one record, and
    recovery exit happens *during* ACK processing, so two consecutive
    in-recovery records bracket a window in which only decreasing
    mutations (penalization, RTO collapse, idle restart) are legal.
    """
    out: List[Violation] = []
    last: Dict[int, AckProcessed] = {}
    for ack in log.of_kind(AckProcessed):
        prev = last.get(ack.sf_uid)
        last[ack.sf_uid] = ack
        if prev is None or not (prev.in_recovery and ack.in_recovery):
            continue
        if ack.cwnd > prev.cwnd + 1e-12:
            out.append(Violation(
                prop="no-cwnd-growth-in-recovery",
                t=ack.t,
                message=(
                    f"subflow {ack.sf_id}: cwnd grew {prev.cwnd:.3f} -> "
                    f"{ack.cwnd:.3f} between ACKs inside one recovery episode"
                ),
            ))
    return out


def _rto_backoff_doubles(log: EventLog) -> List[Violation]:
    """Every fired RTO doubles the backoff multiplier (capped at 64x)."""
    out: List[Violation] = []
    for rto in log.of_kind(RtoFired):
        expected = min(_MAX_BACKOFF, rto.backoff_before * 2.0)
        if not math.isclose(rto.backoff_after, expected, rel_tol=_REL_TOL):
            out.append(Violation(
                prop="rto-backoff-doubles",
                t=rto.t,
                message=(
                    f"subflow {rto.sf_id}: backoff {rto.backoff_before} -> "
                    f"{rto.backoff_after}, expected {expected}"
                ),
            ))
    return out


def _dsn_in_order(log: EventLog) -> List[Violation]:
    """The receiver delivers the DSN stream gaplessly from zero."""
    out: List[Violation] = []
    frontier: Dict[int, int] = {}
    for ev in log.of_kind(Delivered):
        expected = frontier.get(ev.recv_uid, 0)
        if ev.dsn != expected:
            out.append(Violation(
                prop="dsn-in-order-delivery",
                t=ev.t,
                message=(
                    f"receiver {ev.recv_uid} delivered dsn={ev.dsn}, "
                    f"expected {expected}"
                ),
            ))
        frontier[ev.recv_uid] = ev.dsn + ev.payload
    return out


def _idle_reset_not_during_wait(log: EventLog) -> List[Violation]:
    """An ECF wait never leads to the fast subflow's idle-restart reset.

    Section 3.2's pathology inverted: ECF waits *because* the fast
    subflow has data in flight, so its idle clock cannot run out while
    connection-level data is pending on it.  An :class:`IdleReset` on a
    subflow that some scheduler was waiting for *during the idle period*
    means the wait starved the very subflow it was protecting.
    """
    waits: List[EcfDecision] = [
        d for d in log.of_kind(EcfDecision) if d.decision == "wait"
    ]
    out: List[Violation] = []
    for reset in log.of_kind(IdleReset):
        idle_start = reset.t - reset.idle
        for dec in waits:
            if dec.fastest_uid == reset.sf_uid and idle_start < dec.t <= reset.t:
                out.append(Violation(
                    prop="idle-reset-not-during-wait",
                    t=reset.t,
                    message=(
                        f"subflow {reset.sf_id} idle-reset after {reset.idle:.3f}s "
                        f"idle, yet ECF decided to wait for it at t={dec.t:.6f} "
                        "inside that idle period"
                    ),
                ))
                break
    return out


def _ecf_reference(log: EventLog) -> List[Violation]:
    """Differential oracle: replay every ECF decision through the paper model."""
    by_sched: Dict[int, List[EcfDecision]] = {}
    for dec in log.of_kind(EcfDecision):
        by_sched.setdefault(dec.sched_uid, []).append(dec)
    out: List[Violation] = []
    for uid, decisions in sorted(by_sched.items()):
        for div in replay_ecf(decisions):
            out.append(Violation(
                prop="ecf-reference-model",
                t=div.t,
                message=f"scheduler uid={uid}: {div}",
            ))
    return out


def _minrtt_reference(log: EventLog) -> List[Violation]:
    """Differential oracle: every minRTT pick is the smallest-SRTT subflow."""
    by_sched: Dict[int, List[MinRttDecision]] = {}
    for dec in log.of_kind(MinRttDecision):
        by_sched.setdefault(dec.sched_uid, []).append(dec)
    out: List[Violation] = []
    for uid, decisions in sorted(by_sched.items()):
        for div in replay_minrtt(decisions):
            out.append(Violation(
                prop="minrtt-reference-model",
                t=div.t,
                message=f"scheduler uid={uid}: {div}",
            ))
    return out


CATALOG: Tuple[Property, ...] = (
    Property(
        name="ecf-wait-respects-inequality-1",
        description="ECF never transmits on a slow subflow while Algorithm 1 "
        "mandated waiting for the fast one",
        check=_ecf_wait_inequalities,
    ),
    Property(
        name="ecf-beta-only-when-waiting",
        description="hysteresis beta inflates the waiting threshold iff the "
        "waiting flag was already set",
        check=_ecf_beta_hysteresis,
    ),
    Property(
        name="no-cwnd-growth-in-recovery",
        description="cwnd never grows between ACKs inside one recovery episode",
        check=_no_cwnd_growth_in_recovery,
    ),
    Property(
        name="rto-backoff-doubles",
        description="each fired RTO doubles the backoff multiplier, capped at 64x",
        check=_rto_backoff_doubles,
    ),
    Property(
        name="dsn-in-order-delivery",
        description="the receiver delivers the DSN stream gaplessly from zero",
        check=_dsn_in_order,
    ),
    Property(
        name="idle-reset-not-during-wait",
        description="the fast subflow's idle-restart never fires during a period "
        "ECF spent waiting for it",
        check=_idle_reset_not_during_wait,
    ),
    Property(
        name="ecf-reference-model",
        description="every ECF decision matches the paper's Algorithm 1 replayed "
        "on the logged inputs",
        check=_ecf_reference,
    ),
    Property(
        name="minrtt-reference-model",
        description="every minRTT pick is the smallest-SRTT window-open subflow",
        check=_minrtt_reference,
    ),
)


def check_log(
    log: EventLog,
    properties: Optional[Sequence[Property]] = None,
    allow_partial: bool = False,
) -> CheckReport:
    """Run a property catalog (default: all of :data:`CATALOG`) over a log.

    Refuses capped logs that actually dropped events unless
    ``allow_partial`` -- chain properties (backoff doubling, DSN
    frontiers) read history, and a truncated history can both mask real
    violations and fabricate false ones.
    """
    if log.dropped > 0 and not allow_partial:
        raise ValueError(
            f"event log dropped {log.dropped} record(s); temporal properties "
            "need full history (pass allow_partial=True to override)"
        )
    report = CheckReport(events_seen=len(log))
    for prop in properties if properties is not None else CATALOG:
        report.properties_checked.append(prop.name)
        report.violations.extend(prop.check(log))
    report.violations.sort(key=lambda v: (v.t, v.prop))
    return report


def run_with_checks(
    run: Callable[[Any], Any],
    spec: Any,
    properties: Optional[Sequence[Property]] = None,
) -> Tuple[Any, CheckReport]:
    """Execute ``run(spec)`` under a fresh event log and check the catalog.

    Returns ``(result, report)``; raises :class:`CheckError` when any
    property is violated, carrying the formatted report, so callers that
    only want the pass/fail signal (the executor's ``--check`` path) can
    simply propagate the exception.

    Any exception leaving this function -- the :class:`CheckError`, a
    sanitizer assertion, or a crash inside the run -- gets the recorded
    log attached as an ``event_log`` attribute, so the flight recorder's
    postmortem writer (:mod:`repro.obs.flight`) can snapshot the full
    failure context even though this recording shadowed its ring buffer.
    """
    with _events.recording() as log:
        try:
            result = run(spec)
        except BaseException as exc:
            exc.event_log = log  # type: ignore[attr-defined]
            raise
    report = check_log(log, properties=properties)
    if not report.ok:
        error = CheckError(report.format())
        error.event_log = log  # type: ignore[attr-defined]
        raise error
    return result, report
