"""Event-order race detector: re-run scenarios under shuffled tie-breaks.

The engine breaks same-timestamp ties by insertion order, which makes
runs reproducible but also *hides* any code that accidentally depends on
which of two simultaneous events fires first -- a latent race that a
refactor reordering two ``schedule()`` calls would surface as a silent
result change.  This module re-executes a scenario several times under
:func:`repro.sim.engine.forced_tie_break` with different shuffle seeds
and demands the summary metrics stay **byte-identical** (compared as
canonical JSON of ``result.to_dict()``): for a single-connection
scenario, simultaneous events are causally independent, so any
divergence is order-dependence in library code.

Scope: the identity assertion only makes sense where ties are causally
independent.  Scenarios with several connections contending for shared
links (the web workload) have *semantic* tie sensitivity -- two packets
hitting one queue in the same instant genuinely serve in either order --
so the default ``repro check`` matrix runs the race detector on the
single-connection DASH and bulk scenarios only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.experiments.spec import canonical_json
from repro.sim import engine


@dataclass(frozen=True)
class RaceFinding:
    """One randomized order whose result diverged from the baseline."""

    seed: int
    fields: List[str]

    def __str__(self) -> str:  # pragma: no cover - message formatting
        return (
            f"tie-break seed {self.seed} changed result fields: "
            f"{', '.join(self.fields) or '<structure>'}"
        )


@dataclass
class RaceReport:
    """Outcome of one scenario's tie-break randomization sweep."""

    orders: int = 0
    findings: List[RaceFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        if self.ok:
            return f"byte-identical across {self.orders} randomized tie-break orders"
        lines = [
            f"{len(self.findings)}/{self.orders} randomized orders diverged "
            "(event-order race):"
        ]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


def _diff_fields(baseline: str, candidate: str) -> List[str]:
    """Top-level result keys whose values differ between two runs."""
    import json

    a, b = json.loads(baseline), json.loads(candidate)
    if not isinstance(a, dict) or not isinstance(b, dict):
        return []
    return sorted(
        key for key in set(a) | set(b) if a.get(key) != b.get(key)
    )


def race_check(
    run: Callable[[Any], Any],
    spec: Any,
    orders: int = 5,
    seeds: Optional[List[int]] = None,
) -> RaceReport:
    """Assert ``run(spec)`` is independent of same-timestamp event order.

    Runs the scenario once under the default FIFO tie-break as baseline,
    then ``orders`` more times under seeded random tie-breaks, comparing
    canonical-JSON serializations of the results.  ``run`` must be a
    pure spec runner (it builds its own ``Simulator`` internally -- the
    forced tie-break context reaches it through the engine module).
    """
    if orders < 1:
        raise ValueError(f"orders must be >= 1, got {orders!r}")
    if seeds is None:
        seeds = list(range(1, orders + 1))
    elif len(seeds) != orders:
        raise ValueError(f"need exactly {orders} seeds, got {len(seeds)}")
    baseline = canonical_json(run(spec).to_dict())
    report = RaceReport(orders=orders)
    for seed in seeds:
        with engine.forced_tie_break("random", seed):
            candidate = canonical_json(run(spec).to_dict())
        if candidate != baseline:
            report.findings.append(
                RaceFinding(seed=seed, fields=_diff_fields(baseline, candidate))
            )
    return report
