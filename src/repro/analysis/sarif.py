"""SARIF 2.1.0 output for the lint: findings as code-scanning data.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning, VS Code SARIF viewers, and most CI dashboards
ingest.  ``python -m repro.cli lint --sarif out.sarif`` writes one run
with the full rule catalog embedded, so annotations land on the exact
line/column in a pull request.

:func:`validate` structurally checks a document against the parts of
the 2.1.0 schema this tool exercises (no external schema dependency in
the container); the tests round-trip every fixture through it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.flow import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/ecf-repro/repro"


def to_sarif(
    violations: Sequence[Violation],
    rules: Dict[str, Tuple[str, str]],
) -> Dict[str, Any]:
    """One SARIF 2.1.0 document for a lint run.

    ``rules`` is the full catalog (code -> (summary, fixit)); every
    rule is embedded even when it has no results, so a dashboard can
    show coverage, and ``ruleIndex`` links each result back to it.
    """
    ordered_codes = sorted(rules)
    rule_index = {code: index for index, code in enumerate(ordered_codes)}
    driver_rules = [
        {
            "id": code,
            "shortDescription": {"text": rules[code][0]},
            "help": {"text": rules[code][1]},
            "defaultConfiguration": {"level": "error"},
        }
        for code in ordered_codes
    ]
    results = []
    for violation in violations:
        results.append(
            {
                "ruleId": violation.code,
                "ruleIndex": rule_index.get(violation.code, -1),
                "level": "error",
                "message": {"text": f"{violation.message} ({violation.fixit})"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": violation.line,
                                "startColumn": violation.col,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def validate(document: Any) -> List[str]:
    """Structural problems in a SARIF document; empty list = valid.

    Checks the 2.1.0 constraints this tool's output exercises: the
    version marker, the runs array, tool.driver.name, and for every
    result a ruleId, a message with text, and physical locations with
    1-based line/column integers.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    if document.get("version") != SARIF_VERSION:
        problems.append(
            f"version must be {SARIF_VERSION!r}, got {document.get('version')!r}"
        )
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        driver = (run.get("tool") or {}).get("driver") if isinstance(run, dict) else None
        if not isinstance(driver, dict) or not driver.get("name"):
            problems.append(f"{where}.tool.driver.name is required")
            continue
        rule_ids = set()
        for rule in driver.get("rules", []):
            if not isinstance(rule, dict) or not rule.get("id"):
                problems.append(f"{where}: every rule needs an id")
            else:
                rule_ids.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for result_index, result in enumerate(results):
            at = f"{where}.results[{result_index}]"
            if not isinstance(result, dict):
                problems.append(f"{at} is not an object")
                continue
            if not result.get("ruleId"):
                problems.append(f"{at}.ruleId is required")
            elif rule_ids and result["ruleId"] not in rule_ids:
                problems.append(
                    f"{at}.ruleId {result['ruleId']!r} is not in the driver rules"
                )
            message = result.get("message")
            if not isinstance(message, dict) or not message.get("text"):
                problems.append(f"{at}.message.text is required")
            for loc_index, location in enumerate(result.get("locations", [])):
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(physical, dict):
                    problems.append(f"{at}.locations[{loc_index}] lacks physicalLocation")
                    continue
                artifact = physical.get("artifactLocation")
                if not isinstance(artifact, dict) or not artifact.get("uri"):
                    problems.append(
                        f"{at}.locations[{loc_index}] lacks artifactLocation.uri"
                    )
                region = physical.get("region")
                if isinstance(region, dict):
                    for key in ("startLine", "startColumn"):
                        value = region.get(key)
                        if value is not None and (
                            not isinstance(value, int) or value < 1
                        ):
                            problems.append(
                                f"{at}.locations[{loc_index}].region.{key} "
                                f"must be a positive integer"
                            )
    return problems
