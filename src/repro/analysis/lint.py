"""Simulator-specific static analysis (``python -m repro.cli lint``).

Generic linters cannot know that *this* codebase must never read the wall
clock, that every random draw must flow through an injected
``random.Random`` / :class:`~repro.sim.rng.RngRegistry` stream, or that a
scheduler name baked into a default is a typo waiting for runtime.  The
rules here encode exactly those contracts:

=======  ==========================================================
code     invariant
=======  ==========================================================
RPR101   no wall-clock reads (``time.time``, ``datetime.now``, ...)
RPR102   no module-level ``random.*`` draws
RPR103   no ad-hoc ``random.Random(...)`` construction
RPR201   no mutable default arguments
RPR301   no float ``==`` / ``!=`` on simulated timestamps
RPR401   experiment spec dataclasses must be ``frozen=True``
RPR402   spec fields must be plain values, not live simulator objects
RPR501   registry kind strings must resolve against their registry
RPR601   no direct ``print()`` outside the CLI front end
RPR701   no cross-package imports of underscore-prefixed names
RPR901   no event-queue manipulation outside ``repro.sim.engine``
=======  ==========================================================

These are per-module, syntactic rules.  The **RPR8xx family**
(:mod:`repro.analysis.rules8xx`) upgrades them to whole-program,
semantic ones -- interprocedural wall-clock/RNG taint (RPR811-813),
frozen-spec aliasing (RPR821), unordered iteration feeding event order
(RPR831), and units discipline (RPR841) -- using the call graph and
dataflow built by :mod:`repro.analysis.flow`.

Each violation carries a fix-it hint.  A rule can be suppressed on one
line with ``# repro: noqa[RPR101]`` (or all rules with
``# repro: noqa``); suppressions are deliberate, so say *why* in a
neighbouring comment.  Accepted pre-existing findings live in a
committed baseline (:mod:`repro.analysis.baseline`) instead.

Use :func:`lint_paths` / :func:`lint_source` programmatically,
:func:`run_lint` for the full pipeline (incremental cache, baseline,
stats), or the CLI form which exits non-zero when any violation
survives::

    python -m repro.cli lint            # lints the installed repro package
    python -m repro.cli lint src tests  # explicit files or directories
    python -m repro.cli lint --sarif out.sarif --baseline lint-baseline.json
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import flow as _flow
from repro.analysis.flow import (
    CacheStats,
    ModuleSummary,
    Project,
    SummaryCache,
    Violation,
    analyzer_signature,
    apply_noqa,
    dotted_name as _dotted_name,
    extract_module,
    terminal_name as _terminal_name,
)
from repro.analysis.rules8xx import RULES_8XX, flow_violations
from repro.analysis.state import RULES_9XX, state_violations

#: Syntactic (per-module) rule catalog: code -> (summary, fix-it hint).
SYNTACTIC_RULES: Dict[str, Tuple[str, str]] = {
    "RPR101": (
        "wall-clock read in simulation code",
        "use the simulator clock (sim.now); real time breaks determinism",
    ),
    "RPR102": (
        "module-level random.* call",
        "draw from an injected random.Random / RngRegistry stream instead",
    ),
    "RPR103": (
        "ad-hoc random.Random construction",
        "derive the stream from RngRegistry so seeds stay refactoring-proof",
    ),
    "RPR201": (
        "mutable default argument",
        "default to None (or a field(default_factory=...)) and build inside",
    ),
    "RPR301": (
        "float equality on a simulated timestamp",
        "compare with a tolerance or an ordering operator; exact float "
        "equality on times is luck, not logic",
    ),
    "RPR401": (
        "experiment spec dataclass is not frozen",
        "declare @dataclass(frozen=True); specs are immutable cache keys",
    ),
    "RPR402": (
        "spec field holds a live simulator object",
        "store a plain-value description (a *Spec / *Config dataclass) and "
        "rebuild the live object at run time",
    ),
    "RPR501": (
        "unknown registry kind string",
        "use a name the registry resolves; typos here only fail at run time",
    ),
    "RPR601": (
        "direct print() in library code",
        "emit telemetry through the run journal / timeline exporters (or a "
        "ProgressEvent sink); stdout writes belong to the CLI alone",
    ),
    "RPR701": (
        "cross-package import of an underscore-prefixed name",
        "underscore names are package-private; import the public accessor "
        "(e.g. registered_schedulers()) or promote the name if it is "
        "genuinely part of the supported surface",
    ),
    "RPR901": (
        "event-queue manipulation outside repro.sim.engine",
        "schedule through Simulator.schedule/schedule_at; direct heapq or "
        "_heap access bypasses tie-break keys and breaks the race detector",
    ),
}

#: The full catalog: syntactic rules plus the semantic RPR8xx family
#: and the state-model RPR9xx family.
RULES: Dict[str, Tuple[str, str]] = {**SYNTACTIC_RULES, **RULES_8XX, **RULES_9XX}

#: Dotted call targets that read the wall clock (shared with the taint
#: pass in :mod:`repro.analysis.flow`).
_WALL_CLOCK_CALLS = _flow.WALL_CLOCK_CALLS

#: Terminal identifiers treated as simulated timestamps for RPR301.
_TIME_NAMES = frozenset(
    {
        "now",
        "time",
        "sent_time",
        "arrival_time",
        "arrived_at",
        "established_at",
        "completed_at",
        "deadline",
        "start_time",
        "end_time",
        "page_load_time",
        "completion_time",
    }
)

#: Type names that must never appear in a spec field annotation.
_LIVE_OBJECT_TYPES = frozenset(
    {
        "Simulator",
        "Timer",
        "Link",
        "Path",
        "Subflow",
        "MptcpConnection",
        "MptcpReceiver",
        "CongestionController",
        "Scheduler",
        "HttpSession",
        "DashPlayer",
        "Random",
    }
)

#: Files allowed to construct ``random.Random`` directly: the registry
#: itself, which exists to own that construction, and the snapshot
#: restorer, which rebuilds captured streams from ``getstate`` tuples
#: (seeding through the registry would immediately be overwritten).
_RNG_CONSTRUCTION_ALLOWLIST = ("repro/sim/rng.py", "repro/sim/snapshot.py")

#: The one file allowed to import ``heapq`` or touch a simulator's
#: ``_heap``: the engine owns the event queue, including the tie-break
#: key shape the race detector relies on (RPR901).
_EVENT_QUEUE_ALLOWLIST = ("repro/sim/engine.py",)

#: Files allowed to ``print()`` directly: the CLI front end, whose whole
#: job is writing to stdout (RPR601).  Library code reports through the
#: run journal, the timeline exporters, or a ProgressEvent sink.
_PRINT_ALLOWLIST = ("repro/cli.py",)


def _registries() -> Dict[str, Set[str]]:
    """Kind-name sets for RPR501, loaded from the live registries.

    Loading from the registries (not a hardcoded copy) means a newly
    registered scheduler is immediately lintable without touching the
    linter.
    """
    from repro.core.registry import registered_schedulers
    from repro.experiments.spec import registered_experiment_kinds
    from repro.net.bandwidth import registered_bandwidth_kinds
    from repro.service.backends import registered_backend_kinds
    from repro.tcp.cc import registered_controllers

    return {
        "scheduler": set(registered_schedulers()),
        "congestion_control": set(registered_controllers()),
        "bandwidth": set(registered_bandwidth_kinds()),
        "experiment": set(registered_experiment_kinds()),
        "backend": set(registered_backend_kinds()),
    }


def _repro_package_of(path: str) -> Optional[str]:
    """The repro subpackage a file belongs to, for RPR701.

    ``src/repro/analysis/lint.py`` -> ``"analysis"``;
    ``src/repro/cli.py`` -> ``""`` (the package root); files outside the
    ``repro`` package -> ``None`` (external consumers, for whom *every*
    repro underscore name is private -- suppress with a noqa where a
    test deliberately reaches into internals).
    """
    parts = Path(path).as_posix().split("/")
    if "repro" not in parts:
        return None
    rel = parts[len(parts) - 1 - parts[::-1].index("repro") + 1 :]
    return rel[0] if len(rel) > 1 else ""


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, registries: Dict[str, Set[str]]) -> None:
        self.path = path
        self.registries = registries
        self.violations: List[Violation] = []
        posix = Path(path).as_posix()
        self.allow_rng_construction = posix.endswith(_RNG_CONSTRUCTION_ALLOWLIST)
        self.allow_event_queue = posix.endswith(_EVENT_QUEUE_ALLOWLIST)
        self.allow_print = posix.endswith(_PRINT_ALLOWLIST)
        self.repro_package = _repro_package_of(path)

    # -- helpers -------------------------------------------------------
    def add(self, node: ast.AST, code: str, detail: str = "") -> None:
        summary, fixit = RULES[code]
        message = f"{summary}: {detail}" if detail else summary
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
                fixit=fixit,
            )
        )

    # -- RPR101 / RPR102 / RPR103 / RPR501 (calls) ---------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            self.add(node, "RPR101", f"{dotted}()")
        elif dotted == "print":
            if not self.allow_print:
                self.add(node, "RPR601", "print(...)")
        elif dotted is not None and dotted.startswith("random."):
            head = dotted.split(".", 2)[1]
            if head in ("Random", "SystemRandom"):
                if not self.allow_rng_construction:
                    self.add(node, "RPR103", f"{dotted}(...)")
            else:
                self.add(node, "RPR102", f"{dotted}()")
        self._check_registry_call(node)
        self.generic_visit(node)

    def _check_registry_call(self, node: ast.Call) -> None:
        terminal = _terminal_name(node.func)
        registry_key = {
            "make_scheduler": "scheduler",
            "make_controller": "congestion_control",
            "build_controller": "congestion_control",
            "experiment_kind": "experiment",
        }.get(terminal or "")
        if terminal == "of":
            # SchedulerSpec.of("kind", ...) and friends -- only when the
            # receiver is literally one of the known spec class names;
            # other .of() calls pass.
            receiver = (
                node.func.value if isinstance(node.func, ast.Attribute) else None
            )
            if receiver is not None:
                registry_key = {
                    "BandwidthSpec": "bandwidth",
                    "SchedulerSpec": "scheduler",
                    "CcSpec": "congestion_control",
                }.get(_terminal_name(receiver) or "", registry_key)
        if registry_key is None or not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            self._check_kind(node, registry_key, first.value)

    def _check_kind(self, node: ast.AST, registry_key: str, value: str) -> None:
        known = self.registries.get(registry_key, set())
        if known and value.lower() not in known:
            self.add(
                node,
                "RPR501",
                f"{value!r} is not a registered {registry_key} kind "
                f"(known: {', '.join(sorted(known))})",
            )

    # -- RPR701 (cross-package private imports) -------------------------
    def _foreign_repro_module(self, module: str) -> bool:
        """True when ``module`` names a repro subpackage other than ours."""
        parts = module.split(".")
        if parts[0] != "repro":
            return False
        if self.repro_package is None:
            return True
        target = parts[1] if len(parts) > 1 else ""
        return target != self.repro_package

    def _check_private_import(self, node: ast.AST, module: str, name: str) -> None:
        if not self._foreign_repro_module(module):
            return
        private_component = next(
            (part for part in module.split(".") if part.startswith("_")), None
        )
        if private_component is not None:
            self.add(node, "RPR701", f"module {module} ({private_component})")
        elif name.startswith("_"):
            self.add(node, "RPR701", f"from {module} import {name}")

    # -- RPR901 (event-queue manipulation) -----------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if not self.allow_event_queue:
            for alias in node.names:
                if alias.name == "heapq":
                    self.add(node, "RPR901", "import heapq")
        for alias in node.names:
            # ``import repro.x._priv``: the module path itself is private.
            self._check_private_import(node, alias.name, "")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.allow_event_queue and node.module == "heapq":
            self.add(node, "RPR901", "from heapq import ...")
        # Relative imports (level > 0) stay within their own package tree
        # as far as this rule cares; only absolute repro imports cross
        # package boundaries visibly.
        if node.level == 0 and node.module:
            for alias in node.names:
                self._check_private_import(node, node.module, alias.name)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.allow_event_queue and node.attr == "_heap":
            self.add(node, "RPR901", "direct _heap access")
        self.generic_visit(node)

    # -- RPR201 (mutable defaults) -------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
                self.add(default, "RPR201", "literal container default")
            elif isinstance(default, ast.Call):
                callee = _dotted_name(default.func)
                if callee in ("list", "dict", "set", "collections.deque", "deque"):
                    self.add(default, "RPR201", f"{callee}() default")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- RPR301 (float equality on timestamps) -------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._is_timestamp(left) or self._is_timestamp(right):
                if self._is_non_numeric_literal(left) or self._is_non_numeric_literal(right):
                    continue
                self.add(node, "RPR301", self._describe_compare(left, right))
        self.generic_visit(node)

    @staticmethod
    def _is_timestamp(node: ast.expr) -> bool:
        return _terminal_name(node) in _TIME_NAMES

    @staticmethod
    def _is_non_numeric_literal(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and not isinstance(
            node.value, (int, float)
        )

    @staticmethod
    def _describe_compare(left: ast.expr, right: ast.expr) -> str:
        def name(node: ast.expr) -> str:
            return _dotted_name(node) or _terminal_name(node) or "<expr>"

        return f"{name(left)} == {name(right)}"

    # -- RPR401 / RPR402 / RPR501 (spec dataclasses) -------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decorator = self._dataclass_decorator(node)
        if decorator is not None and self._is_spec_class(node):
            if not self._dataclass_is_frozen(decorator):
                self.add(node, "RPR401", f"class {node.name}")
            self._check_spec_fields(node)
        if decorator is not None:
            self._check_registry_defaults(node)
        self.generic_visit(node)

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef):
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if _terminal_name(target) == "dataclass":
                return dec
        return None

    @staticmethod
    def _is_spec_class(node: ast.ClassDef) -> bool:
        """Spec-like: named *Spec, or declaring a ClassVar ``kind``."""
        if node.name.endswith("Spec"):
            return True
        for statement in node.body:
            if (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.target.id == "kind"
                and "ClassVar" in ast.dump(statement.annotation)
            ):
                return True
        return False

    @staticmethod
    def _dataclass_is_frozen(decorator) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        return False

    def _check_spec_fields(self, node: ast.ClassDef) -> None:
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            for terminal in _annotation_names(statement.annotation):
                if terminal in _LIVE_OBJECT_TYPES:
                    target = statement.target
                    field_name = target.id if isinstance(target, ast.Name) else "<field>"
                    self.add(
                        statement,
                        "RPR402",
                        f"{node.name}.{field_name} annotated {terminal}",
                    )
                    break

    def _check_registry_defaults(self, node: ast.ClassDef) -> None:
        """Kind-string defaults on dataclass fields must resolve too."""
        for statement in node.body:
            if not (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.value is not None
            ):
                continue
            field_name = statement.target.id
            if field_name in ("scheduler", "congestion_control"):
                value = statement.value
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    self._check_kind(statement, _field_registry(field_name), value.value)
            elif field_name == "schedulers" and isinstance(statement.value, ast.Tuple):
                for element in statement.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        self._check_kind(statement, "scheduler", element.value)


def _annotation_names(annotation: ast.expr) -> Set[str]:
    """Every type identifier in an annotation, string forms included."""
    names: Set[str] = set()
    for sub in ast.walk(annotation):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            terminal = _terminal_name(sub)
            if terminal is not None:
                names.add(terminal)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # Forward references: 'Simulator', Optional["Link"], ...
            try:
                parsed = ast.parse(sub.value, mode="eval")
            except SyntaxError:
                continue
            names.update(_annotation_names(parsed.body))
    return names


def _field_registry(field_name: str) -> str:
    return "scheduler" if field_name == "scheduler" else "congestion_control"


def _select_filter(
    violations: List[Violation], select: Optional[Iterable[str]]
) -> List[Violation]:
    if select is None:
        return violations
    wanted = {code.upper() for code in select}
    unknown = wanted - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return [v for v in violations if v.code in wanted]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    registries: Optional[Dict[str, Set[str]]] = None,
) -> List[Violation]:
    """Lint one module's source text with the syntactic rules.

    ``select`` restricts to the given rule codes; ``registries``
    overrides the kind-name sets (tests use this to avoid importing the
    whole library).  The whole-program RPR8xx rules need more than one
    module's text -- they run in :func:`run_lint` / :func:`lint_paths`.
    """
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, _registries() if registries is None else registries)
    linter.visit(tree)
    violations = apply_noqa(linter.violations, source)
    violations = _select_filter(violations, select)
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.code))


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    A ``.py`` path that no longer exists is skipped, not an error:
    ``--changed`` feeds paths straight from ``git diff``, which happily
    reports files that were deleted or renamed away.  Anything else
    that does not exist is still a hard error (a typoed directory
    silently linting nothing would be worse).
    """
    files: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            if path.is_file():
                files.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(files)


@dataclass
class LintRun:
    """Everything one pipeline run produced.

    ``violations`` is what gates CI (noqa-, select-, and
    baseline-filtered); ``all_violations`` is the pre-baseline view
    ``--update-baseline`` snapshots; ``stats`` carries the cache
    counters the incremental tests assert on.
    """

    violations: List[Violation] = field(default_factory=list)
    all_violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    stats: CacheStats = field(default_factory=CacheStats)
    project: Optional[Project] = None


def run_lint(
    paths: Sequence,
    select: Optional[Iterable[str]] = None,
    registries: Optional[Dict[str, Set[str]]] = None,
    cache_path: Optional[Path] = None,
    baseline: Optional[Dict] = None,
    only_paths: Optional[Set[str]] = None,
    taint_scope: Sequence[str] = _flow.DEFAULT_TAINT_SCOPE,
) -> LintRun:
    """The full pipeline: parse (or reuse), analyze, filter, report.

    Per file: read + hash, then either reuse the cached
    :class:`~repro.analysis.flow.ModuleSummary` (which carries the
    already-noqa'd per-module findings) or parse once and run both the
    syntactic linter and the flow extractor over the same tree.  The
    whole-program passes then run over all summaries -- cached or fresh
    -- and their findings get noqa'd against the sources read for
    hashing.  ``only_paths`` (``--changed``) restricts *reporting* to
    those files while still analyzing the whole program, so an
    interprocedural finding in a changed file still sees its unchanged
    callees.
    """
    if registries is None:
        registries = _registries()
    signature = analyzer_signature(RULES, registries)
    cache = SummaryCache(cache_path, signature)
    stats = CacheStats()
    summaries: List[ModuleSummary] = []
    sources: Dict[str, str] = {}
    for file_path in iter_python_files([Path(p) for p in paths]):
        key = str(file_path)
        source = file_path.read_text()
        sources[key] = source
        sha = SummaryCache.digest(source)
        stats.files += 1
        summary = cache.lookup(key, sha)
        if summary is None:
            stats.parsed += 1
            tree = ast.parse(source, filename=key)
            linter = _Linter(key, registries)
            linter.visit(tree)
            summary = extract_module(source, key, tree=tree)
            # Per-module findings (syntactic + RPR841 from the extractor)
            # are noqa'd here and cached noqa'd: the noqa comment lives in
            # the same file, so the content hash covers it.
            summary.local = apply_noqa(summary.local + linter.violations, source)
            cache.store(key, sha, summary)
        else:
            stats.reused += 1
        summaries.append(summary)
    cache.save()

    project = Project(summaries, taint_scope=taint_scope)
    per_file: Dict[str, List[Violation]] = {}
    for summary in summaries:
        per_file.setdefault(summary.path, []).extend(summary.local)
    for violation in flow_violations(project):
        per_file.setdefault(violation.path, []).append(violation)
    for violation in state_violations(project):
        per_file.setdefault(violation.path, []).append(violation)
    merged: List[Violation] = []
    for path_key, violations in per_file.items():
        merged.extend(apply_noqa(violations, sources.get(path_key, "")))
    merged = _select_filter(merged, select)
    if only_paths is not None:
        resolved = {str(Path(p).resolve()) for p in only_paths}
        merged = [v for v in merged if str(Path(v.path).resolve()) in resolved]
    merged.sort(key=lambda v: (v.path, v.line, v.col, v.code))

    run = LintRun(all_violations=merged, stats=stats, project=project)
    if baseline is not None:
        from repro.analysis.baseline import apply_baseline

        run.violations, run.suppressed = apply_baseline(merged, baseline)
    else:
        run.violations = merged
    return run


def lint_paths(
    paths: Sequence, select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Lint files and/or directory trees; returns all violations.

    Runs the full rule set -- syntactic and whole-program -- without a
    cache or baseline.  :func:`run_lint` exposes both.
    """
    return run_lint(paths, select=select).violations


def default_lint_root() -> Path:
    """The installed ``repro`` package directory (the CLI default)."""
    import repro

    return Path(repro.__file__).parent
