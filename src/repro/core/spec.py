"""Config-first construction: frozen specs in, live objects out.

The repo-wide construction idiom (see ``docs/api.md``): anything that
used to be built by a ``make_*(name, **params)`` factory call is instead
described by a small frozen spec dataclass and realized through a single
:func:`build` entry point::

    from repro.core.spec import SchedulerSpec, build

    scheduler = build(SchedulerSpec.of("ecf", beta=0.5))

The spec is a plain value -- JSON-serializable, hashable, comparable --
so it can ride inside experiment specs, cross a process-pool boundary,
key the result cache, and be stored in the campaign database
(:mod:`repro.service.store`), none of which a live scheduler object can
do.  :func:`build` dispatches on the spec type:

=====================================================  ====================
spec                                                   built object
=====================================================  ====================
:class:`SchedulerSpec`                                 :class:`~repro.core.base.Scheduler`
:class:`CcSpec`                                        :class:`~repro.tcp.cc.CongestionController`
:class:`~repro.net.bandwidth.BandwidthSpec`            a bandwidth process
backend configs (:mod:`repro.service.backends`)        an execution backend
=====================================================  ====================

Like every registry here, :func:`build` always returns a *fresh*
instance: schedulers and controllers carry per-connection state.

``make_scheduler(name, **params)`` remains as a thin deprecated shim
over ``build(SchedulerSpec.of(name, **params))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.core.base import Scheduler
from repro.core import registry as _registry


def _canonical(value: Any) -> Any:
    """Normalize parameter values so equal specs compare (and hash) equal.

    Lists become tuples (recursively); everything else passes through.
    This keeps a spec reconstructed from JSON equal to the original --
    the same rule :class:`~repro.net.bandwidth.BandwidthSpec` applies.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


@dataclass(frozen=True)
class _KindSpec:
    """Shared shape of a named-kind construction spec.

    ``params`` is stored canonically as a sorted tuple of ``(key, value)``
    pairs with nested sequences tupled, so two specs describing the same
    object are equal regardless of construction order or a JSON round
    trip.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, kind: str, **params: Any) -> "Any":
        """Build a spec from keyword parameters."""
        items = tuple(sorted((k, _canonical(v)) for k, v in params.items()))
        return cls(kind=kind, params=items)

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (tuples degrade to lists in JSON)."""
        return {"kind": self.kind, "params": self.param_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Any":
        return cls.of(data["kind"], **dict(data.get("params", {})))


@dataclass(frozen=True)
class SchedulerSpec(_KindSpec):
    """A named, serializable description of a path scheduler.

    ``kind`` resolves against the scheduler registry
    (:func:`repro.core.registry.registered_schedulers`); ``params`` are
    constructor keywords, e.g. ``SchedulerSpec.of("ecf", beta=0.5)``.
    """


@dataclass(frozen=True)
class CcSpec(_KindSpec):
    """A named, serializable description of a congestion controller.

    ``kind`` resolves against :func:`repro.tcp.cc.registered_controllers`
    (``"reno"``, ``"coupled"``/``"lia"``, ``"olia"``, ``"cubic"``).
    """


def _build_scheduler(spec: SchedulerSpec) -> Scheduler:
    try:
        factory = _registry._FACTORIES[spec.kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {spec.kind!r}; "
            f"choose from {sorted(_registry.registered_schedulers())}"
        ) from None
    return factory(**spec.param_dict())


def _build_controller(spec: CcSpec) -> Any:
    # Imported lazily: repro.core must not depend on repro.tcp at import
    # time (the dependency runs the other way for event emission).
    from repro.tcp.cc import build_controller

    return build_controller(spec.kind, **spec.param_dict())


def build(config: Any) -> Any:
    """The single config-first entry point: a frozen spec in, a live object out.

    Dispatches on the spec type -- :class:`SchedulerSpec`,
    :class:`CcSpec`, :class:`~repro.net.bandwidth.BandwidthSpec`, or any
    registered backend config from :mod:`repro.service.backends`.
    Always returns a fresh instance.

    Raises
    ------
    ValueError
        For a spec whose ``kind`` its registry does not resolve.
    TypeError
        For an object that is not a recognized construction spec.
    """
    if isinstance(config, SchedulerSpec):
        return _build_scheduler(config)
    if isinstance(config, CcSpec):
        return _build_controller(config)
    # The remaining spec families live in heavier modules; import them
    # only when such a config actually shows up.
    from repro.net.bandwidth import BandwidthSpec, make_bandwidth_process

    if isinstance(config, BandwidthSpec):
        return make_bandwidth_process(config)
    from repro.service import backends as _backends

    kind = getattr(config, "kind", None)
    if isinstance(kind, str) and kind in _backends.registered_backend_kinds():
        return _backends.build(config)
    raise TypeError(
        f"cannot build a {type(config).__name__}; expected SchedulerSpec, "
        f"CcSpec, BandwidthSpec, or a registered backend config"
    )
