"""The MPTCP default scheduler: smallest RTT first.

"The default path scheduler selects the subflow with the smallest RTT for
which there is available congestion window space for packet transmission"
(Section 2.1).  If that subflow is full it falls through to the next
smallest RTT, and so on; it never declines to send.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.analysis import events as _events
from repro.core.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.connection import MptcpConnection
    from repro.tcp.subflow import Subflow


class MinRttScheduler(Scheduler):
    """Default MPTCP scheduler (lowest-RTT-first)."""

    name = "minrtt"

    __slots__ = ()

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        self.decisions += 1
        available = self.available_subflows(conn)
        choice = self.fastest(available)
        if choice is None:
            self.waits += 1
        if _events.LOG is not None:
            _events.LOG.emit(_events.MinRttDecision(
                t=conn.sim.now,
                sched_uid=self.uid,
                chosen_sf=None if choice is None else choice.sf_id,
                available=tuple(
                    (sf.sf_id, sf.srtt_or_default()) for sf in available
                ),
            ))
        return choice
