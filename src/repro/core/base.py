"""Scheduler interface and shared helpers.

A scheduler instance belongs to exactly one connection (several keep
per-connection state such as ECF's ``waiting`` flag), is attached via
:meth:`Scheduler.attach`, and is consulted by
:meth:`repro.mptcp.connection.MptcpConnection.try_send` each time a segment
could be assigned.

Contract:

* :meth:`select` must return a subflow for which ``can_send()`` is true,
  or ``None`` meaning "send nothing now and wait for an ACK event".
* Returning ``None`` while *no* data is in flight anywhere would deadlock
  the connection; the provided schedulers never wait unless the subflow
  they are waiting for has segments in flight (so ACKs are coming).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.analysis import events as _events
from repro.obs import flight as _flight
from repro.perf import counters as _perf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.connection import MptcpConnection
    from repro.tcp.subflow import Subflow


class Scheduler:
    """Base class for MPTCP path schedulers."""

    name = "base"

    __slots__ = ("conn", "uid", "decisions", "waits")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("conn", "uid", "decisions", "waits")

    def __init__(self) -> None:
        self.conn: Optional["MptcpConnection"] = None
        self.uid = _events.next_uid()
        self.decisions = 0
        self.waits = 0
        if _perf.COLLECTOR is not None:
            _perf.COLLECTOR.adopt_scheduler(self)
        if _flight.COLLECTOR is not None:
            _flight.COLLECTOR.adopt_scheduler(self)

    def attach(self, conn: "MptcpConnection") -> None:
        """Bind this scheduler instance to its connection."""
        if self.conn is not None and self.conn is not conn:
            raise RuntimeError(
                f"scheduler {self.name!r} is already attached to another "
                "connection; create one scheduler per connection"
            )
        self.conn = conn

    # ------------------------------------------------------------------
    # Helpers shared by implementations
    # ------------------------------------------------------------------
    @staticmethod
    def available_subflows(conn: "MptcpConnection") -> List["Subflow"]:
        """Established subflows that can accept a new segment now."""
        return [sf for sf in conn.subflows if sf.can_send()]

    @staticmethod
    def established_subflows(conn: "MptcpConnection") -> List["Subflow"]:
        """Established subflows, regardless of window space."""
        return [sf for sf in conn.subflows if sf.established]

    @staticmethod
    def fastest(subflows: List["Subflow"]) -> Optional["Subflow"]:
        """Smallest-SRTT subflow (ties broken by subflow id).

        Subflows whose RTT estimate is non-finite (a path in an outage
        reports an ``inf`` transit estimate, and NaN would make ``min``
        ordering-dependent) are excluded; if no subflow has a finite
        estimate there is no meaningful "fastest" and None is returned.
        """
        usable = [sf for sf in subflows if math.isfinite(sf.srtt_or_default())]
        if not usable:
            return None
        return min(usable, key=lambda sf: (sf.srtt_or_default(), sf.sf_id))

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        """Choose the subflow for the next segment (or None to wait)."""
        raise NotImplementedError

    def duplicate_targets(
        self, conn: "MptcpConnection", chosen: "Subflow"
    ) -> List["Subflow"]:
        """Extra subflows that should carry a *copy* of the segment.

        Most schedulers never duplicate; the redundant scheduler overrides
        this to trade bandwidth for latency.  Every returned subflow must
        satisfy ``can_send()``.
        """
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
