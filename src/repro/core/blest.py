"""BLEST: blocking estimation-based scheduler (Ferlin et al., 2016).

BLEST targets *sender-side head-of-line blocking*: if the MPTCP
connection-level send window fills up with segments that are in flight on
a slow subflow, the sender cannot queue new data and the fast subflow
starves.  When only a slower subflow has CWND space, BLEST estimates how
many bytes the fast subflow could transmit during one slow-subflow RTT::

    rounds = RTT_s / RTT_f
    X = MSS * (CWND_f + (rounds - 1) / 2) * rounds      # with linear growth

and declines to use the slow subflow when that projected traffic would not
fit in the remaining send-window space alongside the slow transmission::

    lambda * X > send_window - (in-flight + 1 segment on the slow path)

``lambda`` starts at 1 and is increased slightly every time blocking is
observed anyway (the connection became window-limited), making the
estimate more conservative -- this mirrors the published feedback loop.

The contrast with ECF (Section 5.1): BLEST reasons about *send-window
space*, ECF about *completion time of the data still queued*.  When the
send window is ample but the flow is about to go idle (the streaming
ON-OFF pattern), BLEST happily uses the slow path; ECF does not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.connection import MptcpConnection
    from repro.tcp.subflow import Subflow

#: Additive lambda adjustment applied when blocking is observed (per the
#: BLEST paper's feedback update).
LAMBDA_STEP = 0.05
LAMBDA_MAX = 3.0


class BlestScheduler(Scheduler):
    """Blocking-estimation scheduler."""

    name = "blest"

    __slots__ = ("lambda_", "wait_decisions", "_last_limited_seen")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("lambda_", "wait_decisions", "_last_limited_seen")

    def __init__(self) -> None:
        super().__init__()
        self.lambda_ = 1.0
        self.wait_decisions = 0
        self._last_limited_seen = 0

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        self.decisions += 1
        self._update_lambda(conn)
        established = self.established_subflows(conn)
        fastest = self.fastest(established)
        if fastest is None:
            self.waits += 1
            return None
        if fastest.can_send():
            return fastest
        candidates = [sf for sf in established if sf is not fastest and sf.can_send()]
        second = self.fastest(candidates)
        if second is None:
            self.waits += 1
            return None
        if self._would_block(conn, fastest, second):
            self.wait_decisions += 1
            self.waits += 1
            return None
        return second

    def _would_block(
        self, conn: "MptcpConnection", fastest: "Subflow", slow: "Subflow"
    ) -> bool:
        rtt_f = max(fastest.srtt_or_default(), 1e-6)
        rtt_s = slow.srtt_or_default()
        rounds = max(1.0, rtt_s / rtt_f)
        projected_fast_bytes = conn.mss * (fastest.cwnd + (rounds - 1.0) / 2.0) * rounds
        slow_occupancy = (slow.outstanding_segments + 1) * conn.mss
        window = conn.effective_send_window
        return self.lambda_ * projected_fast_bytes > window - slow_occupancy

    def _update_lambda(self, conn: "MptcpConnection") -> None:
        """Grow lambda each time the connection was actually blocked."""
        limited_events = conn.reinjections
        if limited_events > self._last_limited_seen:
            self.lambda_ = min(LAMBDA_MAX, self.lambda_ + LAMBDA_STEP)
            self._last_limited_seen = limited_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlestScheduler(lambda={self.lambda_:.2f})"
