"""Scheduler registry: construct a fresh scheduler instance by name.

Schedulers carry per-connection state (ECF's hysteresis flag, DAPS's
schedule), so the registry always returns a *new* instance.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, FrozenSet

from repro.core.base import Scheduler
from repro.core.blest import BlestScheduler
from repro.core.daps import DapsScheduler
from repro.core.ecf import EcfScheduler
from repro.core.extras import (
    PrimaryOnlyScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
)
from repro.core.minrtt import MinRttScheduler

def _make_mpdash() -> Scheduler:
    # Imported lazily: apps.dash depends on core, not the reverse.
    from repro.apps.dash.mpdash import MpDashScheduler

    return MpDashScheduler()


def _make_fixture(name: str) -> Callable[..., Scheduler]:
    # Imported lazily: the fixtures live in repro.analysis, which would
    # otherwise cycle back into core at import time.
    def factory(**params: Any) -> Scheduler:
        from repro.analysis import fixtures

        cls = {
            "ecf-nowait": fixtures.NoWaitEcfScheduler,
            "ecf-noineq2": fixtures.NoSecondInequalityEcfScheduler,
            "ecf-invbeta": fixtures.LateHalvingEcfScheduler,
        }[name]
        return cls(**params)

    return factory


_FACTORIES: Dict[str, Callable[..., Scheduler]] = {
    "minrtt": MinRttScheduler,
    "default": MinRttScheduler,
    "ecf": EcfScheduler,
    "blest": BlestScheduler,
    "daps": DapsScheduler,
    "roundrobin": RoundRobinScheduler,
    "redundant": RedundantScheduler,
    "primary": PrimaryOnlyScheduler,
    "mpdash": _make_mpdash,
    # Seeded-violation fixtures for the checking layer (repro.analysis):
    # constructible by name for `repro check --scheduler ...`, but kept
    # out of SCHEDULER_NAMES so sweeps never enumerate them.
    "ecf-nowait": _make_fixture("ecf-nowait"),
    "ecf-noineq2": _make_fixture("ecf-noineq2"),
    "ecf-invbeta": _make_fixture("ecf-invbeta"),
}

#: Canonical user-facing scheduler names.  ("mpdash" additionally needs an
#: :class:`~repro.apps.dash.mpdash.MpDashPathManager` wired to the player;
#: the streaming runner does this automatically.)
SCHEDULER_NAMES = (
    "minrtt", "ecf", "blest", "daps", "roundrobin", "redundant", "primary",
    "mpdash",
)


def registered_schedulers() -> FrozenSet[str]:
    """Every name ``build(SchedulerSpec.of(name))`` resolves.

    Includes the seeded-violation fixture names; ``SCHEDULER_NAMES`` is
    the user-facing subset sweeps enumerate.
    """
    return frozenset(_FACTORIES)


def make_scheduler(name: str, **params: Any) -> Scheduler:
    """Build a new scheduler by name.

    .. deprecated:: 1.1
        Construct from a spec instead:
        ``build(SchedulerSpec.of(name, **params))``
        (:mod:`repro.core.spec`).  Specs are plain values, so they
        serialize into experiment specs and the campaign store; a bare
        ``(name, **params)`` call site does not.

    Raises
    ------
    ValueError
        For an unknown scheduler name.
    """
    warnings.warn(
        "make_scheduler(name, **params) is deprecated; use "
        "build(SchedulerSpec.of(name, **params)) from repro.core.spec",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.spec import SchedulerSpec, build

    return build(SchedulerSpec.of(name, **params))
