"""DAPS: delay-aware packet scheduler (Kuhn et al., ICC 2014).

DAPS builds a schedule that interleaves segments over the subflows in
proportion to their delay ratio so that they *arrive* in order: a subflow
with one tenth the RTT gets ten consecutive segments for every one sent on
the slow subflow.  As the paper under reproduction summarizes it, "DAPS
assigns traffic to each subflow inversely proportional to RTT".

Faithful to the original's weaknesses (and to the behaviour observed in
the paper's Section 5):

* the schedule is built from RTT/CWND snapshots and only refreshed when
  exhausted, so it reacts slowly to changing conditions ("DAPS strong
  dependency on the RTT ratio; an incorrect estimate ... results in
  unnecessary trials to inject traffic into the slow LTE subflow");
* it never declines to send: if the scheduled subflow has no window
  space, it sends on the other one rather than waiting, so it keeps the
  slow path busy even when that is counterproductive.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.core.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.connection import MptcpConnection
    from repro.tcp.subflow import Subflow


class DapsScheduler(Scheduler):
    """Delay-aware packet scheduling via a precomputed interleave."""

    name = "daps"

    __slots__ = ("_schedule", "schedules_built")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("_schedule", "schedules_built")

    def __init__(self) -> None:
        super().__init__()
        self._schedule: Deque[int] = deque()
        self.schedules_built = 0

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        self.decisions += 1
        available = self.available_subflows(conn)
        if not available:
            self.waits += 1
            return None
        established = self.established_subflows(conn)
        if len(established) == 1:
            return established[0] if established[0].can_send() else None
        if not self._schedule:
            self._build_schedule(conn, established)
        # Walk the schedule for a subflow that can send right now;
        # DAPS never waits, so fall back to any available subflow.
        for _ in range(len(self._schedule)):
            sf_id = self._schedule[0]
            subflow = conn.subflows[sf_id]
            if subflow.can_send():
                self._schedule.popleft()
                return subflow
            self._schedule.rotate(-1)
        return min(available, key=lambda sf: sf.sf_id)

    def _build_schedule(self, conn: "MptcpConnection", established: list) -> None:
        """Snapshot RTTs/CWNDs and lay out one interleaved burst.

        Each subflow contributes its full CWND of slots; slots are ordered
        by projected arrival time assuming back-to-back transmission, which
        yields the inverse-RTT interleave DAPS is known for.
        """
        slots = []
        for sf in established:
            rtt = sf.srtt_or_default()
            cwnd = max(1, int(sf.cwnd))
            for slot_index in range(cwnd):
                arrival = rtt / 2.0 + slot_index * rtt / cwnd
                slots.append((arrival, sf.sf_id, slot_index))
        slots.sort()
        self._schedule = deque(sf_id for _, sf_id, _ in slots)
        self.schedules_built += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DapsScheduler(pending_slots={len(self._schedule)})"
