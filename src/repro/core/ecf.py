"""ECF: Earliest Completion First (Section 4, Algorithm 1).

ECF asks a single question when the fastest subflow is momentarily full:
*will sending the remaining data on a slower subflow finish later than
just waiting for the fast one?*  It answers using everything the sender
knows -- RTT estimates, congestion windows, and the amount of data still
queued in the connection-level send buffer (``k``).

With ``x_f``/``x_s`` the fastest and candidate subflows, ``n = 1 +
k/CWND_f`` the number of fast-path rounds needed to move ``k``, and
``delta = max(sigma_f, sigma_s)`` a variability margin, ECF waits for the
fast subflow iff both::

    n * RTT_f < (1 + waiting * beta) * (RTT_s + delta)        (worth waiting)
    (k / CWND_s) * RTT_s >= 2 * RTT_f + delta                 (slow path really slower)

The ``waiting`` flag adds hysteresis (``beta = 0.25`` in the paper's
experiments) so the decision does not flap between consecutive segments.

The payoff, per the paper: the fast subflow never sits idle waiting for a
slow-path tail, so its congestion window is not reset by the idle-restart
rule, and consecutive downloads (DASH chunks, Web objects) start with a
hot window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.analysis import events as _events
from repro.core.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.connection import MptcpConnection
    from repro.tcp.subflow import Subflow

#: Paper's hysteresis constant ("set to 0.25 throughout our experiments").
DEFAULT_BETA = 0.25


@dataclass(frozen=True)
class EcfInputs:
    """Everything Algorithm 1 reads for one wait-or-send decision.

    Gathered by :meth:`EcfScheduler._decision_inputs` and passed to
    :meth:`EcfScheduler._evaluate`; also what gets logged with every
    decision so the reference oracle in :mod:`repro.analysis.reference`
    can replay it offline.
    """

    k_segments: float
    rtt_f: float
    rtt_s: float
    cwnd_f: float
    cwnd_s: float
    delta: float
    n_rounds: float
    threshold: float


class EcfScheduler(Scheduler):
    """Earliest Completion First.

    Parameters
    ----------
    beta:
        Hysteresis factor applied to the waiting threshold once the
        scheduler is already in the waiting state.
    use_second_inequality:
        Ablation hook: when False, the additional
        ``k/CWND_s * RTT_s >= 2 RTT_f + delta`` check is skipped and the
        first inequality alone decides (DESIGN.md Section 5).
    """

    name = "ecf"

    __slots__ = (
        "beta",
        "use_second_inequality",
        "waiting",
        "wait_decisions",
        "send_on_slow_decisions",
        "ecf_decisions",
        "forced_decisions",
    )

    #: The snapshot contract: the fields this class gives birth to (the
    #: checkpoint/fork refactor codes against this; RPR915 keeps it honest).
    STATE_FIELDS = (
        "beta",
        "use_second_inequality",
        "waiting",
        "wait_decisions",
        "send_on_slow_decisions",
        "ecf_decisions",
        "forced_decisions",
    )

    def __init__(self, beta: float = DEFAULT_BETA, use_second_inequality: bool = True) -> None:
        super().__init__()
        # NaN compares false against everything, so a plain `beta < 0`
        # check lets it through and silently poisons both inequalities.
        if not math.isfinite(beta) or beta < 0:
            raise ValueError(f"beta must be finite and non-negative, got {beta!r}")
        self.beta = beta
        self.use_second_inequality = use_second_inequality
        self.waiting = False
        self.wait_decisions = 0
        self.send_on_slow_decisions = 0
        #: Monotone count of Algorithm 1 evaluations -- the index the
        #: twin-run driver keys its forced-choice overrides on.
        self.ecf_decisions = 0
        #: Decision index -> "wait" | "slow".  A forked world forces the
        #: counterfactual choice here; the hysteresis update still runs
        #: on the final (forced) value, so forcing the choice the
        #: scheduler would have made anyway replays byte-identically.
        self.forced_decisions: Dict[int, str] = {}

    def force_decision(self, index: int, choice: str) -> None:
        """Override Algorithm 1's outcome for the ``index``-th decision."""
        if choice not in ("wait", "slow"):
            raise ValueError(f"choice must be 'wait' or 'slow', got {choice!r}")
        self.forced_decisions[index] = choice

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        self.decisions += 1
        established = self.established_subflows(conn)
        fastest = self.fastest(established)
        if fastest is None:
            self.waits += 1
            return None
        if fastest.can_send():
            return fastest

        # Fastest subflow is full: consider the default scheduler's pick
        # among the remaining available subflows.
        candidates = [sf for sf in established if sf is not fastest and sf.can_send()]
        second = self.fastest(candidates)
        if second is None:
            self.waits += 1
            return None

        if self._should_wait_for_fast(conn, fastest, second):
            self.wait_decisions += 1
            self.waits += 1
            return None
        self.send_on_slow_decisions += 1
        return second

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _should_wait_for_fast(
        self, conn: "MptcpConnection", fastest: "Subflow", second: "Subflow"
    ) -> bool:
        """One wait-or-send decision: gather inputs, evaluate, log.

        The split into :meth:`_decision_inputs` / :meth:`_evaluate` keeps
        the event-log record and the hysteresis state machine here, in
        one place, so variants overriding :meth:`_evaluate` (ablations,
        the deliberately broken fixtures in
        :mod:`repro.analysis.fixtures`) stay fully observable to the
        differential oracle.
        """
        waiting_before = self.waiting
        index = self.ecf_decisions
        self.ecf_decisions = index + 1
        inputs = self._decision_inputs(conn, fastest, second)
        wait = self._evaluate(inputs)
        forced = self.forced_decisions.get(index) if self.forced_decisions else None
        if forced is not None:
            wait = forced == "wait"
        if wait:
            self.waiting = True
        elif not (inputs.n_rounds * inputs.rtt_f < inputs.threshold):
            # Hysteresis clears only when inequality 1 itself fails; a
            # send forced by inequality 2 leaves the waiting state latched.
            self.waiting = False
        if _events.LOG is not None:
            _events.LOG.emit(_events.EcfDecision(
                t=conn.sim.now,
                sched_uid=self.uid,
                decision="wait" if wait else "slow",
                fastest_uid=fastest.uid,
                fastest_sf=fastest.sf_id,
                second_uid=second.uid,
                second_sf=second.sf_id,
                k_segments=inputs.k_segments,
                cwnd_f=inputs.cwnd_f,
                cwnd_s=inputs.cwnd_s,
                rtt_f=inputs.rtt_f,
                rtt_s=inputs.rtt_s,
                delta=inputs.delta,
                beta=self.beta,
                use_second_inequality=self.use_second_inequality,
                waiting_before=waiting_before,
                waiting_after=self.waiting,
                n_rounds=inputs.n_rounds,
                threshold=inputs.threshold,
                forced=forced is not None,
            ))
        return wait

    def _decision_inputs(
        self, conn: "MptcpConnection", fastest: "Subflow", second: "Subflow"
    ) -> EcfInputs:
        """Snapshot the quantities both inequalities read.

        ``k/CWND`` counts *transmission rounds*, each costing one RTT, so
        it is taken as a whole number of rounds (ceil).  This matches the
        paper's prose -- waiting for the fast subflow costs "at least
        2RTT_f for transfer", i.e. one round of waiting plus >= 1 round of
        sending -- and is required for the Section 3.2 worked example
        (k = 1 leftover packet) to come out as "wait".
        """
        k_segments = conn.unassigned_bytes / conn.mss
        rtt_f = fastest.srtt_or_default()
        rtt_s = second.srtt_or_default()
        cwnd_f = max(fastest.cwnd, 1.0)
        cwnd_s = max(second.cwnd, 1.0)
        delta = max(fastest.rtt.sigma, second.rtt.sigma)
        n = 1.0 + math.ceil(k_segments / cwnd_f)
        threshold = (1.0 + (self.beta if self.waiting else 0.0)) * (rtt_s + delta)
        return EcfInputs(
            k_segments=k_segments,
            rtt_f=rtt_f,
            rtt_s=rtt_s,
            cwnd_f=cwnd_f,
            cwnd_s=cwnd_s,
            delta=delta,
            n_rounds=n,
            threshold=threshold,
        )

    def _evaluate(self, inputs: EcfInputs) -> bool:
        """Algorithm 1's two inequalities, stateless.  True means wait.

        Non-finite RTT estimates (a path in an outage reports an ``inf``
        transit estimate) are resolved before the inequalities: both
        would otherwise mix ``inf`` into comparisons where a ``0 * inf``
        can surface NaN and decide arbitrarily.  A dead fast path is not
        worth waiting for; a dead slow path is not worth sending on.
        """
        if not math.isfinite(inputs.rtt_f):
            return False
        if not math.isfinite(inputs.rtt_s):
            return True
        if inputs.n_rounds * inputs.rtt_f < inputs.threshold:
            if not self.use_second_inequality:
                return True
            return (
                math.ceil(inputs.k_segments / inputs.cwnd_s) * inputs.rtt_s
                >= 2.0 * inputs.rtt_f + inputs.delta
            )
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EcfScheduler(beta={self.beta}, waiting={self.waiting})"
