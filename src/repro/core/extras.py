"""Additional baseline schedulers not evaluated in the paper.

These are useful for calibration and ablation: ``roundrobin`` exposes the
cost of ignoring RTT entirely, ``redundant`` trades goodput for latency by
duplicating segments across paths (the policy the upstream MPTCP tree
later shipped under the same name), and ``primary`` turns the connection
into plain single-path TCP on the primary interface (what a non-MPTCP
client would get).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.connection import MptcpConnection
    from repro.tcp.subflow import Subflow


class RoundRobinScheduler(Scheduler):
    """Cycle over available subflows irrespective of RTT."""

    name = "roundrobin"

    __slots__ = ("_next",)

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("_next",)

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        self.decisions += 1
        n = len(conn.subflows)
        for offset in range(n):
            subflow = conn.subflows[(self._next + offset) % n]
            if subflow.can_send():
                self._next = (subflow.sf_id + 1) % n
                return subflow
        self.waits += 1
        return None


class RedundantScheduler(Scheduler):
    """Duplicate every segment on every open subflow.

    The classic latency-over-bandwidth scheduler (adopted later by the
    upstream MPTCP tree as ``redundant``): each segment rides the
    lowest-RTT open subflow *and* a copy rides every other open subflow,
    so delivery latency is the minimum across paths at the cost of
    goodput.  The receiver's DSN-level dedup absorbs the copies.
    """

    name = "redundant"

    __slots__ = ()

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        """New data rides only the lowest-RTT subflow.

        Slower subflows never receive fresh data of their own -- they
        exist to carry copies -- so the connection's progress is pinned to
        the fastest path, which is the point of the policy.
        """
        self.decisions += 1
        fastest = self.fastest(self.established_subflows(conn))
        if fastest is not None and fastest.can_send():
            return fastest
        self.waits += 1
        return None

    def duplicate_targets(
        self, conn: "MptcpConnection", chosen: "Subflow"
    ) -> List["Subflow"]:
        return [
            sf for sf in conn.subflows
            if sf is not chosen and sf.can_send()
        ]


class PrimaryOnlyScheduler(Scheduler):
    """Single-path TCP: only the primary subflow ever carries data."""

    name = "primary"

    __slots__ = ()

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        self.decisions += 1
        primary = conn.subflows[0]
        if primary.can_send():
            return primary
        self.waits += 1
        return None
