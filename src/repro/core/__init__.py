"""MPTCP path schedulers -- the paper's contribution and its baselines.

Every scheduler implements :class:`~repro.core.base.Scheduler`: given the
connection state, return the subflow that should carry the next segment, or
``None`` to wait for a better subflow to free up.

Provided schedulers (Section 5.1 of the paper):

* ``minrtt`` -- the MPTCP **default**: smallest-RTT subflow with CWND space.
* ``ecf`` -- **Earliest Completion First** (Algorithm 1), the contribution.
* ``blest`` -- BLEST (Ferlin et al., IFIP Networking 2016).
* ``daps`` -- DAPS (Kuhn et al., ICC 2014).
* ``roundrobin`` -- cycles over available subflows (extra baseline).
* ``primary`` -- single-path TCP on the primary interface (extra baseline).
"""

from repro.core.base import Scheduler
from repro.core.minrtt import MinRttScheduler
from repro.core.ecf import EcfScheduler
from repro.core.blest import BlestScheduler
from repro.core.daps import DapsScheduler
from repro.core.extras import (
    PrimaryOnlyScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
)
from repro.core.registry import SCHEDULER_NAMES, make_scheduler, registered_schedulers
from repro.core.spec import CcSpec, SchedulerSpec, build

__all__ = [
    "Scheduler",
    "MinRttScheduler",
    "EcfScheduler",
    "BlestScheduler",
    "DapsScheduler",
    "RoundRobinScheduler",
    "RedundantScheduler",
    "PrimaryOnlyScheduler",
    "SchedulerSpec",
    "CcSpec",
    "build",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "registered_schedulers",
]
