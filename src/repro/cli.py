"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro.cli download --scheduler ecf --size 512k --wifi 1 --lte 10
    python -m repro.cli streaming --scheduler minrtt ecf --wifi 0.3 --lte 8.6
    python -m repro.cli web --scheduler ecf --wifi 1 --lte 10
    python -m repro.cli grid --scheduler ecf --video 30 --jobs 8
    python -m repro.cli wild --runs 5 --jobs 4 --cache-dir .repro-cache

Sweep commands (``grid``, ``streaming``, ``wild``) accept ``--jobs N`` to
fan independent runs out over N worker processes, ``--cache-dir DIR`` to
memoize finished runs on disk (a re-run executes only missing cells), and
``--no-cache`` to ignore a configured cache.

Every experiment command accepts ``--sanitize`` to enable the runtime
protocol sanitizer (:mod:`repro.analysis.sanitize`) and ``--check`` to
wrap each run in trace-level record-and-check
(:mod:`repro.analysis.check`); ``lint`` runs the simulator-specific
static checks (:mod:`repro.analysis.lint`) and ``check`` runs the full
conformance matrix -- property catalog, differential oracles, and the
event-order race detector::

    python -m repro.cli lint              # lint the installed repro package
    python -m repro.cli lint src tests    # lint explicit paths
    python -m repro.cli streaming --sanitize --scheduler ecf
    python -m repro.cli check             # full conformance matrix
    python -m repro.cli check --scenario dash --scheduler ecf-nowait  # must fail
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.fixtures import FIXTURE_SCHEDULERS
from repro.apps.bulk import run_bulk_download
from repro.apps.dash.media import VideoManifest
from repro.core.registry import SCHEDULER_NAMES
from repro.experiments.exec import ExperimentExecutor
from repro.experiments.grid import (
    PAPER_BANDWIDTH_GRID_MBPS,
    bitrate_ratio_matrix,
    format_matrix,
    streaming_grid,
)
from repro.experiments.ideal import ideal_average_bitrate
from repro.experiments.runner import StreamingRunConfig
from repro.experiments.wild import run_wild_streaming
from repro.metrics.stats import percentile
from repro.net.profiles import lte_config, wifi_config
from repro.workloads.web import run_web_browsing


def parse_size(text: str) -> int:
    """Parse '512k' / '2m' / '1048576' into bytes."""
    text = text.strip().lower()
    multiplier = 1
    if text.endswith("k"):
        multiplier, text = 1024, text[:-1]
    elif text.endswith("m"):
        multiplier, text = 1024 * 1024, text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"unparseable size: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError("size must be positive")
    return int(value * multiplier)


def _scheduler_choices(fixtures: bool = False) -> tuple:
    """The ``--scheduler`` choice set, everywhere.

    Fixture schedulers (seeded-violation variants like ``ecf-nowait``)
    are opt-in per command; every parser gates them through this one
    helper so they are offered -- or hidden -- identically.
    """
    return SCHEDULER_NAMES + FIXTURE_SCHEDULERS if fixtures else SCHEDULER_NAMES


def _add_common(
    parser: argparse.ArgumentParser,
    multi_sched: bool = True,
    fixtures: bool = False,
) -> None:
    nargs = "+" if multi_sched else None
    choices = _scheduler_choices(fixtures)
    help_text = "scheduler(s) to run"
    if fixtures:
        help_text += (
            " (fixture names like ecf-nowait run the seeded-violation "
            "variants, e.g. to exercise --check / --obs postmortems)"
        )
    parser.add_argument(
        "--scheduler", nargs=nargs, default=["minrtt", "ecf"] if multi_sched else "ecf",
        choices=choices, help=help_text,
    )
    parser.add_argument("--wifi", type=float, default=1.0, help="WiFi Mbps")
    parser.add_argument("--lte", type=float, default=8.6, help="LTE Mbps")
    parser.add_argument("--seed", type=int, default=0)
    _add_sanitize_flag(parser)


def _add_sanitize_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="enable runtime protocol-invariant checks (REPRO_SANITIZE=1)",
    )


def _add_check_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check", action="store_true",
        help="record an event log per run and fail on temporal property "
        "violations (REPRO_CHECK=1; see repro.analysis.check)",
    )


def _add_perf_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--perf", action="store_true",
        help="attach a per-run perf record (counters + wall time) to every "
        "result (REPRO_PERF=1; see repro.perf)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs", action="store_true",
        help="enable the flight recorder: failed runs leave a postmortem "
        "bundle and sweeps write a run journal (REPRO_OBS=1; see repro.obs)",
    )
    parser.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="where postmortem bundles and the run journal land "
        "(REPRO_OBS_DIR; default: .repro-obs); implies --obs",
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for independent runs (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache; re-runs execute only missing cells",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (run everything fresh, store nothing)",
    )
    parser.add_argument(
        "--campaign", default=None, metavar="NAME",
        help="run the sweep as a durable campaign (jobs tracked in "
        "--campaign-db, resumable with the same command after a kill)",
    )
    parser.add_argument(
        "--campaign-db", default="campaigns.db", metavar="FILE",
        help="SQLite campaign store used by --campaign (default: campaigns.db)",
    )


def _campaign_runner(
    store, name: str, jobs: int, cache_dir, journal=None,
    backend=None, timeout_s=None, retries: int = 1, max_attempts: int = 3,
):
    """One place that maps CLI knobs onto a CampaignRunner."""
    from pathlib import Path

    from repro.service import CampaignRunner, InlineBackendConfig, PoolBackendConfig

    if backend is None:
        if jobs == 1:
            backend = InlineBackendConfig(timeout_s=timeout_s, retries=retries)
        else:
            backend = PoolBackendConfig(jobs=jobs, timeout_s=timeout_s, retries=retries)
    if journal is None:
        journal = Path(str(store.path)).with_suffix(".journal.jsonl")
    return CampaignRunner(
        store,
        name,
        backend=backend,
        cache_dir=cache_dir if cache_dir is not None else ".repro-cache",
        journal=journal,
        max_attempts=max_attempts,
        progress=sys.stderr.isatty(),
    )


def _executor_from_args(args):
    """Build the sweep executor (or campaign runner) the common flags describe.

    With ``--campaign NAME`` the sweep routes through the campaign
    service: jobs land in the SQLite store, results in the cache, and
    killing the process mid-sweep loses nothing -- re-running the same
    command resumes from where it stopped.
    """
    if getattr(args, "campaign", None):
        from repro.service import CampaignStore

        return _campaign_runner(
            CampaignStore(args.campaign_db),
            args.campaign,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
    return ExperimentExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=sys.stderr.isatty(),
    )


def cmd_download(args) -> int:
    paths = (wifi_config(args.wifi), lte_config(args.lte))
    print(f"{'scheduler':<10}{'time (s)':>10}{'throughput':>13}")
    for name in args.scheduler:
        result = run_bulk_download(name, paths, args.size, seed=args.seed)
        print(
            f"{name:<10}{result.completion_time:>10.3f}"
            f"{result.throughput_bps / 1e6:>11.2f}Mb"
        )
    return 0


def cmd_streaming(args) -> int:
    ideal = ideal_average_bitrate([args.wifi * 1e6, args.lte * 1e6], VideoManifest())
    print(f"ideal bit rate: {ideal / 1e6:.2f} Mbps")
    print(f"{'scheduler':<10}{'bitrate':>10}{'ratio':>8}{'IW resets':>11}")
    specs = [
        StreamingRunConfig(
            scheduler=name, wifi_mbps=args.wifi, lte_mbps=args.lte,
            video_duration=args.video, seed=args.seed,
        )
        for name in args.scheduler
    ]
    results = _executor_from_args(args).run(specs)
    for name, result in zip(args.scheduler, results):
        bitrate = result.metrics.steady_average_bitrate_bps
        print(
            f"{name:<10}{bitrate / 1e6:>9.2f}M{bitrate / ideal:>8.2f}"
            f"{sum(result.iw_resets_by_interface.values()):>11d}"
        )
    return 0


def cmd_web(args) -> int:
    paths = (wifi_config(args.wifi), lte_config(args.lte))
    print(f"{'scheduler':<10}{'mean ct':>10}{'p95 ct':>9}{'page load':>11}")
    for name in args.scheduler:
        result = run_web_browsing(name, paths, seed=args.seed)
        cts = result.object_completion_times
        print(
            f"{name:<10}{result.mean_completion_time:>9.3f}s"
            f"{percentile(cts, 95):>8.2f}s{result.page_load_time:>10.2f}s"
        )
    return 0


def cmd_twin(args) -> int:
    import json

    from repro.apps.bulk import BulkDownloadSpec
    from repro.experiments import twin
    from repro.obs.timeline import twin_timeline_document

    cells = [(w, l) for w in args.wifi for l in args.lte]
    reports = []
    failures = 0
    print(
        f"{'wifi':>6}{'lte':>6}{'decisions':>11}{'replayed':>10}"
        f"{'mean regret':>13}{'worst regret':>14}"
    )
    for wifi, lte in cells:
        spec = BulkDownloadSpec(
            scheduler="ecf",
            path_configs=(wifi_config(wifi), lte_config(lte)),
            size=args.size,
            seed=args.seed,
            timeout=args.timeout,
        )
        if args.verify:
            check = twin.verify_fork_equivalence(
                spec, checkpoint_every=args.checkpoint_every
            )
            if not check["ok"]:
                failures += 1
                print(
                    f"FORK-EQUIVALENCE FAILED wifi={wifi} lte={lte}: "
                    f"{check['baseline_digest']} != {check['replay_digest']}",
                    file=sys.stderr,
                )
            reports.append(check)
            print(
                f"{wifi:>6.1f}{lte:>6.1f}{check['decisions_total']:>11d}"
                f"{'':>10}{'verify ' + ('ok' if check['ok'] else 'FAIL'):>27}"
            )
            continue
        report = twin.twin_report(
            spec,
            checkpoint_every=args.checkpoint_every,
            max_decisions=args.max_decisions,
        )
        reports.append(report)
        deltas = [r["completion_delta"] for r in report["regret"]]
        mean = sum(deltas) / len(deltas) if deltas else 0.0
        # Regret of the counterfactual: negative means flipping that
        # decision would have *finished sooner* than what ECF chose.
        worst = min(deltas, default=0.0)
        print(
            f"{wifi:>6.1f}{lte:>6.1f}{report['decisions_total']:>11d}"
            f"{report['decisions_replayed']:>10d}{mean:>+12.4f}s{worst:>+13.4f}s"
        )
        if args.trace_out:
            trace_path = Path(args.trace_out)
            if len(cells) > 1:
                trace_path = trace_path.with_name(
                    f"{trace_path.stem}-w{wifi:g}-l{lte:g}{trace_path.suffix}"
                )
            trace_path.write_text(json.dumps(twin_timeline_document(report)))
            print(f"wrote {trace_path}")
    if args.output:
        Path(args.output).write_text(
            json.dumps({"kind": "twin_grid", "cells": reports},
                       indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    return 1 if failures else 0


def cmd_grid(args) -> int:
    base = StreamingRunConfig(
        scheduler=args.scheduler, video_duration=args.video, seed=args.seed
    )
    grid = streaming_grid(base, executor=_executor_from_args(args))
    ratios = bitrate_ratio_matrix(grid)
    print(f"measured/ideal bit rate, scheduler={args.scheduler}")
    print(format_matrix(ratios, PAPER_BANDWIDTH_GRID_MBPS, PAPER_BANDWIDTH_GRID_MBPS))
    return 0


def cmd_report(args) -> int:
    from pathlib import Path

    from repro.experiments.report import collate_report, default_output_dir

    text = collate_report(default_output_dir())
    if args.output == "-":
        print(text)
    else:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    return 0


def _changed_files() -> set:
    """Paths touched vs HEAD (staged, unstaged, and untracked)."""
    import subprocess

    changed = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            changed.update(line for line in proc.stdout.splitlines() if line)
    return changed


def cmd_lint(args) -> int:
    from repro.analysis.baseline import (
        DEFAULT_BASELINE_NAME,
        load_baseline,
        make_baseline,
        save_baseline,
    )
    from repro.analysis.lint import RULES, default_lint_root, run_lint

    if args.list_rules:
        for code, (summary, fixit) in sorted(RULES.items()):
            print(f"{code}  {summary}\n        fix: {fixit}")
        return 0
    paths = args.paths or [default_lint_root()]

    only_paths = None
    if args.changed:
        # git diff reports deleted/renamed-away paths too; a vanished
        # file cannot carry findings, so drop it rather than raise.
        only_paths = {
            p for p in _changed_files() if p.endswith(".py") and Path(p).is_file()
        }
        if not only_paths:
            print("lint: no changed python files", file=sys.stderr)
            return 0

    baseline_path = args.baseline
    baseline = None
    if baseline_path is not None and not args.update_baseline:
        baseline = load_baseline(baseline_path)

    cache_path = None if args.no_cache else Path(args.cache)
    run = run_lint(
        paths,
        select=args.select,
        cache_path=cache_path,
        baseline=baseline,
        only_paths=only_paths,
    )

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        # Re-snapshotting must not erase curated reasons: carry over the
        # reason of every fingerprint that survives into the new baseline.
        reasons = {}
        if Path(target).is_file():
            try:
                previous = load_baseline(target)
            except (ValueError, OSError):
                previous = {}
            reasons = {
                key: entry["reason"]
                for key, entry in previous.get("findings", {}).items()
                if entry.get("reason")
            }
        save_baseline(make_baseline(run.all_violations, reasons), target)
        print(
            f"lint: wrote {len(run.all_violations)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    if args.sarif is not None:
        import json as _json

        from repro.analysis.sarif import to_sarif

        document = _json.dumps(
            to_sarif(run.violations, RULES), indent=2, sort_keys=True
        )
        if args.sarif == "-":
            print(document)
        else:
            Path(args.sarif).write_text(document + "\n")

    for violation in run.violations:
        print(violation.format())
    stats = run.stats
    summary = (
        f"lint: {stats.files} file(s), {stats.parsed} parsed, "
        f"{stats.reused} cached"
    )
    if run.suppressed:
        summary += f", {run.suppressed} baselined"
    print(summary, file=sys.stderr)
    if run.violations:
        print(f"{len(run.violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_state(args) -> int:
    from repro.analysis.lint import default_lint_root, run_lint
    from repro.analysis.state import build_state_model, render_state_model

    paths = args.paths or [default_lint_root()]
    cache_path = None if args.no_cache else Path(args.cache)
    run = run_lint(paths, cache_path=cache_path)
    document = render_state_model(build_state_model(run.project))
    if args.check is not None:
        committed = Path(args.check)
        current = committed.read_text() if committed.is_file() else None
        if current != document:
            print(
                f"state: {args.check} is stale; regenerate with "
                f"'python -m repro.cli state -o {args.check}'",
                file=sys.stderr,
            )
            return 1
        print(f"state: {args.check} is up to date", file=sys.stderr)
        return 0
    if args.output is None or args.output == "-":
        print(document, end="")
    else:
        Path(args.output).write_text(document)
        print(f"state: wrote {args.output}", file=sys.stderr)
    return 0


#: Scenarios `repro check` can run the property catalog over.  The race
#: detector only covers the single-connection ones: web's six connections
#: share links, so same-instant queue arrivals are *semantic* ties that
#: legitimately serve in either order.
CHECK_SCENARIOS = ("dash", "bulk", "web")
RACE_SCENARIOS = ("dash", "bulk")


def _check_scenario(name: str, scheduler: str, args):
    """(runner, spec) for one cell of the check matrix."""
    from repro.apps.bulk import BulkDownloadSpec, run_bulk
    from repro.workloads.web import WebBrowsingSpec, run_web

    paths = (wifi_config(args.wifi), lte_config(args.lte))
    if name == "dash":
        from repro.experiments.runner import run_streaming

        return run_streaming, StreamingRunConfig(
            scheduler=scheduler, wifi_mbps=args.wifi, lte_mbps=args.lte,
            video_duration=args.video, seed=args.seed,
        )
    if name == "bulk":
        return run_bulk, BulkDownloadSpec(
            scheduler=scheduler, path_configs=paths, size=args.size, seed=args.seed,
        )
    if name == "web":
        return run_web, WebBrowsingSpec(
            scheduler=scheduler, path_configs=paths, seed=args.seed,
        )
    raise ValueError(f"unknown check scenario {name!r}")


def cmd_check(args) -> int:
    from repro.analysis import check as _check
    from repro.analysis.races import race_check

    failures = 0
    for scenario in args.scenario:
        for scheduler in args.scheduler:
            runner, spec = _check_scenario(scenario, scheduler, args)
            label = f"{scenario}/{scheduler}"
            try:
                _, report = _check.run_with_checks(runner, spec)
            except _check.CheckError as exc:
                failures += 1
                print(f"{label:<22} FAIL")
                for line in str(exc).splitlines():
                    print(f"  {line}")
            else:
                print(
                    f"{label:<22} ok    "
                    f"({len(report.properties_checked)} properties, "
                    f"{report.events_seen} events)"
                )
    if not args.skip_races:
        for scenario in args.scenario:
            if scenario not in RACE_SCENARIOS:
                continue
            for scheduler in args.scheduler:
                runner, spec = _check_scenario(scenario, scheduler, args)
                label = f"races:{scenario}/{scheduler}"
                report = race_check(runner, spec, orders=args.orders)
                if report.ok:
                    print(f"{label:<22} ok    ({report.format()})")
                else:
                    failures += 1
                    print(f"{label:<22} FAIL")
                    for line in report.format().splitlines():
                        print(f"  {line}")
    if failures:
        print(f"{failures} check(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_trace_export(args) -> int:
    import json

    from repro.obs import timeline

    source = timeline.load_export_source(args.source)
    if args.format == "perfetto":
        document = timeline.timeline_document(source["events"], source["traces"])
        if args.output:
            timeline.write_timeline(document, args.output)
            print(f"wrote {args.output} ({len(document['traceEvents'])} trace events)")
        else:
            print(json.dumps(document))
        return 0
    if args.format == "jsonl":
        text = timeline.to_jsonl(source["events"])
    else:  # prom
        perf = source.get("perf") or {}
        if isinstance(perf.get("counters"), dict):
            # PerfRecord shape (results): flatten the nested snapshot in
            # with the top-level wall/sim figures.
            flat = {k: v for k, v in perf.items() if not isinstance(v, dict)}
            flat.update(perf["counters"])
            perf = flat
        text = timeline.prometheus_text(perf)
    if args.output:
        from pathlib import Path

        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_trace_validate(args) -> int:
    import json
    from pathlib import Path

    from repro.obs import timeline

    document = json.loads(Path(args.document).read_text())
    problems = timeline.validate_trace_events(
        document,
        min_subflow_tracks=args.min_subflow_tracks,
        require_ecf_waits=args.require_ecf_waits,
    )
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"{args.document}: valid trace-event document "
        f"({len(document.get('traceEvents', []))} events)"
    )
    return 0


def cmd_bench(args) -> int:
    import json
    from pathlib import Path

    from repro.perf.bench import (
        WORKLOADS,
        compare,
        current_rev,
        report_to_dict,
        run_workload,
    )

    names = args.workload or list(WORKLOADS)
    records = {}
    print(f"{'workload':<14}{'events':>9}{'sim s':>9}{'wall s':>9}{'events/s':>13}")

    def run_matrix() -> None:
        for name in names:
            record = run_workload(name, scale=args.scale, repeat=args.repeat)
            records[name] = record
            print(
                f"{name:<14}{record.events:>9d}{record.sim_s:>9.1f}"
                f"{record.wall_s:>9.3f}{record.events_per_wall_s:>13,.0f}"
            )

    if args.profile:
        from repro.perf.profiler import profiling

        with profiling() as prof:
            run_matrix()
        profile_path = Path(args.profile)
        if profile_path.parent != Path("."):
            profile_path.parent.mkdir(parents=True, exist_ok=True)
        profile_path.write_text(prof.collapsed())
        summary = prof.report()
        print(
            f"wrote {profile_path} "
            f"({len(summary['components'])} components, "
            f"{summary['runs']} run(s) profiled)"
        )
    else:
        run_matrix()
    rev = current_rev()
    report = report_to_dict(records, rev, args.scale)
    output = Path(args.output) if args.output else Path(f"BENCH_{rev}.json")
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        complaints = compare(report, baseline, tolerance=args.tolerance)
        if complaints:
            for complaint in complaints:
                print(f"REGRESSION {complaint}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} (tolerance {args.tolerance:.0%})")
    return 0


def cmd_wild(args) -> int:
    runs = run_wild_streaming(
        runs=args.runs, video_duration=args.video,
        executor=_executor_from_args(args),
    )
    print(f"{'run':<5}{'wifi rtt':>10}{'default':>10}{'ecf':>8}")
    for run in runs:
        print(
            f"{run.run_index:<5}{run.wifi_config.one_way_delay * 2000:>8.0f}ms"
            f"{run.throughput_mbps('minrtt'):>9.2f}M"
            f"{run.throughput_mbps('ecf'):>7.2f}M"
        )
    return 0


def _campaign_sweep_specs(args) -> List:
    """Shard the requested sweep into its independent job specs."""
    from repro.experiments.grid import (
        PAPER_WGET_GRID_MBPS,
        streaming_grid_specs,
        wget_matrix_specs,
    )
    from repro.experiments.wild import WildStreamingSpec, wild_streaming_configs

    if args.sweep == "grid":
        wifi = args.wifi_grid or list(PAPER_BANDWIDTH_GRID_MBPS)
        lte = args.lte_grid or list(PAPER_BANDWIDTH_GRID_MBPS)
        specs: List = []
        for name in args.scheduler:
            base = StreamingRunConfig(
                scheduler=name, video_duration=args.video, seed=args.seed
            )
            specs.extend(
                spec
                for _, spec in streaming_grid_specs(base, wifi, lte, args.runs_per_cell)
            )
        return specs
    if args.sweep == "wget":
        wifi = args.wifi_grid or list(PAPER_WGET_GRID_MBPS)
        lte = args.lte_grid or list(PAPER_WGET_GRID_MBPS)
        return [
            spec
            for _, spec in wget_matrix_specs(
                args.scheduler, args.size, wifi, lte, args.seed
            )
        ]
    if args.sweep == "wild":
        return wild_streaming_configs(
            WildStreamingSpec(
                schedulers=tuple(args.scheduler),
                runs=args.runs,
                video_duration=args.video,
                base_seed=args.seed,
            )
        )
    raise ValueError(f"unknown sweep {args.sweep!r}")


def _print_campaign_counts(name: str, counts: dict) -> None:
    total = sum(counts.values())
    states = " ".join(f"{state}={counts[state]}" for state in sorted(counts))
    print(f"campaign {name}: {total} job(s)  {states}")


def cmd_campaign_submit(args) -> int:
    from repro.service import CampaignStore

    specs = _campaign_sweep_specs(args)
    store = CampaignStore(args.db)
    runner = _campaign_runner(
        store, args.name, jobs=args.jobs, cache_dir=args.cache_dir,
        timeout_s=args.timeout, retries=args.retries,
        max_attempts=args.max_attempts,
    )
    added = runner.submit(specs)
    print(f"campaign {args.name}: {added} new job(s) of {len(specs)} submitted")
    if args.no_run:
        _print_campaign_counts(args.name, runner.status())
        return 0
    counts = runner.drain()
    _print_campaign_counts(args.name, counts)
    return 0 if counts.get("failed", 0) == 0 else 1


def cmd_campaign_status(args) -> int:
    import json

    from repro.service import CampaignStore
    from repro.service.daemon import status_document

    with CampaignStore(args.db) as store:
        campaign = store.campaign(args.name)
        if campaign is None:
            known = ", ".join(row.name for row in store.campaigns()) or "(none)"
            print(f"no campaign {args.name!r} in {args.db}; known: {known}",
                  file=sys.stderr)
            return 1
        if getattr(args, "json", False):
            # The same document a `campaign serve` daemon exposes on
            # /status (minus its live rate gauges) -- one schema, two
            # transports.
            print(json.dumps(status_document(store, args.name),
                             indent=2, sort_keys=True))
            return 0
        counts = store.counts(campaign.id)
        _print_campaign_counts(args.name, counts)
        for job in store.jobs(campaign.id, status="failed"):
            line = (
                f"  failed {job.spec_hash[:12]} ({job.kind}, "
                f"attempt {job.attempts}): {job.error_type}: {job.error_message}"
            )
            if job.postmortem:
                line += f"  [postmortem: {job.postmortem}]"
            print(line)
    return 0


def cmd_campaign_fetch(args) -> int:
    import json
    from pathlib import Path

    from repro.experiments.exec import ResultCache
    from repro.service import CampaignStore

    with CampaignStore(args.db) as store:
        campaign = store.campaign(args.name)
        if campaign is None:
            print(f"no campaign {args.name!r} in {args.db}", file=sys.stderr)
            return 1
        cache_dir = args.cache_dir or campaign.cache_dir
        if cache_dir is None:
            print("campaign has no cache dir on record; pass --cache-dir",
                  file=sys.stderr)
            return 1
        cache = ResultCache(cache_dir)
        jobs = store.jobs(campaign.id)
        lines = []
        missing = 0
        for job in jobs:
            if job.status != "done":
                missing += 1
                continue
            entry = cache.get(job.spec_hash)
            if entry is None:
                missing += 1
                continue
            lines.append(json.dumps(
                {"spec_hash": job.spec_hash, "kind": job.kind,
                 "result": entry["result"]},
                sort_keys=True,
            ))
    text = "\n".join(lines) + ("\n" if lines else "")
    if args.output == "-":
        sys.stdout.write(text)
    else:
        Path(args.output).write_text(text)
        print(f"wrote {len(lines)} result(s) to {args.output}")
    if missing:
        print(f"{missing} job(s) not fetchable (not done or cache entry gone)",
              file=sys.stderr)
    return 0 if missing == 0 else 1


def cmd_campaign_retry(args) -> int:
    from repro.service import CampaignStore

    store = CampaignStore(args.db)
    campaign = store.campaign(args.name)
    if campaign is None:
        print(f"no campaign {args.name!r} in {args.db}", file=sys.stderr)
        return 1
    runner = _campaign_runner(
        store, args.name, jobs=args.jobs,
        cache_dir=args.cache_dir or campaign.cache_dir,
        max_attempts=args.max_attempts,
    )
    requeued = runner.requeue()
    print(f"campaign {args.name}: {requeued} job(s) requeued")
    if args.no_run:
        _print_campaign_counts(args.name, runner.status())
        return 0
    counts = runner.drain()
    _print_campaign_counts(args.name, counts)
    return 0 if counts.get("failed", 0) == 0 else 1


def cmd_campaign_serve(args) -> int:
    import os
    import signal

    from repro.perf import counters as perf_counters
    from repro.service import CampaignStore
    from repro.service.daemon import CampaignDaemon

    if not args.no_perf:
        # Per-job perf records feed the daemon's events/s gauge and the
        # repro_perf_* counters; pool workers inherit the environment.
        os.environ.setdefault(perf_counters.ENV_VAR, "1")
    store = CampaignStore(args.db)
    campaign = store.campaign(args.name)
    if campaign is None:
        known = ", ".join(row.name for row in store.campaigns()) or "(none)"
        print(f"no campaign {args.name!r} in {args.db}; known: {known}",
              file=sys.stderr)
        return 1
    backend = None
    if args.jobs is not None:
        from repro.service import InlineBackendConfig, PoolBackendConfig

        backend = (InlineBackendConfig() if args.jobs == 1
                   else PoolBackendConfig(jobs=args.jobs))
    daemon = CampaignDaemon(
        store,
        args.name,
        backend=backend,
        cache_dir=args.cache_dir or campaign.cache_dir or ".repro-cache",
        journal=str(Path(str(store.path)).with_suffix(".journal.jsonl")),
        max_attempts=args.max_attempts,
        host=args.host,
        port=args.port,
        poll_interval_s=args.poll_interval,
        journal_max_bytes=args.journal_max_bytes or None,
    )
    daemon.start_http()
    print(
        f"campaign {args.name}: serving /metrics /status /healthz on "
        f"{daemon.endpoint}",
        flush=True,
    )

    def _stop(signum, frame) -> None:
        daemon.stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    try:
        doc = daemon.serve(
            max_loops=args.max_loops, linger=not args.exit_when_done
        )
    finally:
        daemon.shutdown()
    counts = doc.get("counts", {})
    _print_campaign_counts(args.name, counts)
    return 0 if counts.get("failed", 0) == 0 else 1


def cmd_campaign_watch(args) -> int:
    import time

    from repro.service.daemon import fetch_status, render_watch_line

    if not args.endpoint and not args.name:
        print("watch needs a campaign name or --endpoint URL", file=sys.stderr)
        return 1

    def read_doc() -> dict:
        if args.endpoint:
            return fetch_status(args.endpoint)
        from repro.service import CampaignStore
        from repro.service.daemon import status_document

        with CampaignStore(args.db) as store:
            return status_document(store, args.name)

    live = sys.stdout.isatty() and not args.once
    while True:
        try:
            doc = read_doc()
        except (OSError, KeyError, ValueError) as exc:
            if live:
                print()
            print(f"watch: {exc}", file=sys.stderr)
            return 1
        line = render_watch_line(doc)
        if live:
            sys.stdout.write("\r\x1b[K" + line)
            sys.stdout.flush()
        else:
            print(line, flush=True)
        counts = doc.get("counts", {})
        if args.once or (doc.get("remaining") == 0 and not args.follow):
            if live:
                print()
            return 0 if counts.get("failed", 0) == 0 else 1
        time.sleep(args.interval)


def cmd_metrics_validate(args) -> int:
    from repro.obs.metrics import validate_openmetrics

    if args.file == "-":
        text = sys.stdin.read()
    else:
        text = Path(args.file).read_text()
    problems = validate_openmetrics(text)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} problem(s)", file=sys.stderr)
        return 1
    families = sum(1 for line in text.splitlines() if line.startswith("# TYPE "))
    print(f"{args.file}: valid OpenMetrics exposition ({families} families)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ECF (CoNEXT'17) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("download", help="wget-style single-object download")
    _add_common(p)
    p.add_argument("--size", type=parse_size, default=parse_size("512k"))
    p.set_defaults(func=cmd_download)

    p = sub.add_parser("streaming", help="DASH streaming session")
    _add_common(p, fixtures=True)
    p.add_argument("--video", type=float, default=120.0, help="video seconds")
    _add_executor_flags(p)
    _add_check_flag(p)
    _add_perf_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_streaming)

    p = sub.add_parser("web", help="full-page Web browsing")
    _add_common(p)
    p.set_defaults(func=cmd_web)

    p = sub.add_parser("grid", help="6x6 bandwidth-grid heat map")
    p.add_argument("--scheduler", default="ecf", choices=_scheduler_choices())
    p.add_argument("--video", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    _add_executor_flags(p)
    _add_sanitize_flag(p)
    _add_check_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_grid)

    p = sub.add_parser(
        "twin",
        help="counterfactual twin runs: per-decision ECF-vs-minRTT regret "
        "via checkpoint/fork (see repro.experiments.twin)",
    )
    p.add_argument(
        "--wifi", type=float, nargs="+", default=[1.0, 4.2],
        help="WiFi rates (Mbps); crossed with --lte into a grid",
    )
    p.add_argument(
        "--lte", type=float, nargs="+", default=[8.6],
        help="LTE rates (Mbps); crossed with --wifi into a grid",
    )
    p.add_argument("--size", type=parse_size, default=parse_size("256k"))
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--timeout", type=float, default=300.0)
    p.add_argument(
        "--max-decisions", type=int, default=None,
        help="replay at most this many decisions per cell (default: all)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=2000,
        help="events per checkpoint in the recording pass",
    )
    p.add_argument("-o", "--output", default=None, help="write JSON report here")
    p.add_argument(
        "--trace-out", default=None,
        help="write Perfetto counterfactual-span trace(s) here",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="fork-equivalence check only: force the recorded choice and "
        "require a byte-identical result (CI gate)",
    )
    p.set_defaults(func=cmd_twin)

    p = sub.add_parser("wild", help="in-the-wild emulation")
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--video", type=float, default=60.0)
    _add_executor_flags(p)
    _add_sanitize_flag(p)
    _add_check_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_wild)

    p = sub.add_parser(
        "campaign",
        help="durable sweep campaigns: SQLite job store + cached results "
        "(see repro.service)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    def _campaign_common(cp, jobs_help: str) -> None:
        cp.add_argument("name", help="campaign name (reopening resumes it)")
        cp.add_argument(
            "--db", default="campaigns.db", metavar="FILE",
            help="SQLite campaign store (default: campaigns.db)",
        )
        cp.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="content-addressed result cache (default: .repro-cache, "
            "or the campaign's recorded cache)",
        )
        cp.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help=jobs_help)
        cp.add_argument(
            "--max-attempts", type=_positive_int, default=3, metavar="N",
            help="per-job attempt budget enforced on requeue (default: 3)",
        )

    cp = campaign_sub.add_parser(
        "submit", help="shard a sweep into jobs and (by default) drain them"
    )
    _campaign_common(cp, "worker processes for the drain (default: 1, inline)")
    cp.add_argument(
        "--sweep", choices=("grid", "wget", "wild"), default="grid",
        help="which sweep to shard into jobs (default: grid)",
    )
    cp.add_argument(
        "--scheduler", nargs="+", default=["ecf"],
        choices=_scheduler_choices(fixtures=True),
        help="scheduler(s) to sweep",
    )
    cp.add_argument("--video", type=float, default=30.0,
                    help="video seconds (grid/wild sweeps)")
    cp.add_argument(
        "--wifi-grid", nargs="+", type=float, default=None, metavar="MBPS",
        help="WiFi bandwidth values (default: the paper's grid)",
    )
    cp.add_argument(
        "--lte-grid", nargs="+", type=float, default=None, metavar="MBPS",
        help="LTE bandwidth values (default: the paper's grid)",
    )
    cp.add_argument("--runs-per-cell", type=_positive_int, default=1,
                    help="seeds per grid cell (default: 1)")
    cp.add_argument(
        "--size", type=parse_size, nargs="+", default=[parse_size("512k")],
        help="object sizes for the wget sweep",
    )
    cp.add_argument("--runs", type=_positive_int, default=9,
                    help="wild-sweep run count (default: 9)")
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="per-run wall-clock budget")
    cp.add_argument("--retries", type=int, default=1,
                    help="in-drain retries for a timed-out run (default: 1)")
    cp.add_argument(
        "--no-run", action="store_true",
        help="only register jobs; drain later by re-running submit (or retry)",
    )
    cp.set_defaults(func=cmd_campaign_submit)

    cp = campaign_sub.add_parser(
        "status", help="per-state job counts and failed-job details"
    )
    cp.add_argument("name")
    cp.add_argument("--db", default="campaigns.db", metavar="FILE")
    cp.add_argument(
        "--json", action="store_true",
        help="print the machine-readable status document (the same JSON "
        "a `campaign serve` daemon exposes on /status)",
    )
    cp.set_defaults(func=cmd_campaign_status)

    cp = campaign_sub.add_parser(
        "serve",
        help="long-lived drain loop with an OpenMetrics/JSON telemetry "
        "endpoint (/metrics, /status, /healthz)",
    )
    cp.add_argument("name", help="campaign name (submit jobs first, e.g. "
                    "with submit --no-run)")
    cp.add_argument("--db", default="campaigns.db", metavar="FILE",
                    help="SQLite campaign store (default: campaigns.db)")
    cp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache (default: the campaign's recorded cache)",
    )
    cp.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="override the stored backend (1 = inline, N = pool; "
        "default: resume the campaign's recorded backend)",
    )
    cp.add_argument(
        "--max-attempts", type=_positive_int, default=3, metavar="N",
        help="per-job attempt budget enforced on requeue (default: 3)",
    )
    cp.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1)")
    cp.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="HTTP port (default: 0 = pick a free one, printed at startup)",
    )
    cp.add_argument(
        "--poll-interval", type=float, default=2.0, metavar="S",
        help="sleep between drain iterations (default: 2)",
    )
    cp.add_argument(
        "--max-loops", type=int, default=None, metavar="N",
        help="exit after N drain iterations (tests/CI)",
    )
    cp.add_argument(
        "--exit-when-done", action="store_true",
        help="exit once no jobs remain instead of lingering for more "
        "submissions and late scrapes",
    )
    cp.add_argument(
        "--journal-max-bytes", type=int, default=16 * 1024 * 1024,
        metavar="BYTES",
        help="rotate the drain journal past this size, keeping a tail "
        "(default: 16 MiB; 0 = unbounded)",
    )
    cp.add_argument(
        "--no-perf", action="store_true",
        help="do not enable per-job perf records (disables the events/s "
        "gauge and repro_perf_* counters)",
    )
    cp.set_defaults(func=cmd_campaign_serve)

    cp = campaign_sub.add_parser(
        "watch", help="live one-line terminal status view of a campaign"
    )
    cp.add_argument("name", nargs="?", default=None,
                    help="campaign name (omit when polling --endpoint)")
    cp.add_argument("--db", default="campaigns.db", metavar="FILE")
    cp.add_argument(
        "--endpoint", default=None, metavar="URL",
        help="poll a running `campaign serve` daemon (http://host:port) "
        "instead of reading the store directly",
    )
    cp.add_argument("--interval", type=float, default=2.0, metavar="S",
                    help="refresh interval (default: 2)")
    cp.add_argument("--once", action="store_true",
                    help="print one status line and exit")
    cp.add_argument(
        "--follow", action="store_true",
        help="keep watching after the campaign finishes",
    )
    cp.set_defaults(func=cmd_campaign_watch)

    cp = campaign_sub.add_parser(
        "fetch", help="export the finished results as JSON lines"
    )
    cp.add_argument("name")
    cp.add_argument("--db", default="campaigns.db", metavar="FILE")
    cp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="override the campaign's recorded cache dir")
    cp.add_argument("-o", "--output", default="-",
                    help="output file ('-' = stdout)")
    cp.set_defaults(func=cmd_campaign_fetch)

    cp = campaign_sub.add_parser(
        "retry", help="requeue failed jobs (attempt-capped) and drain again"
    )
    _campaign_common(cp, "worker processes for the retry drain (default: 1)")
    cp.add_argument(
        "--no-run", action="store_true",
        help="only requeue; drain later via submit/retry",
    )
    cp.set_defaults(func=cmd_campaign_retry)

    p = sub.add_parser(
        "bench",
        help="run the pinned perf workload matrix and write BENCH_<rev>.json",
    )
    p.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier (CI smoke uses a small value)",
    )
    p.add_argument(
        "--workload", nargs="+", default=None, metavar="NAME",
        choices=["bulk", "dash_onoff", "web", "four_subflow"],
        help="run a subset of the matrix (default: all four)",
    )
    p.add_argument(
        "--output", default=None, metavar="FILE",
        help="where to write the report (default: BENCH_<rev>.json)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare events/sec against this earlier report",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional events/sec drop vs baseline (default: 0.30)",
    )
    p.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run each workload N times, keep the fastest (default: 1)",
    )
    p.add_argument(
        "--profile", default=None, metavar="FILE",
        help="attribute wall time per simulator component and write "
        "collapsed stacks to FILE (flamegraph.pl / speedscope format)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "metrics",
        help="telemetry utilities for the repro.obs.metrics registry",
    )
    metrics_sub = p.add_subparsers(dest="metrics_command", required=True)
    mv = metrics_sub.add_parser(
        "validate",
        help="structurally validate an OpenMetrics text exposition "
        "(a /metrics scrape body)",
    )
    mv.add_argument("file", help="exposition text file ('-' = stdin)")
    mv.set_defaults(func=cmd_metrics_validate)

    p = sub.add_parser(
        "check",
        help="trace-level conformance: property catalog, differential "
        "oracles, and the event-order race detector",
    )
    p.add_argument(
        "--scheduler", nargs="+", default=["ecf", "minrtt"],
        choices=_scheduler_choices(fixtures=True),
        help="scheduler(s) to check (fixture names like ecf-nowait run the "
        "seeded-violation variants)",
    )
    p.add_argument(
        "--scenario", nargs="+", default=list(CHECK_SCENARIOS),
        choices=CHECK_SCENARIOS, help="scenario matrix to run the catalog over",
    )
    p.add_argument(
        "--orders", type=_positive_int, default=5, metavar="N",
        help="randomized tie-break orders per race-detector scenario (default: 5)",
    )
    p.add_argument(
        "--skip-races", action="store_true",
        help="run only the property catalog, not the race detector",
    )
    p.add_argument("--wifi", type=float, default=8.6, help="WiFi Mbps")
    p.add_argument("--lte", type=float, default=8.6, help="LTE Mbps")
    p.add_argument("--video", type=float, default=30.0, help="DASH video seconds")
    p.add_argument(
        "--size", type=parse_size, default=parse_size("512k"),
        help="bulk download size",
    )
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "lint", help="simulator-specific static analysis (see repro.analysis.lint)"
    )
    p.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the installed repro package)",
    )
    p.add_argument(
        "--select", nargs="+", metavar="CODE", default=None,
        help="restrict to these rule codes (e.g. RPR101 RPR301)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    p.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="write findings as SARIF 2.1.0 to FILE ('-' for stdout)",
    )
    p.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings recorded in this baseline file; anything "
        "new still fails",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="snapshot the current findings into the baseline "
        "(--baseline path, or lint-baseline.json) and exit 0",
    )
    p.add_argument(
        "--changed", action="store_true",
        help="report findings only for files changed vs HEAD (the whole "
        "program is still analyzed, so cross-file findings stay accurate)",
    )
    p.add_argument(
        "--cache", metavar="FILE", default=".repro-lint-cache.json",
        help="incremental per-file summary cache (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="parse every file fresh; do not read or write the cache",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "state",
        help="static state model: ownership graph + snapshot contract "
        "(see repro.analysis.state)",
    )
    p.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the installed repro package)",
    )
    p.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the state-model JSON to FILE (default: stdout)",
    )
    p.add_argument(
        "--check", default=None, metavar="FILE",
        help="compare against a committed state model; exit 1 on drift",
    )
    p.add_argument(
        "--cache", metavar="FILE", default=".repro-lint-cache.json",
        help="incremental per-file summary cache (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="parse every file fresh; do not read or write the cache",
    )
    p.set_defaults(func=cmd_state)

    p = sub.add_parser(
        "trace",
        help="observability timelines: export event logs / postmortem "
        "bundles to Perfetto JSON, JSONL, or Prometheus text",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    pe = trace_sub.add_parser(
        "export", help="convert a run or postmortem into a viewable timeline"
    )
    pe.add_argument(
        "source",
        help="postmortem bundle directory, events .jsonl, or a cached/"
        "exported result .json",
    )
    pe.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="output file (default: stdout)",
    )
    pe.add_argument(
        "--format", choices=("perfetto", "jsonl", "prom"), default="perfetto",
        help="perfetto = Chrome trace-event JSON (load at ui.perfetto.dev), "
        "jsonl = flat event records, prom = Prometheus text counters",
    )
    pe.set_defaults(func=cmd_trace_export)
    pv = trace_sub.add_parser(
        "validate", help="structurally validate an exported trace-event JSON"
    )
    pv.add_argument("document", help="trace-event JSON file to validate")
    pv.add_argument(
        "--min-subflow-tracks", type=int, default=0, metavar="N",
        help="require at least N per-subflow tracks",
    )
    pv.add_argument(
        "--require-ecf-waits", action="store_true",
        help="require at least one 'ecf wait' duration event",
    )
    pv.set_defaults(func=cmd_trace_validate)

    p = sub.add_parser(
        "report", help="collate benchmarks/output/*.txt into one markdown report"
    )
    p.add_argument("--output", default="-", help="file to write ('-' = stdout)")
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "sanitize", False):
        import os

        from repro.analysis import sanitize

        # The env var propagates the setting into executor pool workers.
        os.environ[sanitize.ENV_VAR] = "1"
        sanitize.enable()
    if getattr(args, "check", False):
        import os

        from repro.analysis import check

        # Read by the executor around every run -- in-process and in pool
        # workers alike (the pool inherits the environment).
        os.environ[check.ENV_VAR] = "1"
    if getattr(args, "perf", False):
        import os

        from repro.perf import counters as perf_counters

        # Same propagation trick as --sanitize/--check: pool workers
        # inherit the environment and attach a perf record per run.
        os.environ[perf_counters.ENV_VAR] = "1"
    if getattr(args, "obs", False) or getattr(args, "obs_dir", None):
        import os

        from repro.obs import flight as obs_flight

        # --obs-dir implies --obs; both propagate into pool workers, which
        # write postmortem bundles at spec-hash-derived paths under the dir.
        os.environ[obs_flight.ENV_VAR] = "1"
        if getattr(args, "obs_dir", None):
            os.environ[obs_flight.DIR_ENV_VAR] = args.obs_dir
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
