"""Executable fidelity checks: the DESIGN.md invariants as library calls.

Downstream users extending the simulator (new schedulers, new congestion
controllers, different link models) can re-validate the substrate with
one call::

    from repro.experiments.fidelity import validate_transport
    report = validate_transport()
    assert report.passed, report.summary()

Each check is cheap (a few seconds in total) and returns measured values
so drift can be inspected rather than just detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.core.spec import SchedulerSpec, build
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.profiles import lte_config, make_path, wifi_config
from repro.sim.engine import Simulator


@dataclass
class CheckResult:
    """Outcome of one fidelity check."""

    name: str
    passed: bool
    measured: float
    expectation: str


@dataclass
class FidelityReport:
    """All check outcomes plus convenience accessors."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def summary(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok  " if check.passed else "FAIL"
            lines.append(
                f"[{status}] {check.name}: measured {check.measured:.4g} "
                f"(expected {check.expectation})"
            )
        return "\n".join(lines)


def _timed_transfer(scheduler: str, configs, nbytes: int, cc: str = "coupled") -> Tuple[float, MptcpConnection]:
    sim = Simulator()
    paths = [make_path(sim, pc) for pc in configs]
    conn = MptcpConnection(
        sim, paths, build(SchedulerSpec.of(scheduler)),
        config=ConnectionConfig(handshake_delays=False, congestion_control=cc),
    )
    conn.write(nbytes)
    sim.run(until=600.0)
    if conn.delivered_bytes != nbytes:
        return float("inf"), conn
    return max(conn.receiver.last_arrival_by_subflow.values()), conn


def check_single_path_goodput() -> CheckResult:
    """A saturating transfer achieves 75-100% of the regulated rate."""
    elapsed, _ = _timed_transfer("minrtt", [lte_config(8.6)], 10_000_000)
    goodput = 10_000_000 * 8 / elapsed / 1e6
    return CheckResult(
        name="single_path_goodput",
        passed=0.75 * 8.6 <= goodput <= 8.6,
        measured=goodput,
        expectation="6.45..8.6 Mbps on an 8.6 Mbps link",
    )


def check_aggregation() -> CheckResult:
    """Two homogeneous paths beat one by a clear margin."""
    single, _ = _timed_transfer("minrtt", [wifi_config(8.6)], 10_000_000)
    double, _ = _timed_transfer(
        "minrtt", [wifi_config(8.6), lte_config(8.6)], 10_000_000
    )
    speedup = single / double if double > 0 else 0.0
    return CheckResult(
        name="two_path_aggregation",
        passed=speedup > 1.4,
        measured=speedup,
        expectation="speedup > 1.4x with a second equal path",
    )


def check_delivery_exactness() -> CheckResult:
    """The in-order stream is exact under heterogeneity."""
    _, conn = _timed_transfer(
        "ecf", [wifi_config(0.3), lte_config(8.6)], 2_000_000
    )
    exact = (
        conn.receiver.expected_dsn == 2_000_000
        and conn.receiver.buffered_bytes == 0
    )
    return CheckResult(
        name="delivery_exactness",
        passed=exact,
        measured=float(conn.receiver.expected_dsn),
        expectation="2000000 bytes delivered gaplessly",
    )


def check_bufferbloat_rtt() -> CheckResult:
    """Saturating a 0.3 Mbps regulation inflates RTT to the second scale."""
    _, conn = _timed_transfer("minrtt", [wifi_config(0.3)], 300_000)
    rtt = conn.subflows[0].rtt.mean_rtt
    return CheckResult(
        name="bufferbloat_rtt",
        passed=rtt > 0.5,
        measured=rtt,
        expectation="> 0.5 s mean RTT at 0.3 Mbps (Table 2 regime)",
    )


def check_ecf_no_regression() -> CheckResult:
    """ECF completes a heterogeneous bulk transfer at least as fast as the
    default scheduler (within 10%)."""
    default, _ = _timed_transfer(
        "minrtt", [wifi_config(1.0), lte_config(8.6)], 2_000_000
    )
    ecf, _ = _timed_transfer(
        "ecf", [wifi_config(1.0), lte_config(8.6)], 2_000_000
    )
    ratio = ecf / default if default > 0 else float("inf")
    return CheckResult(
        name="ecf_no_regression",
        passed=ratio <= 1.10,
        measured=ratio,
        expectation="ECF/default completion ratio <= 1.10",
    )


#: The full battery, in execution order.
ALL_CHECKS: Tuple[Callable[[], CheckResult], ...] = (
    check_single_path_goodput,
    check_aggregation,
    check_delivery_exactness,
    check_bufferbloat_rtt,
    check_ecf_no_regression,
)


def validate_transport() -> FidelityReport:
    """Run every fidelity check and collect the report."""
    report = FidelityReport()
    for check in ALL_CHECKS:
        report.checks.append(check())
    return report
