"""Parallel experiment execution with result caching.

Every paper figure is a sweep of independent simulations -- grid cells x
schedulers x seeds -- that the original harnesses executed strictly
serially.  :class:`ExperimentExecutor` fans those runs out across a
process pool and memoizes finished runs on disk:

* **Fan-out**: any batch of :mod:`repro.experiments.spec` specs runs on
  ``jobs`` worker processes.  Specs and results cross the pool boundary
  in their dict wire format, so workers never pickle live simulator
  objects.  Results come back in submission order, and a batch is
  bit-for-bit identical whatever ``jobs`` is: each run is a pure
  function of its spec (the spec carries the seed).
* **Caching**: with a ``cache_dir``, every finished run is stored as
  canonical JSON under its :func:`~repro.experiments.spec.spec_hash`
  (content address).  Re-running a half-finished campaign executes only
  the missing cells; a warm cache executes nothing.
* **Timeout + retry**: a per-run wall-clock ``timeout_s`` (enforced via
  ``SIGALRM`` on POSIX) converts a wedged simulation into a
  :class:`RunTimeoutError`, and the executor retries it up to
  ``retries`` times before failing the batch -- one stuck run cannot
  stall a campaign forever.
* **Progress**: pass ``progress=True`` for a stderr ticker with ETA, or
  a callable receiving :class:`ProgressEvent` for custom reporting.

Example
-------
::

    from repro.experiments.exec import ExperimentExecutor
    from repro.experiments.runner import StreamingSpec

    specs = [StreamingSpec(scheduler="ecf", wifi_mbps=w, lte_mbps=8.6,
                           video_duration=60.0, seed=s)
             for w in (0.3, 1.1, 4.2) for s in range(3)]
    with ExperimentExecutor(jobs=4, cache_dir=".repro-cache") as ex:
        results = ex.run(specs)
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import check
from repro.experiments.spec import (
    SCHEMA_VERSION,
    attach_perf,
    canonical_json,
    result_from_dict,
    run_spec,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)
from repro.obs import flight as obs_flight
from repro.obs.journal import RunJournal
from repro.perf import counters as perf_counters

PathLike = Union[str, "os.PathLike[str]"]


class RunTimeoutError(RuntimeError):
    """A run exceeded its wall-clock budget."""


class ExperimentError(RuntimeError):
    """A run failed permanently (after exhausting any retries)."""


@dataclass
class ExecutorStats:
    """What a batch actually cost."""

    executed: int = 0
    cached: int = 0
    retried: int = 0
    failed: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cached


@dataclass(frozen=True)
class JobOutcome:
    """Terminal fate of one spec in a batch, as seen by ``on_job``.

    Emitted exactly once per spec -- when it resolves from cache, when it
    finishes executing, or when it fails permanently.  ``index`` is the
    spec's position in the submitted batch; ``status`` is ``"cached"``,
    ``"executed"``, or ``"failed"``.  The campaign runner
    (:mod:`repro.service.runner`) uses this callback to move jobs through
    the store's state machine as the batch unfolds.
    """

    index: int
    spec_hash: str
    kind: str
    status: str
    wall_s: float
    attempts: int
    error: Optional[Dict[str, str]] = None
    postmortem: Optional[str] = None
    #: With ``REPRO_PERF`` set, the run's perf record
    #: (:meth:`repro.perf.counters.PerfRecord.to_dict` shape) as it rode
    #: back on the result dict -- including across the ``pool`` process
    #: boundary.  ``None`` on cache hits (the cache strips perf) and
    #: failures.  The telemetry registry sums these per campaign.
    perf: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class FailedRun:
    """Placeholder result for a permanently failed spec under ``keep_going``.

    Occupies the failed spec's slot in the results list so positions
    still line up with the submitted batch.  Never cached, never
    journaled as a result -- it only exists in memory, in this batch.
    """

    spec_hash: str
    kind: str
    error_type: str
    error_message: str
    postmortem: Optional[str] = None


@dataclass(frozen=True)
class ProgressEvent:
    """One progress tick, emitted after every completed (or failed) run."""

    done: int
    total: int
    executed: int
    cached: int
    elapsed_s: float
    eta_s: Optional[float]
    failed: int = 0
    retried: int = 0


class ProgressReporter:
    """Default progress sink: a single self-overwriting stderr line."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: ProgressEvent) -> None:
        eta = "?" if event.eta_s is None else f"{event.eta_s:.0f}s"
        pct = 100.0 * event.done / event.total if event.total else 100.0
        self.stream.write(
            f"\r[{event.done}/{event.total}] {pct:3.0f}% "
            f"executed={event.executed} cached={event.cached} "
            f"failed={event.failed} "
            f"elapsed={event.elapsed_s:.1f}s eta={eta}"
        )
        if event.done == event.total:
            self.stream.write("\n")
        self.stream.flush()


@contextmanager
def _wall_clock_limit(timeout_s: Optional[float], label: str):
    """Raise :class:`RunTimeoutError` if the body runs past ``timeout_s``.

    Uses the real-time interval timer, so it fires even while the
    simulation loop never touches the event queue.  Silently a no-op
    where ``SIGALRM`` is unavailable (non-POSIX) or off the main thread.
    """
    usable = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum, frame):
        raise RunTimeoutError(f"run exceeded {timeout_s}s wall clock: {label}")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_payload(payload: Dict[str, Any], timeout_s: Optional[float]) -> Dict[str, Any]:
    """Pool-worker entry point: spec dict in, result dict out.

    Module-level (picklable) and dict-in/dict-out so nothing but plain
    values crosses the process boundary.

    With ``REPRO_OBS`` set the whole attempt runs inside a flight window
    (:func:`repro.obs.flight.flight`): any exception -- sanitizer
    assertion, :class:`~repro.analysis.check.CheckError`,
    :class:`RunTimeoutError`, or a plain crash -- snapshots a postmortem
    bundle at the spec's deterministic path before propagating, so the
    parent (which only sees a pickled exception) can find it again via
    :func:`repro.obs.flight.postmortem_dir_for`.
    """
    spec = spec_from_dict(payload)
    key = spec_hash(spec)
    label = f"{payload['kind']} {key[:12]}"

    def invoke(target_spec: Any) -> Any:
        if check.check_enabled():
            # REPRO_CHECK: record a structured event log around the run
            # and verify the temporal property catalog over it.  A
            # CheckError propagates like any other worker failure.
            result, _report = check.run_with_checks(run_spec, target_spec)
            return result
        return run_spec(target_spec)

    def run_once() -> Any:
        with _wall_clock_limit(timeout_s, label):
            if perf_counters.perf_enabled():
                # REPRO_PERF: collect deterministic counters + wall time
                # for this run and ship them on the result's perf field.
                result, record = perf_counters.measure(invoke, spec)
                attach_perf(result, record.to_dict())
                return result
            return invoke(spec)

    if not obs_flight.obs_enabled():
        return run_once().to_dict()

    with obs_flight.flight() as recorder:
        try:
            result = run_once()
        except BaseException as exc:
            from repro.perf.bench import current_rev

            recorder.write_postmortem(
                kind=payload["kind"],
                spec=payload,
                spec_hash=key,
                seed=payload.get("seed"),
                rev=current_rev(),
                error=exc,
            )
            raise
    return result.to_dict()


class ResultCache:
    """Content-addressed on-disk store of finished runs.

    Entries live at ``<root>/<hash[:2]>/<hash>.json`` holding the spec
    alongside the result (the file is self-describing and greppable).
    Writes are atomic (temp file + ``os.replace``), so a killed campaign
    never leaves a truncated entry behind; unreadable or version-skewed
    entries read as misses.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            text = self.path_for(key).read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        if not isinstance(payload, dict) or payload.get("schema_version") != SCHEMA_VERSION:
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        target = self.path_for(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.parent / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(canonical_json(payload))
        os.replace(tmp, target)

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class ExperimentExecutor:
    """Run batches of experiment specs in parallel, with caching.

    Parameters
    ----------
    jobs: worker processes; ``1`` executes inline in this process (the
        reference serial path -- results are identical either way).
    cache_dir: directory for the content-addressed result cache;
        ``None`` disables caching.
    use_cache: set ``False`` to bypass a configured cache (fresh runs,
        nothing read or written).
    timeout_s: per-run wall-clock budget; ``None`` means unbounded.
    retries: extra attempts for a run that times out (or whose worker
        died) before the batch fails.
    progress: ``True`` for the built-in stderr ticker, a callable for
        custom handling of :class:`ProgressEvent`, falsy for silence.
    journal: a :class:`~repro.obs.journal.RunJournal`, a path to append
        one to, or ``None``.  With ``None`` and ``REPRO_OBS`` set, a
        journal is opened at ``<obs_dir>/journal.jsonl`` automatically,
        so every observed sweep leaves a per-job record behind.
    keep_going: with ``True``, a permanently failed spec no longer
        aborts the batch: its slot in the results list holds a
        :class:`FailedRun` and the remaining specs keep running.  The
        default (``False``) preserves the original fail-fast contract.
    on_job: callable receiving a :class:`JobOutcome` for every spec that
        reaches a terminal state (cached / executed / failed), in
        completion order.  This is the hook the campaign runner uses to
        persist per-job state without wrapping the executor.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[PathLike] = None,
        use_cache: bool = True,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        progress: Union[bool, Callable[[ProgressEvent], None], None] = None,
        journal: Union[None, RunJournal, PathLike] = None,
        keep_going: bool = False,
        on_job: Optional[Callable[[JobOutcome], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        self.jobs = int(jobs)
        self.cache = (
            ResultCache(cache_dir) if (cache_dir is not None and use_cache) else None
        )
        self.timeout_s = timeout_s
        self.retries = int(retries)
        if progress is True:
            self._progress: Optional[Callable[[ProgressEvent], None]] = ProgressReporter()
        elif callable(progress):
            self._progress = progress
        else:
            self._progress = None
        if journal is None and obs_flight.obs_enabled():
            journal = obs_flight.obs_dir() / "journal.jsonl"
        if journal is None or isinstance(journal, RunJournal):
            self.journal: Optional[RunJournal] = journal
        else:
            self.journal = RunJournal(journal)
        self.keep_going = bool(keep_going)
        self.on_job = on_job
        self.stats = ExecutorStats()

    # -- context manager sugar (no persistent resources today) ----------
    def __enter__(self) -> "ExperimentExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    # -- the batch API ---------------------------------------------------
    def run(self, specs: Sequence[Any]) -> List[Any]:
        """Execute every spec; return typed results in submission order.

        Cache hits are rebuilt from disk without simulating; misses run
        inline (``jobs=1``) or on the pool.  All results -- cached, inline,
        or pooled -- pass through the same ``to_dict``/``from_dict`` wire
        format, so the three paths are indistinguishable to the caller.
        """
        specs = list(specs)
        total = len(specs)
        results: List[Any] = [None] * total
        # Wall clock is correct here: this measures the *host's* sweep
        # progress for ETA display, not anything inside a simulation.
        started = time.monotonic()  # repro: noqa[RPR101]
        done = 0

        def report() -> None:
            if self._progress is None:
                return
            elapsed = time.monotonic() - started  # repro: noqa[RPR101]
            remaining = total - done
            eta: Optional[float] = None
            if remaining == 0:
                eta = 0.0
            elif self.stats.executed > 0:
                eta = elapsed / max(done, 1) * remaining
            self._progress(
                ProgressEvent(
                    done=done,
                    total=total,
                    executed=self.stats.executed,
                    cached=self.stats.cached,
                    elapsed_s=elapsed,
                    eta_s=eta,
                    failed=self.stats.failed,
                    retried=self.stats.retried,
                )
            )

        hashes = [spec_hash(spec) for spec in specs]
        if self.journal is not None:
            self.journal.batch_start(
                total=total,
                jobs=self.jobs,
                cache=None if self.cache is None else str(self.cache.root),
                timeout_s=self.timeout_s,
                retries=self.retries,
            )

        def journal_job(**fields: Any) -> None:
            if self.journal is not None:
                self.journal.job(**fields)

        def emit(outcome: JobOutcome) -> None:
            if self.on_job is not None:
                self.on_job(outcome)

        pending: List[int] = []
        for index, spec in enumerate(specs):
            entry = self.cache.get(hashes[index]) if self.cache else None
            if entry is not None and entry.get("kind") == spec.kind:
                results[index] = result_from_dict(spec.kind, entry["result"])
                self.stats.cached += 1
                done += 1
                journal_job(
                    spec_hash=hashes[index],
                    kind=spec.kind,
                    status="cached",
                    wall_s=0.0,
                    attempts=0,
                )
                emit(
                    JobOutcome(
                        index=index,
                        spec_hash=hashes[index],
                        kind=spec.kind,
                        status="cached",
                        wall_s=0.0,
                        attempts=0,
                    )
                )
                report()
            else:
                pending.append(index)

        def finalize(
            index: int, result_dict: Dict[str, Any], wall_s: float, attempts: int
        ) -> None:
            nonlocal done
            spec = specs[index]
            results[index] = result_from_dict(spec.kind, result_dict)
            if self.cache is not None:
                # The perf record carries wall-clock time from *this* run;
                # caching it would make the entry non-deterministic (and
                # replay a stale measurement on every later hit).
                cached_result = {
                    key: value for key, value in result_dict.items() if key != "perf"
                }
                self.cache.put(
                    hashes[index],
                    {
                        "schema_version": SCHEMA_VERSION,
                        "kind": spec.kind,
                        "spec": spec.to_dict(),
                        "result": cached_result,
                    },
                )
            self.stats.executed += 1
            done += 1
            journal_job(
                spec_hash=hashes[index],
                kind=spec.kind,
                status="executed",
                wall_s=round(wall_s, 6),
                attempts=attempts,
            )
            perf = result_dict.get("perf")
            emit(
                JobOutcome(
                    index=index,
                    spec_hash=hashes[index],
                    kind=spec.kind,
                    status="executed",
                    wall_s=round(wall_s, 6),
                    attempts=attempts,
                    perf=perf if isinstance(perf, dict) else None,
                )
            )
            report()

        def fail(index: int, exc: BaseException, wall_s: float, attempts: int) -> None:
            # Accounting for a permanently failed job; the caller raises
            # (fail-fast) or moves on (keep_going).
            nonlocal done
            self.stats.failed += 1
            postmortem: Optional[str] = None
            if obs_flight.obs_enabled():
                # The worker writes the bundle at a path derived from the
                # spec hash alone, so the parent can re-derive it here
                # without anything crossing the pool boundary.
                bundle = obs_flight.postmortem_dir_for(hashes[index])
                if bundle.exists():
                    postmortem = str(bundle)
            error = {"type": type(exc).__name__, "message": str(exc)}
            if self.keep_going:
                results[index] = FailedRun(
                    spec_hash=hashes[index],
                    kind=specs[index].kind,
                    error_type=error["type"],
                    error_message=error["message"],
                    postmortem=postmortem,
                )
                done += 1
            journal_job(
                spec_hash=hashes[index],
                kind=specs[index].kind,
                status="failed",
                wall_s=round(wall_s, 6),
                attempts=attempts,
                error=error,
                postmortem=postmortem,
            )
            emit(
                JobOutcome(
                    index=index,
                    spec_hash=hashes[index],
                    kind=specs[index].kind,
                    status="failed",
                    wall_s=round(wall_s, 6),
                    attempts=attempts,
                    error=error,
                    postmortem=postmortem,
                )
            )
            report()

        try:
            if pending:
                payloads = {index: spec_to_dict(specs[index]) for index in pending}
                if self.jobs == 1 or len(pending) == 1:
                    for index in pending:
                        outcome = self._run_with_retry_inline(
                            index, hashes[index], payloads[index], fail
                        )
                        if outcome is not None:
                            finalize(index, *outcome)
                else:
                    self._run_on_pool(pending, hashes, payloads, finalize, fail)
        finally:
            if self.journal is not None:
                self.journal.batch_end(
                    done=done,
                    executed=self.stats.executed,
                    cached=self.stats.cached,
                    failed=self.stats.failed,
                    retried=self.stats.retried,
                    elapsed_s=round(time.monotonic() - started, 6),  # repro: noqa[RPR101]
                )
        return results

    def submit_one(self, spec: Any) -> Any:
        """Convenience: run a single spec through cache + retry logic."""
        return self.run([spec])[0]

    # -- execution paths -------------------------------------------------
    def _run_with_retry_inline(
        self,
        index: int,
        key: str,
        payload: Dict[str, Any],
        fail: Callable[[int, BaseException, float, int], None],
    ) -> Optional[Tuple[Dict[str, Any], float, int]]:
        """Returns ``(result_dict, wall_s, attempts)`` or raises.

        ``wall_s`` brackets all attempts of this job, timed parent-side.
        Under ``keep_going`` a permanent failure returns ``None`` instead
        of raising (``fail`` has already recorded it).
        """
        start = time.monotonic()  # repro: noqa[RPR101]
        for attempt in range(self.retries + 1):
            try:
                result = _execute_payload(payload, self.timeout_s)
            except RunTimeoutError as exc:
                wall = time.monotonic() - start  # repro: noqa[RPR101]
                if attempt == self.retries:
                    fail(index, exc, wall, attempt + 1)
                    if self.keep_going:
                        return None
                    raise ExperimentError(
                        f"{payload['kind']} run failed after "
                        f"{self.retries + 1} attempts: {exc}"
                    ) from exc
                self.stats.retried += 1
                if self.journal is not None:
                    self.journal.retry(
                        spec_hash=key, attempt=attempt + 1, error=str(exc)
                    )
            except Exception as exc:
                # Non-timeout failures (CheckError, sanitizer assertions,
                # crashes) are permanent: journal them, then propagate the
                # original exception unwrapped, as before.
                fail(index, exc, time.monotonic() - start, attempt + 1)  # repro: noqa[RPR101]
                if self.keep_going:
                    return None
                raise
            else:
                wall = time.monotonic() - start  # repro: noqa[RPR101]
                return result, wall, attempt + 1
        raise AssertionError("unreachable")  # pragma: no cover

    def _run_on_pool(
        self,
        pending: List[int],
        hashes: List[str],
        payloads: Dict[int, Dict[str, Any]],
        finalize: Callable[[int, Dict[str, Any], float, int], None],
        fail: Callable[[int, BaseException, float, int], None],
    ) -> None:
        attempts = {index: 0 for index in pending}
        submitted_at: Dict[int, float] = {}
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict[Any, int] = {}

            def submit(index: int) -> None:
                # Per-job wall time on the pool spans submit-to-completion
                # (queue wait included) -- the parent cannot see inside the
                # worker, and for sweep triage the end-to-end figure is the
                # one that matters.
                submitted_at[index] = time.monotonic()  # repro: noqa[RPR101]
                futures[
                    pool.submit(_execute_payload, payloads[index], self.timeout_s)
                ] = index

            for index in pending:
                submit(index)
            while futures:
                completed, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in completed:
                    index = futures.pop(future)
                    attempts[index] += 1
                    wall = time.monotonic() - submitted_at[index]  # repro: noqa[RPR101]
                    try:
                        result_dict = future.result()
                    except RunTimeoutError as exc:
                        if attempts[index] > self.retries:
                            if self.keep_going:
                                fail(index, exc, wall, attempts[index])
                                continue
                            for other in futures:
                                other.cancel()
                            fail(index, exc, wall, attempts[index])
                            raise ExperimentError(
                                f"{payloads[index]['kind']} run failed after "
                                f"{attempts[index]} attempts: {exc}"
                            ) from exc
                        self.stats.retried += 1
                        if self.journal is not None:
                            self.journal.retry(
                                spec_hash=hashes[index],
                                attempt=attempts[index],
                                error=str(exc),
                            )
                        submit(index)
                    except Exception as exc:
                        if self.keep_going:
                            fail(index, exc, wall, attempts[index])
                            continue
                        for other in futures:
                            other.cancel()
                        fail(index, exc, wall, attempts[index])
                        raise
                    else:
                        finalize(index, result_dict, wall, attempts[index])


def run_specs(
    specs: Sequence[Any],
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Union[bool, Callable[[ProgressEvent], None], None] = None,
    journal: Union[None, RunJournal, PathLike] = None,
    keep_going: bool = False,
    on_job: Optional[Callable[[JobOutcome], None]] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`ExperimentExecutor`."""
    with ExperimentExecutor(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        timeout_s=timeout_s,
        retries=retries,
        progress=progress,
        journal=journal,
        keep_going=keep_going,
        on_job=on_job,
    ) as executor:
        return executor.run(specs)
