"""Bandwidth-grid sweeps: the machinery behind the heat-map figures.

The paper sweeps WiFi x LTE regulated bandwidths over
``{0.3, 0.7, 1.1, 1.7, 4.2, 8.6}`` Mbps (Figs 2, 6, 7, 9, 10) and over
``1..10`` Mbps for the wget matrices (Figs 18, 19).  :func:`streaming_grid`
runs one streaming session per (wifi, lte) cell and scheduler and returns
the ratio-to-ideal matrix plus the underlying run results;
:func:`wget_matrix` is the download-time analogue.

Both sweeps are embarrassingly parallel, so both submit their cells
through an :class:`~repro.experiments.exec.ExperimentExecutor` -- pass
``executor=ExperimentExecutor(jobs=N, cache_dir=...)`` to fan a sweep out
across cores and memoize finished cells; the default is the serial
reference path, which produces byte-identical results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.bulk import BulkDownloadResult, BulkDownloadSpec
from repro.apps.dash.media import VideoManifest
from repro.experiments.exec import ExperimentExecutor
from repro.experiments.ideal import ideal_average_bitrate
from repro.experiments.runner import StreamingRunConfig, StreamingRunResult
from repro.net.profiles import lte_config, wifi_config

#: The paper's streaming bandwidth set (Mbps), chosen "slightly larger"
#: than the Table 1 bit rates.
PAPER_BANDWIDTH_GRID_MBPS: Tuple[float, ...] = (0.3, 0.7, 1.1, 1.7, 4.2, 8.6)

#: The wget matrices' bandwidth set (Figs 18, 19), Mbps.
PAPER_WGET_GRID_MBPS: Tuple[float, ...] = tuple(float(v) for v in range(1, 11))

Cell = Tuple[float, float]

#: One wget-matrix coordinate: (size_bytes, wifi_mbps, lte_mbps, scheduler).
WgetCell = Tuple[int, float, float, str]


def streaming_grid_specs(
    base_config: StreamingRunConfig,
    wifi_values_mbps: Sequence[float] = PAPER_BANDWIDTH_GRID_MBPS,
    lte_values_mbps: Sequence[float] = PAPER_BANDWIDTH_GRID_MBPS,
    runs_per_cell: int = 1,
) -> List[Tuple[Cell, StreamingRunConfig]]:
    """The (cell, spec) list a grid sweep executes, in deterministic order.

    Per-run seeding is deterministic: repetition ``i`` of a cell runs at
    ``base_config.seed + i``, independent of execution order or worker
    count.
    """
    specs: List[Tuple[Cell, StreamingRunConfig]] = []
    for wifi in wifi_values_mbps:
        for lte in lte_values_mbps:
            for run_index in range(runs_per_cell):
                specs.append(
                    (
                        (wifi, lte),
                        replace(
                            base_config,
                            wifi_mbps=wifi,
                            lte_mbps=lte,
                            seed=base_config.seed + run_index,
                        ),
                    )
                )
    return specs


def streaming_grid(
    base_config: StreamingRunConfig,
    wifi_values_mbps: Sequence[float] = PAPER_BANDWIDTH_GRID_MBPS,
    lte_values_mbps: Sequence[float] = PAPER_BANDWIDTH_GRID_MBPS,
    runs_per_cell: int = 1,
    executor: Optional[ExperimentExecutor] = None,
) -> Dict[Cell, List[StreamingRunResult]]:
    """Run a streaming session for every (wifi, lte) bandwidth pair.

    Returns a mapping ``(wifi_mbps, lte_mbps) -> [results...]`` with
    ``runs_per_cell`` seeds per cell.  ``executor`` parallelizes and/or
    caches the sweep; omitted, cells run serially in this process.
    """
    cells_and_specs = streaming_grid_specs(
        base_config, wifi_values_mbps, lte_values_mbps, runs_per_cell
    )
    if executor is None:
        executor = ExperimentExecutor()
    run_results = executor.run([spec for _, spec in cells_and_specs])
    results: Dict[Cell, List[StreamingRunResult]] = {}
    for (cell, _), result in zip(cells_and_specs, run_results):
        results.setdefault(cell, []).append(result)
    return results


def wget_matrix_specs(
    schedulers: Sequence[str],
    sizes: Sequence[int],
    wifi_values_mbps: Sequence[float] = PAPER_WGET_GRID_MBPS,
    lte_values_mbps: Sequence[float] = PAPER_WGET_GRID_MBPS,
    seed: int = 0,
) -> List[Tuple[WgetCell, BulkDownloadSpec]]:
    """The (cell, spec) list a wget sweep executes, in deterministic order."""
    coords: List[WgetCell] = [
        (size, wifi, lte, scheduler)
        for size in sizes
        for wifi in wifi_values_mbps
        for lte in lte_values_mbps
        for scheduler in schedulers
    ]
    return [
        (
            (size, wifi, lte, scheduler),
            BulkDownloadSpec(
                scheduler=scheduler,
                path_configs=(wifi_config(wifi), lte_config(lte)),
                size=size,
                seed=seed,
            ),
        )
        for (size, wifi, lte, scheduler) in coords
    ]


def wget_matrix(
    schedulers: Sequence[str],
    sizes: Sequence[int],
    wifi_values_mbps: Sequence[float] = PAPER_WGET_GRID_MBPS,
    lte_values_mbps: Sequence[float] = PAPER_WGET_GRID_MBPS,
    seed: int = 0,
    executor: Optional[ExperimentExecutor] = None,
) -> Dict[WgetCell, BulkDownloadResult]:
    """The paper's wget sweep: one download per size x cell x scheduler.

    Figs 18 and 19 are slices of this matrix (Fig 18 pins WiFi at 1 Mbps;
    Fig 19 takes the ECF/default completion-time ratio).  Returns
    ``(size, wifi_mbps, lte_mbps, scheduler) -> BulkDownloadResult``.
    """
    cells_and_specs = wget_matrix_specs(
        schedulers, sizes, wifi_values_mbps, lte_values_mbps, seed
    )
    coords = [cell for cell, _ in cells_and_specs]
    specs = [spec for _, spec in cells_and_specs]
    if executor is None:
        executor = ExperimentExecutor()
    return dict(zip(coords, executor.run(specs)))


def bitrate_ratio_matrix(
    grid: Dict[Cell, List[StreamingRunResult]],
    chunk_duration: float = 5.0,
    steady_state: bool = True,
) -> Dict[Cell, float]:
    """Measured-over-ideal average bit rate per cell (Figs 2, 9).

    ``steady_state`` averages only post-startup chunks, which makes
    scaled-down videos comparable to the paper's 20-minute runs (where
    startup is a negligible fraction of the average).
    """
    ratios: Dict[Cell, float] = {}
    for (wifi, lte), runs in grid.items():
        manifest = VideoManifest(chunk_duration=chunk_duration)
        ideal = ideal_average_bitrate([wifi * 1e6, lte * 1e6], manifest)
        if steady_state:
            measured = sum(r.metrics.steady_average_bitrate_bps for r in runs) / len(runs)
        else:
            measured = sum(r.average_bitrate_bps for r in runs) / len(runs)
        ratios[(wifi, lte)] = min(1.0, measured / ideal) if ideal > 0 else 0.0
    return ratios


def fraction_fast_matrix(
    grid: Dict[Cell, List[StreamingRunResult]],
) -> Dict[Cell, float]:
    """Mean fast-subflow traffic fraction per cell (Figs 7, 10)."""
    return {
        cell: sum(r.fraction_fast for r in runs) / len(runs)
        for cell, runs in grid.items()
    }


def throughput_matrix(
    grid: Dict[Cell, List[StreamingRunResult]],
    steady_state: bool = True,
) -> Dict[Cell, float]:
    """Mean per-chunk download throughput per cell, bps (Fig 6)."""
    if steady_state:
        return {
            cell: sum(r.metrics.steady_average_throughput_bps for r in runs) / len(runs)
            for cell, runs in grid.items()
        }
    return {
        cell: sum(r.average_chunk_throughput_bps for r in runs) / len(runs)
        for cell, runs in grid.items()
    }


def format_matrix(
    matrix: Dict[Cell, float],
    wifi_values: Iterable[float],
    lte_values: Iterable[float],
    scale: float = 1.0,
    width: int = 6,
    precision: int = 2,
) -> str:
    """Render a cell->value mapping as an aligned text heat map."""
    wifi_list = list(wifi_values)
    lte_list = list(lte_values)
    header = " " * (width + 1) + " ".join(f"{w:>{width}.1f}" for w in wifi_list)
    lines = [header + "   (WiFi Mbps ->)"]
    for lte in reversed(lte_list):
        row = [f"{lte:>{width}.1f}"]
        for wifi in wifi_list:
            value = matrix[(wifi, lte)] * scale
            row.append(f"{value:>{width}.{precision}f}")
        lines.append(" ".join(row))
    lines.append("(LTE Mbps ^)")
    return "\n".join(lines)
