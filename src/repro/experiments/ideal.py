"""The paper's ideal-performance reference models.

Two idealizations recur through the evaluation:

* **ideal average bit rate** (Figs 2, 9, 15): "the minimum of the
  aggregate total bandwidth and the bandwidth required for the highest
  resolution";
* **ideal fraction of traffic on the fast subflow** (Figs 7, 10): the
  share a fluid model that keeps both pipes full would place there --
  the fast path's share of aggregate bandwidth.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.dash.media import VideoManifest


def ideal_average_bitrate(
    bandwidths_bps: Sequence[float],
    manifest: VideoManifest = None,
) -> float:
    """Ideal average bit rate for a set of path bandwidths, bits/second."""
    if manifest is None:
        manifest = VideoManifest()
    return manifest.ideal_average_bitrate(sum(bandwidths_bps))


def ideal_fast_fraction(fast_bps: float, slow_bps: float) -> float:
    """Fluid-model share of traffic the fast path should carry."""
    total = fast_bps + slow_bps
    if total <= 0:
        raise ValueError("bandwidths must sum to a positive value")
    return fast_bps / total
