"""The ExperimentSpec / RunResult protocol: experiments as plain values.

Every experiment entry point in the library follows one contract:

* a **spec** is a frozen dataclass of plain, JSON-serializable values --
  no live simulator objects -- exposing ``kind`` (a class-level string),
  ``to_dict()`` and ``from_dict()``;
* a **result** is a dataclass exposing ``to_dict()`` / ``from_dict()``
  whose serialized form round-trips losslessly.

That contract is what lets :mod:`repro.experiments.exec` fan runs out to
process-pool workers (specs and results cross the boundary as dicts) and
cache results on disk keyed by :func:`spec_hash` (a content address of
the spec).  Each workload module registers its kind here at import time:

========  ==============================================  ==================
kind      spec                                            runner
========  ==============================================  ==================
streaming :class:`repro.experiments.runner.StreamingSpec` ``run_streaming``
bulk      :class:`repro.apps.bulk.BulkDownloadSpec`       ``run_bulk``
web       :class:`repro.workloads.web.WebBrowsingSpec`    ``run_web``
========  ==============================================  ==================

:func:`run_spec` dispatches a spec of any registered kind to its runner;
:func:`spec_from_dict` / :func:`result_from_dict` rebuild the typed
objects from the wire format.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Mapping, Protocol, runtime_checkable

#: Version of the spec/result wire format.  Bump when a serialized field
#: changes meaning; the cache treats entries from other versions as misses.
SCHEMA_VERSION = 2


@runtime_checkable
class ExperimentSpec(Protocol):
    """What every runnable experiment description provides."""

    kind: str

    def to_dict(self) -> Dict[str, Any]: ...  # pragma: no cover - protocol


@runtime_checkable
class RunResult(Protocol):
    """What every experiment outcome provides."""

    def to_dict(self) -> Dict[str, Any]: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ExperimentKind:
    """One registered experiment family."""

    kind: str
    spec_from_dict: Callable[[Mapping[str, Any]], Any]
    run: Callable[[Any], Any]
    result_from_dict: Callable[[Mapping[str, Any]], Any]


_KINDS: Dict[str, ExperimentKind] = {}


def register_experiment(
    kind: str,
    spec_from_dict: Callable[[Mapping[str, Any]], Any],
    run: Callable[[Any], Any],
    result_from_dict: Callable[[Mapping[str, Any]], Any],
) -> None:
    """Register (or replace) an experiment kind.

    Workload modules call this at import time; tests register throwaway
    kinds to exercise executor edge cases.
    """
    _KINDS[kind] = ExperimentKind(kind, spec_from_dict, run, result_from_dict)


def _ensure_builtin_kinds() -> None:
    """Import the workload modules so their kinds are registered.

    Lazy to avoid import cycles: runner/bulk/web import nothing from the
    executor, and this module imports them only when dispatch is needed
    (notably inside fresh pool-worker processes).
    """
    import repro.apps.bulk  # noqa: F401
    import repro.experiments.runner  # noqa: F401
    import repro.workloads.web  # noqa: F401


def registered_experiment_kinds() -> FrozenSet[str]:
    """Every kind :func:`run_spec` dispatches (built-ins imported first)."""
    _ensure_builtin_kinds()
    return frozenset(_KINDS)


def experiment_kind(kind: str) -> ExperimentKind:
    """Look up a registered kind (importing the built-ins on first use)."""
    if kind not in _KINDS:
        _ensure_builtin_kinds()
    try:
        return _KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown experiment kind {kind!r}; registered: {sorted(_KINDS)}"
        ) from None


def run_spec(spec: ExperimentSpec) -> Any:
    """Execute one spec synchronously in this process."""
    return experiment_kind(spec.kind).run(spec)


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """Wire format of a spec: its kind plus its own ``to_dict``."""
    return {"kind": spec.kind, "spec": spec.to_dict()}


def spec_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild a typed spec from :func:`spec_to_dict` output."""
    return experiment_kind(data["kind"]).spec_from_dict(data["spec"])


def result_from_dict(kind: str, data: Mapping[str, Any]) -> Any:
    """Rebuild a typed result from its serialized form."""
    return experiment_kind(kind).result_from_dict(data)


def attach_perf(result: RunResult, perf: Dict[str, Any]) -> None:
    """Attach a per-run perf record to a result's optional ``perf`` field.

    Every registered result type carries ``perf`` as an additive optional
    field (absent from the wire format when None).  Results may be frozen
    dataclasses, so the write goes through ``object.__setattr__``.
    """
    if not hasattr(result, "perf"):
        raise TypeError(
            f"{type(result).__name__} has no 'perf' field; results must "
            "declare one to carry perf records"
        )
    object.__setattr__(result, "perf", perf)


def canonical_json(data: Any) -> str:
    """Deterministic JSON used for hashing and byte-comparable storage."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_hash(spec: ExperimentSpec) -> str:
    """Content address of a spec: sha256 over its canonical wire form.

    Stable across processes and sessions (unlike ``hash()``), so it keys
    the on-disk result cache.  The schema version is mixed in: a wire-
    format change invalidates old cache entries rather than mis-reading
    them.
    """
    payload = {"schema_version": SCHEMA_VERSION, **spec_to_dict(spec)}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
