"""In-the-wild emulation (Section 6).

The paper moved the server to a Washington D.C. cloud VM and used a public
town WiFi plus AT&T LTE as-is, observing

* nine streaming runs over two days whose WiFi RTT spanned ~70 ms to ~1 s
  while LTE stayed near 70 ms (Fig 22), and
* thirty full CNN-page loads (Fig 23, Table 4).

We emulate each run by drawing a fresh pair of path profiles from the
``wild_*`` distributions (seeded per run index, shared across schedulers
so Default and ECF see identical conditions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import StreamingRunConfig, StreamingRunResult, run_streaming
from repro.net.profiles import PathConfig, wild_lte_config, wild_wifi_config
from repro.workloads.web import WebBrowsingResult, run_web_browsing


def wild_path_pair(run_index: int, base_seed: int = 6) -> Tuple[PathConfig, PathConfig]:
    """Draw the (WiFi, LTE) profiles for one wild run, deterministically."""
    rng = random.Random(base_seed * 100_003 + run_index)
    return wild_wifi_config(rng), wild_lte_config(rng)


@dataclass
class WildStreamingRun:
    """One Fig 22 run: RTTs and throughput per scheduler."""

    run_index: int
    wifi_config: PathConfig
    lte_config: PathConfig
    results: Dict[str, StreamingRunResult]

    def mean_rtt_ms(self, scheduler: str, interface: str) -> float:
        return self.results[scheduler].mean_rtt_by_interface.get(interface, 0.0) * 1e3

    def throughput_mbps(self, scheduler: str) -> float:
        return self.results[scheduler].average_chunk_throughput_bps / 1e6


def run_wild_streaming(
    schedulers: Sequence[str] = ("minrtt", "ecf"),
    runs: int = 9,
    video_duration: float = 120.0,
    base_seed: int = 6,
) -> List[WildStreamingRun]:
    """Fig 22: per-run RTT and streaming throughput, Default vs ECF.

    Runs are sorted by the drawn WiFi RTT, as the paper sorts its x-axis.
    """
    drawn = sorted(
        (wild_path_pair(i, base_seed) for i in range(runs)),
        key=lambda pair: pair[0].one_way_delay,
    )
    out: List[WildStreamingRun] = []
    for index, (wifi, lte) in enumerate(drawn, start=1):
        results: Dict[str, StreamingRunResult] = {}
        for scheduler in schedulers:
            config = StreamingRunConfig(
                scheduler=scheduler,
                video_duration=video_duration,
                path_configs=(wifi, lte),
                seed=base_seed + index,
            )
            results[scheduler] = run_streaming(config)
        out.append(
            WildStreamingRun(
                run_index=index, wifi_config=wifi, lte_config=lte, results=results
            )
        )
    return out


def run_wild_web(
    schedulers: Sequence[str] = ("minrtt", "ecf"),
    runs: int = 30,
    base_seed: int = 23,
) -> Dict[str, List[WebBrowsingResult]]:
    """Fig 23 / Table 4: wild CNN-page loads, Default vs ECF."""
    out: Dict[str, List[WebBrowsingResult]] = {name: [] for name in schedulers}
    for run_index in range(runs):
        wifi, lte = wild_path_pair(run_index, base_seed)
        for scheduler in schedulers:
            out[scheduler].append(
                run_web_browsing(
                    scheduler,
                    (wifi, lte),
                    seed=base_seed + run_index,
                )
            )
    return out
