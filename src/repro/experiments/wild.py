"""In-the-wild emulation (Section 6).

The paper moved the server to a Washington D.C. cloud VM and used a public
town WiFi plus AT&T LTE as-is, observing

* nine streaming runs over two days whose WiFi RTT spanned ~70 ms to ~1 s
  while LTE stayed near 70 ms (Fig 22), and
* thirty full CNN-page loads (Fig 23, Table 4).

We emulate each run by drawing a fresh pair of path profiles from the
``wild_*`` distributions (seeded per run index, shared across schedulers
so Default and ECF see identical conditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.exec import ExperimentExecutor
from repro.experiments.runner import StreamingRunConfig, StreamingRunResult
from repro.net.profiles import PathConfig, wild_lte_config, wild_wifi_config
from repro.sim.rng import RngRegistry
from repro.workloads.web import WebBrowsingResult, WebBrowsingSpec


def wild_path_pair(run_index: int, base_seed: int = 6) -> Tuple[PathConfig, PathConfig]:
    """Draw the (WiFi, LTE) profiles for one wild run, deterministically.

    Each run index gets its own :class:`RngRegistry` stream, so adding
    runs (or new consumers of randomness) never perturbs existing draws.
    """
    rng = RngRegistry(base_seed).stream(f"wild.run{run_index}")
    return wild_wifi_config(rng), wild_lte_config(rng)


@dataclass
class WildStreamingRun:
    """One Fig 22 run: RTTs and throughput per scheduler."""

    run_index: int
    wifi_config: PathConfig
    lte_config: PathConfig
    results: Dict[str, StreamingRunResult]

    def mean_rtt_ms(self, scheduler: str, interface: str) -> float:
        return self.results[scheduler].mean_rtt_by_interface.get(interface, 0.0) * 1e3

    def throughput_mbps(self, scheduler: str) -> float:
        return self.results[scheduler].average_chunk_throughput_bps / 1e6


@dataclass(frozen=True)
class WildStreamingSpec:
    """Frozen description of the Fig 22 campaign -- a plain value.

    The campaign is fully determined by these fields: path profiles are
    drawn from ``base_seed`` per run index, and each (run, scheduler)
    cell becomes one :class:`StreamingRunConfig` submitted through the
    executor.
    """

    kind: ClassVar[str] = "wild_streaming"

    schedulers: Tuple[str, ...] = ("minrtt", "ecf")
    runs: int = 9
    video_duration: float = 120.0
    base_seed: int = 6

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedulers", tuple(self.schedulers))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schedulers": list(self.schedulers),
            "runs": self.runs,
            "video_duration": self.video_duration,
            "base_seed": self.base_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WildStreamingSpec":
        data = dict(data)
        data["schedulers"] = tuple(data["schedulers"])
        return cls(**data)


@dataclass
class WildStreamingResult:
    """Fig 22 outcome: the sorted run list, serializable as one value."""

    spec: WildStreamingSpec
    runs: List[WildStreamingRun]

    def to_dict(self) -> Dict[str, Any]:
        from dataclasses import asdict

        return {
            "schema_version": 2,
            "kind": "wild_streaming",
            "spec": self.spec.to_dict(),
            "runs": [
                {
                    "run_index": run.run_index,
                    "wifi_config": asdict(run.wifi_config),
                    "lte_config": asdict(run.lte_config),
                    "results": {
                        name: result.to_dict()
                        for name, result in run.results.items()
                    },
                }
                for run in self.runs
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WildStreamingResult":
        return cls(
            spec=WildStreamingSpec.from_dict(data["spec"]),
            runs=[
                WildStreamingRun(
                    run_index=run["run_index"],
                    wifi_config=PathConfig(**run["wifi_config"]),
                    lte_config=PathConfig(**run["lte_config"]),
                    results={
                        name: StreamingRunResult.from_dict(result)
                        for name, result in run["results"].items()
                    },
                )
                for run in data["runs"]
            ],
        )


def _wild_cells(
    spec: WildStreamingSpec,
) -> Tuple[
    List[Tuple[PathConfig, PathConfig]],
    List[Tuple[int, str]],
    List[StreamingRunConfig],
]:
    """``(drawn path pairs, (run, scheduler) cells, streaming specs)``."""
    drawn = sorted(
        (wild_path_pair(i, spec.base_seed) for i in range(spec.runs)),
        key=lambda pair: pair[0].one_way_delay,
    )
    cells: List[Tuple[int, str]] = []
    configs: List[StreamingRunConfig] = []
    for index, (wifi, lte) in enumerate(drawn, start=1):
        for scheduler in spec.schedulers:
            cells.append((index, scheduler))
            configs.append(
                StreamingRunConfig(
                    scheduler=scheduler,
                    video_duration=spec.video_duration,
                    path_configs=(wifi, lte),
                    seed=spec.base_seed + index,
                )
            )
    return drawn, cells, configs


def wild_streaming_configs(spec: WildStreamingSpec) -> List[StreamingRunConfig]:
    """The independent streaming specs one wild campaign executes.

    Deterministic in ``spec`` alone, so the same campaign can be sharded
    into jobs (``repro.cli campaign submit --sweep wild``) and later
    re-assembled by :func:`run_wild` from cached results.
    """
    _, _, configs = _wild_cells(spec)
    return configs


def run_wild(
    spec: WildStreamingSpec,
    executor: Optional[ExperimentExecutor] = None,
) -> WildStreamingResult:
    """Fig 22: per-run RTT and streaming throughput, Default vs ECF.

    Runs are sorted by the drawn WiFi RTT, as the paper sorts its x-axis.
    Every (run, scheduler) cell is an independent streaming spec with a
    deterministic seed (``base_seed + sorted run index``, shared across
    schedulers so each scheduler sees identical conditions), submitted
    through ``executor`` -- or run serially when none is given.
    """
    drawn, cells, configs = _wild_cells(spec)
    if executor is None:
        executor = ExperimentExecutor()
    run_results = executor.run(configs)

    by_index: Dict[int, Dict[str, StreamingRunResult]] = {}
    for (index, scheduler), result in zip(cells, run_results):
        by_index.setdefault(index, {})[scheduler] = result
    runs = [
        WildStreamingRun(
            run_index=index,
            wifi_config=wifi,
            lte_config=lte,
            results=by_index[index],
        )
        for index, (wifi, lte) in enumerate(drawn, start=1)
    ]
    return WildStreamingResult(spec=spec, runs=runs)


def run_wild_streaming(
    schedulers: Sequence[str] = ("minrtt", "ecf"),
    runs: int = 9,
    video_duration: float = 120.0,
    base_seed: int = 6,
    executor: Optional[ExperimentExecutor] = None,
) -> List[WildStreamingRun]:
    """Positional-argument wrapper around :func:`run_wild`.

    .. deprecated:: 1.1
        Build a :class:`WildStreamingSpec` and call :func:`run_wild`.
        Kept so existing examples and benchmarks run unchanged.
    """
    spec = WildStreamingSpec(
        schedulers=tuple(schedulers),
        runs=runs,
        video_duration=video_duration,
        base_seed=base_seed,
    )
    return run_wild(spec, executor=executor).runs


def run_wild_web(
    schedulers: Sequence[str] = ("minrtt", "ecf"),
    runs: int = 30,
    base_seed: int = 23,
    executor: Optional[ExperimentExecutor] = None,
) -> Dict[str, List[WebBrowsingResult]]:
    """Fig 23 / Table 4: wild CNN-page loads, Default vs ECF.

    Each (run, scheduler) page load is one :class:`WebBrowsingSpec`
    submitted through ``executor`` (serial when omitted).
    """
    cells: List[Tuple[str, int]] = []
    specs: List[WebBrowsingSpec] = []
    for run_index in range(runs):
        wifi, lte = wild_path_pair(run_index, base_seed)
        for scheduler in schedulers:
            cells.append((scheduler, run_index))
            specs.append(
                WebBrowsingSpec(
                    scheduler=scheduler,
                    path_configs=(wifi, lte),
                    seed=base_seed + run_index,
                )
            )
    if executor is None:
        executor = ExperimentExecutor()
    out: Dict[str, List[WebBrowsingResult]] = {name: [] for name in schedulers}
    for (scheduler, _), result in zip(cells, executor.run(specs)):
        out[scheduler].append(result)
    return out
