"""Collate per-figure benchmark outputs into one reproduction report.

Each benchmark harness under ``benchmarks/`` writes its paper-shaped table
to ``benchmarks/output/<figure>.txt``.  :func:`collate_report` stitches
those files into a single markdown document, in the paper's figure order,
so the whole reproduction can be reviewed in one place::

    pytest benchmarks/ --benchmark-only     # produce the outputs
    python -m repro.cli report              # collate them
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

#: Paper order and titles for the collated report.
FIGURE_INDEX: Tuple[Tuple[str, str], ...] = (
    ("fig01_onoff", "Figure 1: ON-OFF download behaviour"),
    ("fig02_default_heatmap", "Figure 2: bit-rate ratio, default scheduler"),
    ("fig03_sndbuf", "Figure 3: send-buffer occupancy"),
    ("fig05_lastpacket", "Figure 5: last-packet time difference CDF"),
    ("fig06_cwnd_reset", "Figure 6: throughput with/without CWND reset"),
    ("fig07_fraction_default", "Figure 7: fast-subflow fraction, default"),
    ("tab02_rtt", "Table 2: average RTT per bandwidth regulation"),
    ("fig09_scheduler_heatmaps", "Figure 9: bit-rate ratio, all schedulers"),
    ("fig10_fraction_ecf", "Figure 10: fast-subflow fraction, BLEST/ECF"),
    ("fig11_12_cwnd_traces", "Figures 11-12: CWND traces"),
    ("tab03_iw_resets", "Table 3: initial-window resets"),
    ("fig13_ooo_default", "Figure 13: out-of-order delay, default"),
    ("fig14_ooo_schedulers", "Figure 14: out-of-order delay, all schedulers"),
    ("fig15_four_subflows", "Figure 15: four subflows"),
    ("fig16_random_bw", "Figure 16: random bandwidth scenarios"),
    ("fig17_chunk_trace", "Figure 17: per-chunk throughput trace"),
    ("fig18_wget", "Figure 18: wget completion times"),
    ("fig19_wget_ratio", "Figure 19: ECF/default completion ratio"),
    ("fig20_21_web", "Figures 20-21: Web browsing, testbed"),
    ("fig22_wild_streaming", "Figure 22: streaming in the wild"),
    ("fig23_tab04_wild_web", "Figure 23 / Table 4: Web browsing in the wild"),
    ("ext_shared_bottleneck", "Extension: coupled-CC fairness on a shared bottleneck"),
    ("ext_mpdash", "Extension: ECF vs MP-DASH-style path management"),
    ("ablation_beta", "Ablation: ECF hysteresis beta"),
    ("ablation_second_inequality", "Ablation: ECF second inequality"),
    ("ablation_congestion_control", "Ablation: congestion controller"),
)


def collate_report(
    output_dir: Path,
    index: Sequence[Tuple[str, str]] = FIGURE_INDEX,
) -> str:
    """Build the markdown report from whatever outputs exist.

    Missing figures are listed as not-yet-generated rather than failing,
    so a partial benchmark run still collates.
    """
    sections: List[str] = [
        "# ECF reproduction report",
        "",
        "Generated from `benchmarks/output/*.txt` "
        "(run `pytest benchmarks/ --benchmark-only` to refresh).",
    ]
    missing: List[str] = []
    for name, title in index:
        path = output_dir / f"{name}.txt"
        sections.append(f"\n## {title}\n")
        if path.exists():
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
        else:
            sections.append("*(not yet generated)*")
            missing.append(name)
    if missing:
        sections.append(
            "\n---\nMissing outputs: " + ", ".join(missing)
        )
    return "\n".join(sections) + "\n"


def default_output_dir(start: Optional[Path] = None) -> Path:
    """Locate ``benchmarks/output`` relative to the repository root."""
    base = start or Path.cwd()
    for candidate in (base, *base.parents):
        output = candidate / "benchmarks" / "output"
        if output.is_dir():
            return output
    return base / "benchmarks" / "output"
