"""Counterfactual twin runs: per-decision regret for ECF's Algorithm 1.

The fg-inet MPTCP kernel prototyped a dual real/predict execution mode
(``pRun``/``NOPREDICT``); this module replays that idea in simulation
using :mod:`repro.sim.snapshot`.  A *recording pass* runs a bulk download
to completion, logging every :class:`~repro.analysis.events.EcfDecision`
and taking periodic event-boundary checkpoints.  Then, for each logged
decision, the world is restored from the latest checkpoint preceding it
and re-run with the **opposite** wait/send choice forced
(:meth:`~repro.core.ecf.EcfScheduler.force_decision`); replay determinism
makes the two futures identical up to that single flipped decision.

The per-decision *regret* record quantifies the paper's Section 3.2
tradeoff directly: when ECF chose ``wait``, the forced ``slow`` branch is
exactly what minRTT would have done at that instant, so
``completion_delta > 0`` means ECF's wait beat minRTT's send-on-slow by
that many seconds (and vice versa for forced waits).

Because the same machinery replays the *unchanged* decision too, it
doubles as a self-check: :func:`verify_fork_equivalence` asserts that a
fork forcing the recorded choice finishes byte-identical to the straight
run -- the fork-equivalence acceptance gate wired into CI.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import events as _events
from repro.apps.bulk import BulkDownloadResult, BulkDownloadSpec
from repro.apps.http import GetResult, HttpSession
from repro.core.ecf import EcfScheduler
from repro.core.spec import SchedulerSpec, build
from repro.experiments.spec import canonical_json
from repro.mptcp.connection import MptcpConnection
from repro.net.profiles import make_path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.snapshot import Snapshot, capture, fork

#: Events per checkpoint in the recording pass.  Small enough that a
#: forked future replays only a short shared prefix, large enough that
#: checkpointing stays a fraction of the run.
DEFAULT_CHECKPOINT_EVERY = 2_000


class _CompletionRecorder:
    """Snapshot-safe replacement for ``run_bulk``'s completion closure."""

    STATE_FIELDS = ("result",)

    def __init__(self) -> None:
        self.result: Optional[GetResult] = None

    def on_complete(self, result: GetResult) -> None:
        self.result = result


@dataclass
class TwinWorld:
    """One buildable, snapshottable bulk-download world."""

    spec: BulkDownloadSpec
    sim: Simulator
    conn: MptcpConnection
    session: HttpSession
    recorder: _CompletionRecorder
    rngs: RngRegistry

    def roots(self) -> Dict[str, Any]:
        # The registry is only consulted at build time, but keeping it a
        # root means a restored world can mint *new* streams too.
        return {
            "conn": self.conn,
            "session": self.session,
            "recorder": self.recorder,
            "rngs": self.rngs,
        }

    def run_to_completion(self) -> BulkDownloadResult:
        self.sim.run(until=self.spec.timeout)
        return finish(self.spec, self.conn, self.recorder)


def build_world(spec: BulkDownloadSpec) -> TwinWorld:
    """Construct the ``run_bulk`` world with a snapshottable recorder.

    Mirrors :func:`repro.apps.bulk.run_bulk` construction order exactly
    (same RNG stream names, same scheduler build, same connection name),
    so the straight-line result -- and its golden digest -- is identical;
    only the completion closure is replaced by a bound method the
    snapshot protocol can rebind.
    """
    sim = Simulator()
    rngs = RngRegistry(spec.seed)
    paths = [
        make_path(sim, pc, rngs.stream(f"loss.{i}.{pc.name}"))
        for i, pc in enumerate(spec.path_configs)
    ]
    scheduler = build(SchedulerSpec.of(spec.scheduler, **spec.scheduler_params))
    conn = MptcpConnection(
        sim, paths, scheduler, config=spec.connection, name=f"wget-{spec.scheduler}"
    )
    session = HttpSession(sim, conn)
    recorder = _CompletionRecorder()
    session.get(spec.size, recorder.on_complete)
    return TwinWorld(spec=spec, sim=sim, conn=conn,
                     session=session, recorder=recorder, rngs=rngs)


def finish(
    spec: BulkDownloadSpec, conn: MptcpConnection, recorder: _CompletionRecorder
) -> BulkDownloadResult:
    """Assemble the :class:`BulkDownloadResult`, as ``run_bulk`` does."""
    if recorder.result is None:
        raise RuntimeError(
            f"download of {spec.size} bytes with {spec.scheduler!r} did not "
            f"complete within {spec.timeout} s (delivered "
            f"{conn.delivered_bytes} bytes)"
        )
    payload_by_path: Dict[str, int] = {}
    for sf in conn.subflows:
        payload_by_path[sf.path.name] = (
            payload_by_path.get(sf.path.name, 0) + sf.stats.payload_bytes_sent
        )
    return BulkDownloadResult(
        scheduler=spec.scheduler,
        size=spec.size,
        completion_time=recorder.result.completion_time,
        payload_by_path=payload_by_path,
        ooo_delays_max=max(conn.receiver.ooo_delays, default=0.0),
        reinjections=conn.reinjections,
    )


def result_digest(result: BulkDownloadResult) -> str:
    """The golden-digest fingerprint (same scheme as the perf suite)."""
    return hashlib.sha256(canonical_json(result.to_dict()).encode()).hexdigest()


# ----------------------------------------------------------------------
# Recording pass
# ----------------------------------------------------------------------


@dataclass
class Recording:
    """Straight-line run plus everything needed to fork any decision."""

    spec: BulkDownloadSpec
    result: BulkDownloadResult
    digest: str
    decisions: List[_events.EcfDecision]
    #: ``(ecf_decisions count at capture, snapshot)`` in capture order;
    #: the first entry is the t=0 world.
    checkpoints: List[Tuple[int, Snapshot]] = field(repr=False, default_factory=list)

    def checkpoint_before(self, index: int) -> Snapshot:
        """Latest checkpoint taken before decision ``index`` happened."""
        best = self.checkpoints[0][1]
        for count, snap in self.checkpoints:
            if count <= index:
                best = snap
            else:
                break
        return best


def record(
    spec: BulkDownloadSpec, checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
) -> Recording:
    """Run ``spec`` to completion, logging decisions and checkpointing."""
    world = build_world(spec)
    scheduler = world.conn.scheduler
    checkpoints = [(0, capture(world.sim, world.roots()))]
    with _events.recording() as log:
        while True:
            executed = world.sim.run(until=spec.timeout, max_events=checkpoint_every)
            count = getattr(scheduler, "ecf_decisions", 0)
            checkpoints.append((count, capture(world.sim, world.roots())))
            if executed < checkpoint_every:
                break
        decisions = log.of_kind(_events.EcfDecision)
    result = finish(spec, world.conn, world.recorder)
    return Recording(
        spec=spec,
        result=result,
        digest=result_digest(result),
        decisions=decisions,
        checkpoints=checkpoints,
    )


def _replay_forced(
    recording: Recording, index: int, choice: str
) -> BulkDownloadResult:
    """Restore the pre-decision world, force ``choice``, run it out."""
    spec = recording.spec

    def override(world: Dict[str, Any]) -> None:
        scheduler = world["conn"].scheduler
        if not isinstance(scheduler, EcfScheduler):
            raise TypeError(
                f"twin forks need an EcfScheduler, got {type(scheduler).__name__}"
            )
        scheduler.force_decision(index, choice)

    world = fork(recording.checkpoint_before(index), override)
    world["sim"].run(until=spec.timeout)
    return finish(spec, world["conn"], world["recorder"])


# ----------------------------------------------------------------------
# The twin report
# ----------------------------------------------------------------------


def twin_report(
    spec: BulkDownloadSpec,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    max_decisions: Optional[int] = None,
) -> Dict[str, Any]:
    """Per-decision ECF-vs-minRTT regret over one bulk download.

    For every logged ECF decision (up to ``max_decisions``), forks the
    recorded world, forces the opposite choice, runs the counterfactual
    future to completion, and reports the completion-time and max
    out-of-order-delay deltas (``counterfactual - actual``; positive
    means the scheduler's actual choice was the better one).
    """
    recording = record(spec, checkpoint_every=checkpoint_every)
    picked = recording.decisions
    truncated = 0
    if max_decisions is not None and len(picked) > max_decisions:
        truncated = len(picked) - max_decisions
        picked = picked[:max_decisions]
    records: List[Dict[str, Any]] = []
    for index, decision in enumerate(picked):
        opposite = "slow" if decision.decision == "wait" else "wait"
        counterfactual = _replay_forced(recording, index, opposite)
        records.append({
            "index": index,
            "t": decision.t,
            "decision": decision.decision,
            "forced": opposite,
            "k_segments": decision.k_segments,
            "rtt_f": decision.rtt_f,
            "rtt_s": decision.rtt_s,
            "completion_time": counterfactual.completion_time,
            "completion_delta": (
                counterfactual.completion_time - recording.result.completion_time
            ),
            "ooo_delays_max": counterfactual.ooo_delays_max,
            "ooo_delta": (
                counterfactual.ooo_delays_max - recording.result.ooo_delays_max
            ),
        })
    return {
        "kind": "twin_report",
        "spec": spec.to_dict(),
        "baseline": recording.result.to_dict(),
        "baseline_digest": recording.digest,
        "decisions_total": len(recording.decisions),
        "decisions_replayed": len(records),
        "decisions_truncated": truncated,
        "regret": records,
    }


def verify_fork_equivalence(
    spec: BulkDownloadSpec, checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
) -> Dict[str, Any]:
    """Prove fork + unchanged decision replays byte-identical.

    Replays the *recorded* choice of the first logged decision from the
    nearest checkpoint (and, when no decision was logged, just restores
    the t=0 checkpoint) and compares result digests with the straight
    run.  Returns a report dict; ``ok`` is the gate.
    """
    recording = record(spec, checkpoint_every=checkpoint_every)
    if recording.decisions:
        replayed = _replay_forced(recording, 0, recording.decisions[0].decision)
    else:
        world = fork(recording.checkpoints[0][1])
        world["sim"].run(until=spec.timeout)
        replayed = finish(spec, world["conn"], world["recorder"])
    replay_digest = result_digest(replayed)
    return {
        "kind": "fork_equivalence",
        "spec": spec.to_dict(),
        "decisions_total": len(recording.decisions),
        "baseline_digest": recording.digest,
        "replay_digest": replay_digest,
        "ok": replay_digest == recording.digest,
    }
