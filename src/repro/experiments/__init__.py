"""Experiment harnesses: one entry point per paper figure/table.

* :mod:`~repro.experiments.ideal` -- the paper's ideal-performance models
  (ideal average bit rate, ideal fast-subflow traffic fraction).
* :mod:`~repro.experiments.runner` -- configurable single-run harnesses
  for streaming, bulk-download, and Web workloads.
* :mod:`~repro.experiments.grid` -- the 6x6 / 10x10 bandwidth-grid sweeps
  behind the heat-map figures.
* :mod:`~repro.experiments.wild` -- the Section 6 in-the-wild emulation.
"""

from repro.experiments.ideal import ideal_average_bitrate, ideal_fast_fraction
from repro.experiments.runner import (
    StreamingRunConfig,
    StreamingRunResult,
    run_streaming,
)
from repro.experiments.grid import (
    PAPER_BANDWIDTH_GRID_MBPS,
    streaming_grid,
)

__all__ = [
    "ideal_average_bitrate",
    "ideal_fast_fraction",
    "StreamingRunConfig",
    "StreamingRunResult",
    "run_streaming",
    "streaming_grid",
    "PAPER_BANDWIDTH_GRID_MBPS",
]
