"""Experiment harnesses: one entry point per paper figure/table.

* :mod:`~repro.experiments.ideal` -- the paper's ideal-performance models
  (ideal average bit rate, ideal fast-subflow traffic fraction).
* :mod:`~repro.experiments.spec` -- the ExperimentSpec/RunResult protocol
  every harness follows (frozen specs in, serializable results out).
* :mod:`~repro.experiments.exec` -- the parallel executor: process-pool
  fan-out, content-addressed result caching, timeouts, retries, progress.
* :mod:`~repro.experiments.runner` -- configurable single-run harnesses
  for streaming, bulk-download, and Web workloads.
* :mod:`~repro.experiments.grid` -- the 6x6 / 10x10 bandwidth-grid sweeps
  behind the heat-map figures.
* :mod:`~repro.experiments.wild` -- the Section 6 in-the-wild emulation.
"""

from repro.experiments.ideal import ideal_average_bitrate, ideal_fast_fraction
from repro.experiments.exec import (
    ExperimentExecutor,
    run_specs,
)
from repro.experiments.runner import (
    StreamingRunConfig,
    StreamingRunResult,
    StreamingSpec,
    run_streaming,
)
from repro.experiments.grid import (
    PAPER_BANDWIDTH_GRID_MBPS,
    PAPER_WGET_GRID_MBPS,
    streaming_grid,
    wget_matrix,
)
from repro.experiments.spec import run_spec, spec_hash

__all__ = [
    "ideal_average_bitrate",
    "ideal_fast_fraction",
    "ExperimentExecutor",
    "run_specs",
    "run_spec",
    "spec_hash",
    "StreamingRunConfig",
    "StreamingRunResult",
    "StreamingSpec",
    "run_streaming",
    "streaming_grid",
    "wget_matrix",
    "PAPER_BANDWIDTH_GRID_MBPS",
    "PAPER_WGET_GRID_MBPS",
]
