"""Single-run experiment harnesses.

:func:`run_streaming` builds the full stack -- paths, MPTCP connection,
HTTP session, DASH player -- for one streaming session and returns every
metric any of the paper's streaming figures needs: average bit rate,
per-chunk throughput, fast-subflow traffic fraction, IW-reset counts,
out-of-order delays, last-packet gaps, mean RTTs, and optional CWND /
send-buffer / player traces.

The same harness covers fixed bandwidths (Figs 2, 9), the idle-reset
ablation (Fig 6), multi-subflow runs (Fig 15), random bandwidth processes
(Figs 16, 17), and in-the-wild path profiles (Fig 22) -- each is just a
different :class:`StreamingRunConfig`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Tuple

from repro.apps.dash.abr import make_abr
from repro.apps.dash.media import VideoManifest
from repro.apps.dash.player import DashPlayer, StreamingMetrics
from repro.apps.http import HttpSession
from repro.core.spec import SchedulerSpec, build
from repro.metrics.collectors import PeriodicSampler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.bandwidth import BandwidthSpec, make_bandwidth_process
from repro.net.path import Path
from repro.net.profiles import PathConfig, lte_config, make_path, wifi_config
from repro.obs import flight as _flight
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def _coerce_process(process: Optional[object]) -> Optional[object]:
    """Normalize a bandwidth process argument toward a serializable spec.

    :class:`~repro.net.bandwidth.BandwidthSpec` and ``None`` pass through;
    live process objects that know their spec (``to_spec``) are converted,
    which keeps the config picklable.  Duck-typed processes without a spec
    are kept live -- they still run serially, but the config refuses to
    serialize (the executor and cache need plain values).
    """
    if process is None or isinstance(process, BandwidthSpec):
        return process
    to_spec = getattr(process, "to_spec", None)
    if callable(to_spec):
        return to_spec()
    return process


@dataclass(frozen=True)
class StreamingRunConfig:
    """Everything one streaming session depends on -- as a plain value.

    ``wifi_mbps``/``lte_mbps`` set fixed regulated bandwidths; a
    ``wifi_process``/``lte_process`` (a
    :class:`~repro.net.bandwidth.BandwidthSpec`, or a live process with
    ``to_spec()`` which is converted on construction) overrides them over
    time; ``path_configs`` replaces the testbed profiles entirely (used
    by the in-the-wild runs).

    The config is frozen and holds no simulator state, so it can cross a
    process-pool boundary and serve as a cache key
    (:func:`repro.experiments.spec.spec_hash`).  Use
    :func:`dataclasses.replace` to derive variants.
    """

    kind: ClassVar[str] = "streaming"

    scheduler: str = "minrtt"
    scheduler_params: Dict = field(default_factory=dict)
    wifi_mbps: float = 8.6
    lte_mbps: float = 8.6
    video_duration: float = 120.0
    chunk_duration: float = 5.0
    seed: int = 0
    congestion_control: str = "coupled"
    idle_reset_enabled: bool = True
    penalization_enabled: bool = True
    abr: str = "bba"
    max_buffer: float = 25.0
    subflows_per_interface: int = 1
    wifi_process: Optional[object] = None
    lte_process: Optional[object] = None
    path_configs: Optional[Tuple[PathConfig, ...]] = None
    record_traces: bool = False
    record_delays: bool = True
    sample_period: float = 0.1
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "wifi_process", _coerce_process(self.wifi_process))
        object.__setattr__(self, "lte_process", _coerce_process(self.lte_process))
        if self.path_configs is not None:
            object.__setattr__(self, "path_configs", tuple(self.path_configs))

    def effective_time_limit(self) -> float:
        """Simulation cap: generous but finite."""
        if self.time_limit is not None:
            return self.time_limit
        return 3.0 * self.video_duration + 120.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the spec side of the wire format)."""

        def process_dict(process: Optional[object]) -> Optional[Dict[str, Any]]:
            if process is None:
                return None
            if not isinstance(process, BandwidthSpec):
                raise TypeError(
                    f"{type(process).__name__} bandwidth process is not "
                    f"serializable; use a BandwidthSpec (or a process with "
                    f"to_spec()) to run through the executor or cache"
                )
            return process.to_dict()

        return {
            "scheduler": self.scheduler,
            "scheduler_params": dict(self.scheduler_params),
            "wifi_mbps": self.wifi_mbps,
            "lte_mbps": self.lte_mbps,
            "video_duration": self.video_duration,
            "chunk_duration": self.chunk_duration,
            "seed": self.seed,
            "congestion_control": self.congestion_control,
            "idle_reset_enabled": self.idle_reset_enabled,
            "penalization_enabled": self.penalization_enabled,
            "abr": self.abr,
            "max_buffer": self.max_buffer,
            "subflows_per_interface": self.subflows_per_interface,
            "wifi_process": process_dict(self.wifi_process),
            "lte_process": process_dict(self.lte_process),
            "path_configs": (
                None
                if self.path_configs is None
                else [asdict(pc) for pc in self.path_configs]
            ),
            "record_traces": self.record_traces,
            "record_delays": self.record_delays,
            "sample_period": self.sample_period,
            "time_limit": self.time_limit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamingRunConfig":
        data = dict(data)
        for key in ("wifi_process", "lte_process"):
            if data.get(key) is not None:
                data[key] = BandwidthSpec.from_dict(data[key])
        if data.get("path_configs") is not None:
            data["path_configs"] = tuple(
                PathConfig(**pc) for pc in data["path_configs"]
            )
        return cls(**data)


#: Protocol-style alias: the frozen spec the ``streaming`` kind runs.
StreamingSpec = StreamingRunConfig


@dataclass
class StreamingRunResult:
    """Everything the streaming figures read out of one session."""

    config: StreamingRunConfig
    metrics: StreamingMetrics
    finished: bool
    fast_interface: str
    payload_by_interface: Dict[str, int]
    iw_resets_by_interface: Dict[str, int]
    idle_resets_by_interface: Dict[str, int]
    mean_rtt_by_interface: Dict[str, float]
    ooo_delays: List[float]
    last_packet_gaps: List[float]
    reinjections: int
    trace: Optional[TraceRecorder]
    #: Optional per-run perf record (``PerfRecord.to_dict()``), attached by
    #: the executor when ``REPRO_PERF=1``; absent from the wire format when
    #: None so cached v2 payloads stay valid.
    perf: Optional[Dict[str, Any]] = None

    @property
    def average_bitrate_bps(self) -> float:
        return self.metrics.average_bitrate_bps

    @property
    def average_chunk_throughput_bps(self) -> float:
        """Mean per-chunk download throughput (Figs 6, 16)."""
        rates = self.metrics.chunk_throughputs_bps()
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def fraction_fast(self) -> float:
        """Share of payload carried by the fast interface (Figs 7, 10)."""
        total = sum(self.payload_by_interface.values())
        if total == 0:
            return 0.0
        return self.payload_by_interface.get(self.fast_interface, 0) / total

    def to_dict(self) -> Dict[str, Any]:
        """Lossless, JSON-serializable form (cache/worker wire format)."""
        from repro.metrics.export import streaming_result_to_dict

        return streaming_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamingRunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from repro.metrics.export import streaming_result_from_dict

        return streaming_result_from_dict(data)


def _build_paths(sim: Simulator, config: StreamingRunConfig, rngs: RngRegistry) -> List[Path]:
    if config.path_configs is not None:
        configs = list(config.path_configs)
    else:
        n = config.subflows_per_interface
        if n < 1:
            raise ValueError("subflows_per_interface must be >= 1")
        # Fig 15: subflows over one interface evenly split its bandwidth.
        configs = [wifi_config(config.wifi_mbps / n) for _ in range(n)]
        configs += [lte_config(config.lte_mbps / n) for _ in range(n)]
    return [
        make_path(sim, pc, rngs.stream(f"loss.{index}.{pc.name}"))
        for index, pc in enumerate(configs)
    ]


def _fast_interface(config: StreamingRunConfig, paths: List[Path]) -> str:
    if config.path_configs is not None:
        # Wild runs: the faster interface is the higher-bandwidth one.
        return max(paths, key=lambda p: p.rate_bps).name
    # Ties go to WiFi, whose RTT is lower at equal regulation (Table 2).
    return "wifi" if config.wifi_mbps >= config.lte_mbps else "lte"


def run_streaming(config: StreamingRunConfig) -> StreamingRunResult:
    """Execute one full streaming session and collect its metrics."""
    sim = Simulator()
    rngs = RngRegistry(config.seed)
    paths = _build_paths(sim, config, rngs)

    for interface, process in (("wifi", config.wifi_process), ("lte", config.lte_process)):
        if process is None:
            continue
        # Specs are realized into a fresh live process per run; legacy
        # duck-typed processes attach directly.
        if isinstance(process, BandwidthSpec):
            process = make_bandwidth_process(process)
        for path in paths:
            if path.name == interface:
                process.attach(sim, path)

    conn_config = ConnectionConfig(
        congestion_control=config.congestion_control,
        idle_reset_enabled=config.idle_reset_enabled,
        penalization_enabled=config.penalization_enabled,
        record_delays=config.record_delays,
    )
    scheduler = build(SchedulerSpec.of(config.scheduler, **config.scheduler_params))
    conn = MptcpConnection(sim, paths, scheduler, config=conn_config, name="dash")
    session = HttpSession(sim, conn)
    manifest = VideoManifest(
        duration=config.video_duration, chunk_duration=config.chunk_duration
    )
    trace = TraceRecorder() if config.record_traces else None
    player = DashPlayer(
        sim,
        session,
        manifest,
        abr=make_abr(config.abr, manifest),
        max_buffer=config.max_buffer,
        trace=trace,
    )

    # MP-DASH is cross-layer: its path manager needs the player's chunk
    # requirements.
    from repro.apps.dash.mpdash import MpDashPathManager, MpDashScheduler

    if isinstance(scheduler, MpDashScheduler):
        MpDashPathManager(scheduler, conn).attach(player)

    # Fig 5: per-download gap between the last packets on each interface.
    last_packet_gaps: List[float] = []

    def _record_gap(_result) -> None:
        arrivals = conn.receiver.last_arrival_by_subflow
        if len(arrivals) >= 2:
            times = sorted(arrivals.values())
            last_packet_gaps.append(times[-1] - times[0])

    session.observers.append(_record_gap)

    obs_trace: Optional[TraceRecorder] = None
    if trace is None and _flight.COLLECTOR is not None:
        # Flight recorder on but traces off: sample CWND/send-buffer into
        # a bounded side recorder for the postmortem bundle only.  The
        # recorder adopts itself into the flight window at construction;
        # it is never attached to the result, so the wire format (and the
        # cached digests) are untouched.
        obs_trace = TraceRecorder(
            max_samples_per_series=_flight.COLLECTOR.trace_tail
        )
    for target in (trace, obs_trace):
        if target is None:
            continue
        sampler = PeriodicSampler(sim, target, period=config.sample_period)
        for sf in conn.subflows:
            label = f"{sf.path.name}{sf.sf_id}"
            sampler.add(f"cwnd.{label}", lambda sf=sf: sf.cwnd)
            sampler.add(f"sndbuf.{label}", lambda sf=sf: sf.outstanding_bytes)
        sampler.start(until=config.effective_time_limit())

    player.start()
    sim.run(until=config.effective_time_limit())

    payload: Dict[str, int] = {}
    iw_resets: Dict[str, int] = {}
    idle_resets: Dict[str, int] = {}
    rtt_sums: Dict[str, List[float]] = {}
    for sf in conn.subflows:
        name = sf.path.name
        payload[name] = payload.get(name, 0) + sf.stats.payload_bytes_sent
        iw_resets[name] = iw_resets.get(name, 0) + sf.stats.iw_resets
        idle_resets[name] = idle_resets.get(name, 0) + sf.stats.idle_resets
        if sf.rtt.samples:
            rtt_sums.setdefault(name, []).append(sf.rtt.mean_rtt)
    mean_rtt = {name: sum(vals) / len(vals) for name, vals in rtt_sums.items()}

    return StreamingRunResult(
        config=config,
        metrics=player.metrics,
        finished=player.finished,
        fast_interface=_fast_interface(config, paths),
        payload_by_interface=payload,
        iw_resets_by_interface=iw_resets,
        idle_resets_by_interface=idle_resets,
        mean_rtt_by_interface=mean_rtt,
        ooo_delays=conn.receiver.ooo_delays,
        last_packet_gaps=last_packet_gaps,
        reinjections=conn.reinjections,
        trace=trace,
    )


def _register() -> None:
    from repro.experiments.spec import register_experiment

    register_experiment(
        "streaming",
        StreamingRunConfig.from_dict,
        run_streaming,
        StreamingRunResult.from_dict,
    )


_register()
