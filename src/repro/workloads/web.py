"""Web-browsing workload (Sections 5.5 and 6.3).

The paper deploys "a copy of CNN's home page (as of 9/11/2014) consisting
of 107 Web objects" and fetches it with a browser holding six parallel
persistent (MP)TCP connections.  We generate a deterministic synthetic
page with the same object count and a realistic heavy-tailed size mix
(web pages of that era: tens of small icons/scripts, a body of mid-size
images, a few large hero images), assign objects to connections the way a
browser queue does (next object goes to the first free connection), and
measure per-object download completion times and out-of-order delays.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.apps.http import GetResult, HttpSession
from repro.core.spec import SchedulerSpec, build
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.profiles import PathConfig, make_path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Object count of the paper's CNN snapshot.
CNN_OBJECT_COUNT = 107

#: Browser connection pool size used in the paper.
BROWSER_CONNECTIONS = 6


@dataclass(frozen=True)
class WebPage:
    """A page: an ordered list of object sizes (bytes)."""

    object_sizes: Sequence[int]

    @property
    def total_bytes(self) -> int:
        return sum(self.object_sizes)

    def __len__(self) -> int:
        return len(self.object_sizes)


def cnn_like_page(seed: int = 2014, object_count: int = CNN_OBJECT_COUNT) -> WebPage:
    """Deterministic 107-object page with a 2014-news-site size mix.

    Mix: ~60% small assets (0.5-8 kB), ~30% images (8-120 kB, lognormal),
    ~10% large objects (120 kB - 1 MB).  Total lands around 2-3 MB, in
    line with contemporary page-weight surveys.
    """
    rng = RngRegistry(seed).stream("web.page")
    sizes: List[int] = []
    for _ in range(object_count):
        bucket = rng.random()
        if bucket < 0.6:
            size = int(rng.uniform(500, 8_000))
        elif bucket < 0.9:
            size = int(min(120_000, max(8_000, rng.lognormvariate(10.0, 0.8))))
        else:
            size = int(rng.uniform(120_000, 1_000_000))
        sizes.append(size)
    return WebPage(tuple(sizes))


@dataclass(frozen=True)
class WebBrowsingSpec:
    """Frozen description of one full-page load -- a plain value.

    ``object_sizes`` pins an explicit page; left ``None``, the page is
    derived deterministically from ``seed`` via :func:`cnn_like_page`, so
    the spec stays small while remaining a complete content address of
    the run (executor cache, pool workers).
    """

    kind: ClassVar[str] = "web_browsing"

    scheduler: str
    path_configs: Tuple[PathConfig, ...]
    seed: int = 0
    connections: int = BROWSER_CONNECTIONS
    object_sizes: Optional[Tuple[int, ...]] = None
    scheduler_params: Dict = field(default_factory=dict)
    connection: Optional[ConnectionConfig] = None
    timeout: float = 600.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "path_configs", tuple(self.path_configs))
        if self.object_sizes is not None:
            object.__setattr__(self, "object_sizes", tuple(self.object_sizes))

    def page(self) -> WebPage:
        """The page this spec loads."""
        if self.object_sizes is not None:
            return WebPage(self.object_sizes)
        return cnn_like_page(seed=2014 + self.seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "path_configs": [asdict(pc) for pc in self.path_configs],
            "seed": self.seed,
            "connections": self.connections,
            "object_sizes": (
                None if self.object_sizes is None else list(self.object_sizes)
            ),
            "scheduler_params": dict(self.scheduler_params),
            "connection": None if self.connection is None else asdict(self.connection),
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WebBrowsingSpec":
        data = dict(data)
        data["path_configs"] = tuple(PathConfig(**pc) for pc in data["path_configs"])
        if data.get("object_sizes") is not None:
            data["object_sizes"] = tuple(data["object_sizes"])
        if data.get("connection") is not None:
            data["connection"] = ConnectionConfig(**data["connection"])
        return cls(**data)


@dataclass
class WebBrowsingResult:
    """Outcome of one full-page load."""

    scheduler: str
    object_completion_times: List[float] = field(default_factory=list)
    ooo_delays: List[float] = field(default_factory=list)
    page_load_time: float = 0.0
    objects_completed: int = 0
    total_objects: int = 0
    iw_resets: int = 0
    reinjections: int = 0
    #: Optional per-run perf record (``PerfRecord.to_dict()``), attached by
    #: the executor when ``REPRO_PERF=1``; absent from the wire format when
    #: None so cached v2 payloads stay valid.
    perf: Optional[Dict[str, Any]] = None

    @property
    def complete(self) -> bool:
        return self.objects_completed == self.total_objects

    @property
    def mean_completion_time(self) -> float:
        if not self.object_completion_times:
            return 0.0
        return sum(self.object_completion_times) / len(self.object_completion_times)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema_version": 2,
            "kind": "web_browsing",
            "scheduler": self.scheduler,
            "object_completion_times": list(self.object_completion_times),
            "ooo_delays": list(self.ooo_delays),
            "page_load_time": self.page_load_time,
            "objects_completed": self.objects_completed,
            "total_objects": self.total_objects,
            "iw_resets": self.iw_resets,
            "reinjections": self.reinjections,
        }
        if self.perf is not None:
            data["perf"] = dict(self.perf)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WebBrowsingResult":
        return cls(
            scheduler=data["scheduler"],
            object_completion_times=list(data["object_completion_times"]),
            ooo_delays=list(data["ooo_delays"]),
            page_load_time=data["page_load_time"],
            objects_completed=data["objects_completed"],
            total_objects=data["total_objects"],
            iw_resets=data["iw_resets"],
            reinjections=data["reinjections"],
            perf=data.get("perf"),
        )


class _BrowserQueue:
    """Feeds page objects to the first idle connection, like a browser."""

    def __init__(self, sim: Simulator, page: WebPage, sessions: List[HttpSession], result: WebBrowsingResult) -> None:
        self.sim = sim
        self.result = result
        self._remaining = list(page.object_sizes)
        self._sessions = sessions
        self._inflight = 0

    def start(self) -> None:
        for session in self._sessions:
            if not self._dispatch(session):
                break

    def _dispatch(self, session: HttpSession) -> bool:
        if not self._remaining:
            return False
        size = self._remaining.pop(0)
        self._inflight += 1
        session.get(size, lambda res, s=session: self._on_done(res, s))
        return True

    def _on_done(self, result: GetResult, session: HttpSession) -> None:
        self._inflight -= 1
        self.result.object_completion_times.append(result.completion_time)
        self.result.objects_completed += 1
        if self._remaining:
            self._dispatch(session)
        elif self._inflight == 0:
            self.result.page_load_time = self.sim.now


def run_web(spec: WebBrowsingSpec) -> WebBrowsingResult:
    """Load a page over ``spec.connections`` persistent MPTCP connections.

    Each connection gets its own scheduler instance (schedulers hold
    per-connection state), mirroring the paper's 6-connection browser
    (12 subflows with two interfaces).
    """
    page = spec.page()
    sim = Simulator()
    rngs = RngRegistry(spec.seed)
    result = WebBrowsingResult(scheduler=spec.scheduler, total_objects=len(page))

    # One shared set of links: all six connections contend for the same
    # regulated interfaces, exactly as in the testbed.
    paths = [
        make_path(sim, pc, rngs.stream(f"loss.p{path_index}"))
        for path_index, pc in enumerate(spec.path_configs)
    ]
    conns: List[MptcpConnection] = []
    sessions: List[HttpSession] = []
    for conn_index in range(spec.connections):
        scheduler = build(SchedulerSpec.of(spec.scheduler, **spec.scheduler_params))
        conn = MptcpConnection(
            sim, paths, scheduler, config=spec.connection, name=f"web-{conn_index}"
        )
        conns.append(conn)
        sessions.append(HttpSession(sim, conn))

    queue = _BrowserQueue(sim, page, sessions, result)
    queue.start()
    sim.run(until=spec.timeout)

    for conn in conns:
        result.ooo_delays.extend(conn.receiver.ooo_delays)
        result.iw_resets += sum(sf.stats.iw_resets for sf in conn.subflows)
        result.reinjections += conn.reinjections
    if not result.page_load_time and result.objects_completed:
        result.page_load_time = sim.now
    return result


def run_web_browsing(
    scheduler_name: str,
    path_configs: Sequence[PathConfig],
    page: Optional[WebPage] = None,
    seed: int = 0,
    connections: int = BROWSER_CONNECTIONS,
    config: Optional[ConnectionConfig] = None,
    timeout: float = 600.0,
    **scheduler_params,
) -> WebBrowsingResult:
    """Positional-argument wrapper around :func:`run_web`.

    .. deprecated:: 1.1
        Build a :class:`WebBrowsingSpec` and call :func:`run_web` (or
        submit the spec to :class:`repro.experiments.exec.ExperimentExecutor`).
        Kept so existing examples and benchmarks run unchanged.
    """
    return run_web(
        WebBrowsingSpec(
            scheduler=scheduler_name,
            path_configs=tuple(path_configs),
            seed=seed,
            connections=connections,
            object_sizes=None if page is None else tuple(page.object_sizes),
            scheduler_params=dict(scheduler_params),
            connection=config,
            timeout=timeout,
        )
    )


def _register() -> None:
    from repro.experiments.spec import register_experiment

    register_experiment(
        "web_browsing",
        WebBrowsingSpec.from_dict,
        run_web,
        WebBrowsingResult.from_dict,
    )


_register()
