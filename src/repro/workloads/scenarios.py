"""Random bandwidth-change scenarios (Section 5.3).

"We change WiFi and LTE bandwidths randomly at exponentially distributed
intervals of time with an average of 40 seconds.  The bandwidth values are
selected from the set {0.3, 1.1, 1.7, 4.2, 8.6} Mbps, and chosen uniformly
at random.  Ten scenarios are generated, each using a different unique
random seed."

A scenario is a *pair* of realized schedules (WiFi, LTE) so every
scheduler experiences the identical bandwidth timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.bandwidth import PiecewiseBandwidth, RandomBandwidthProcess


@dataclass(frozen=True)
class BandwidthScenario:
    """One realized random-change scenario."""

    index: int
    wifi: PiecewiseBandwidth
    lte: PiecewiseBandwidth

    def aggregate_rate_at(self, time: float) -> float:
        """Sum of the two schedules' rates at ``time``, bps."""
        return self.wifi.rate_at(time) + self.lte.rate_at(time)


def random_bandwidth_scenarios(
    count: int = 10,
    duration: float = 1200.0,
    mean_interval: float = 40.0,
    base_seed: int = 53,
) -> List[BandwidthScenario]:
    """Generate the paper's ten scenarios (or any number).

    Seeds are derived deterministically from ``base_seed`` so scenario
    ``i`` is stable across runs and schedulers.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count!r}")
    scenarios: List[BandwidthScenario] = []
    for index in range(count):
        wifi = RandomBandwidthProcess(
            seed=base_seed + 1000 + index, duration=duration, mean_interval=mean_interval
        ).realize()
        lte = RandomBandwidthProcess(
            seed=base_seed + 2000 + index, duration=duration, mean_interval=mean_interval
        ).realize()
        scenarios.append(BandwidthScenario(index=index, wifi=wifi, lte=lte))
    return scenarios
