"""Workload generators: Web pages, file matrices, bandwidth scenarios."""

from repro.workloads.web import WebPage, cnn_like_page, run_web_browsing, WebBrowsingResult
from repro.workloads.scenarios import random_bandwidth_scenarios

__all__ = [
    "WebPage",
    "cnn_like_page",
    "run_web_browsing",
    "WebBrowsingResult",
    "random_bandwidth_scenarios",
]
