"""Multi-hop paths and shared bottlenecks.

The basic :class:`~repro.net.path.Path` is a single regulated link pair --
the paper's testbed, where ``tc`` on the server was the only bottleneck.
Real multipath deployments often share capacity deeper in the network
(both subflows crossing one congested backhaul), which is exactly the
regime coupled congestion control was designed for.  This module builds
paths from chains of links so such topologies can be expressed:

* :class:`LinkSpec` -- one hop's parameters;
* :func:`chain_path` -- a path whose forward direction traverses several
  hops in sequence (each hop its own queue);
* :func:`shared_bottleneck` -- two access paths that converge on one
  shared bottleneck link, the canonical "is MPTCP fair to TCP?" topology.

Hops are composed with :class:`CompositeForward`, which feeds a packet
through each link in turn (the delivery callback of hop *i* is the send
of hop *i+1*), so per-hop serialization, queueing, and drops all apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import random

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.path import Path
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class LinkSpec:
    """Parameters of one hop."""

    rate_mbps: float
    one_way_delay: float
    queue_bytes: int = 150_000
    loss_rate: float = 0.0
    name: str = "hop"

    def build(self, sim: Simulator, rng: Optional[random.Random], suffix: str) -> Link:
        return Link(
            sim,
            rate_bps=self.rate_mbps * 1e6,
            delay=self.one_way_delay,
            queue_bytes=self.queue_bytes,
            loss_rate=self.loss_rate,
            rng=rng,
            name=f"{self.name}-{suffix}",
        )


class CompositeForward:
    """A forward 'link' made of several hops in sequence.

    Exposes the subset of the :class:`~repro.net.link.Link` interface the
    rest of the stack uses (``send``, ``rate_bps``, ``delay``,
    ``set_rate``, ``stats`` of the entry hop), while internally forwarding
    each delivered packet into the next hop.
    """

    __slots__ = ("hops",)

    #: Snapshot contract for checkpoint/fork (audited by RPR915).  Note
    #: the per-hop delivery lambdas created mid-flight by ``_send_hop``
    #: are *not* snapshot-safe: checkpoint composite-path worlds only at
    #: quiescent points, or use single-hop paths.
    STATE_FIELDS = ("hops",)

    def __init__(self, hops: Sequence[Link]) -> None:
        if not hops:
            raise ValueError("a composite path needs at least one hop")
        self.hops: List[Link] = list(hops)

    # -- Link-compatible surface ---------------------------------------
    @property
    def sim(self) -> Simulator:
        return self.hops[0].sim

    @property
    def rate_bps(self) -> float:
        """The chain's bottleneck rate."""
        return min(h.rate_bps for h in self.hops)

    @property
    def delay(self) -> float:
        """Total propagation delay along the chain."""
        return sum(h.delay for h in self.hops)

    def set_rate(self, rate_bps: float) -> None:
        """Re-regulate the entry hop (the access link)."""
        self.hops[0].set_rate(rate_bps)

    @property
    def stats(self):
        """Entry-hop statistics (drops can also occur at later hops)."""
        return self.hops[0].stats

    def transit_estimate(self, size: int) -> float:
        return sum(h.transit_estimate(size) for h in self.hops)

    def send(self, packet: Packet, on_delivery: Callable[[Packet], None]) -> bool:
        return self._send_hop(0, packet, on_delivery)

    def _send_hop(self, index: int, packet: Packet, on_delivery) -> bool:
        if index == len(self.hops) - 1:
            return self.hops[index].send(packet, on_delivery)
        return self.hops[index].send(
            packet, lambda p, i=index: self._send_hop(i + 1, p, on_delivery)
        )

    def total_drops(self) -> int:
        """Packets lost at any hop of the chain."""
        return sum(h.stats.packets_dropped for h in self.hops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompositeForward({len(self.hops)} hops, {self.rate_bps / 1e6:.2f} Mbps)"


def chain_path(
    sim: Simulator,
    name: str,
    forward_hops: Sequence[LinkSpec],
    reverse_spec: Optional[LinkSpec] = None,
    rng: Optional[random.Random] = None,
) -> Path:
    """Build a path whose data direction traverses ``forward_hops``.

    The reverse (ACK) direction is a single link: ``reverse_spec`` or a
    mirror of the chain's total delay at the bottleneck rate.
    """
    hops = [
        spec.build(sim, rng, f"{name}-fwd{i}") for i, spec in enumerate(forward_hops)
    ]
    forward = CompositeForward(hops)
    if reverse_spec is None:
        reverse_spec = LinkSpec(
            rate_mbps=forward.rate_bps / 1e6,
            one_way_delay=forward.delay,
            name=f"{name}-rev",
        )
    reverse = reverse_spec.build(sim, rng, f"{name}-rev")
    return Path(name, forward, reverse)


def shared_bottleneck(
    sim: Simulator,
    access_a: LinkSpec,
    access_b: LinkSpec,
    bottleneck: LinkSpec,
    rng: Optional[random.Random] = None,
) -> List[Path]:
    """Two access paths converging on one shared bottleneck link.

    Both returned paths' forward directions traverse their own access hop
    and then the *same* bottleneck :class:`Link` instance, so they contend
    for its queue -- the topology where coupled congestion control must
    not outcompete a single TCP flow.
    """
    shared = bottleneck.build(sim, rng, "shared")
    paths: List[Path] = []
    for label, access in (("a", access_a), ("b", access_b)):
        entry = access.build(sim, rng, f"{label}-access")
        forward = CompositeForward([entry, shared])
        reverse = LinkSpec(
            rate_mbps=min(access.rate_mbps, bottleneck.rate_mbps),
            one_way_delay=access.one_way_delay + bottleneck.one_way_delay,
            name=f"{label}-rev",
        ).build(sim, rng, f"{label}-rev")
        paths.append(Path(label, forward, reverse))
    return paths
