"""Network substrate: packets, links, paths, and interface profiles.

This package models what the paper's testbed provided with ``tc`` bandwidth
regulation over real WiFi/LTE interfaces:

* :class:`~repro.net.packet.Packet` -- the unit moved across links.
* :class:`~repro.net.link.Link` -- one direction of a regulated interface:
  a token-rate transmitter with serialization delay, fixed propagation
  delay, a finite drop-tail queue (this is what couples low bandwidth to
  high RTT, reproducing Table 2), and optional random loss.
* :class:`~repro.net.path.Path` -- a bidirectional forward/reverse link pair
  carrying one MPTCP subflow's traffic.
* :mod:`~repro.net.bandwidth` -- time-varying rate processes driving
  Section 5.3's random bandwidth-change scenarios.
* :mod:`~repro.net.profiles` -- factory functions for the paper's WiFi/LTE
  configurations and the in-the-wild path models of Section 6.
"""

from repro.net.packet import Packet
from repro.net.link import Link, LinkStats
from repro.net.path import Path
from repro.net.bandwidth import (
    BandwidthSpec,
    ConstantBandwidth,
    PiecewiseBandwidth,
    RandomBandwidthProcess,
    as_bandwidth_spec,
    make_bandwidth_process,
    register_bandwidth_process,
)
from repro.net.profiles import (
    PathConfig,
    make_path,
    wifi_config,
    lte_config,
    wild_wifi_config,
    wild_lte_config,
)
from repro.net.topology import (
    CompositeForward,
    LinkSpec,
    chain_path,
    shared_bottleneck,
)

__all__ = [
    "Packet",
    "Link",
    "LinkStats",
    "Path",
    "BandwidthSpec",
    "ConstantBandwidth",
    "PiecewiseBandwidth",
    "RandomBandwidthProcess",
    "as_bandwidth_spec",
    "make_bandwidth_process",
    "register_bandwidth_process",
    "PathConfig",
    "make_path",
    "wifi_config",
    "lte_config",
    "wild_wifi_config",
    "wild_lte_config",
    "LinkSpec",
    "CompositeForward",
    "chain_path",
    "shared_bottleneck",
]
