"""Packet model.

A packet is deliberately dumb: a size plus the transport-level fields the
TCP/MPTCP layers need.  Links only look at ``size``; everything else is
opaque payload metadata.
"""

from __future__ import annotations

from typing import Optional

#: Maximum segment size used throughout the library (typical Ethernet MSS).
MSS = 1448

#: Size of a pure ACK on the wire (IP + TCP headers + MPTCP DSS option).
ACK_SIZE = 60

#: Per-segment header overhead added on top of payload bytes.
HEADER_SIZE = 60


class Packet:
    """One transport segment or ACK.

    Attributes
    ----------
    size:
        Bytes on the wire (payload + headers); what the link serializes.
    payload:
        Application payload bytes carried (0 for pure ACKs).
    subflow_id:
        Index of the MPTCP subflow this packet belongs to.
    seq:
        Subflow-level sequence number (segment units).
    dsn:
        Connection-level data sequence number of the first payload byte.
    is_ack:
        True for pure acknowledgements travelling the reverse link.
    ack_seq:
        For ACKs: the subflow-level segment being (selectively) acked.
    data_ack:
        For ACKs: cumulative connection-level DSN delivered in-order.
    sent_time:
        When the (original) transmission left the sender; used for RTT
        sampling (Karn: retransmits carry ``retransmitted=True`` and are
        not sampled).
    """

    __slots__ = (
        "size",
        "payload",
        "subflow_id",
        "seq",
        "dsn",
        "is_ack",
        "ack_seq",
        "data_ack",
        "sent_time",
        "retransmitted",
        "recv_window",
    )

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "size",
        "payload",
        "subflow_id",
        "seq",
        "dsn",
        "is_ack",
        "ack_seq",
        "data_ack",
        "sent_time",
        "retransmitted",
        "recv_window",
    )

    def __init__(
        self,
        size: int,
        payload: int = 0,
        subflow_id: int = 0,
        seq: int = -1,
        dsn: int = -1,
        is_ack: bool = False,
        ack_seq: int = -1,
        data_ack: int = -1,
        sent_time: float = 0.0,
        retransmitted: bool = False,
        recv_window: Optional[int] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size!r}")
        if payload < 0 or payload > size:
            raise ValueError(f"payload {payload!r} out of range for size {size!r}")
        self.size = size
        self.payload = payload
        self.subflow_id = subflow_id
        self.seq = seq
        self.dsn = dsn
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.data_ack = data_ack
        self.sent_time = sent_time
        self.retransmitted = retransmitted
        self.recv_window = recv_window

    @classmethod
    def data_segment(
        cls,
        size: int,
        payload: int,
        subflow_id: int,
        seq: int,
        dsn: int,
        sent_time: float,
        retransmitted: bool,
    ) -> "Packet":
        """Build a data segment without keyword/validation overhead.

        The subflow transmit path constructs one packet per segment; it
        computes ``size`` from ``payload`` itself, so re-validating the
        pair here would only burn cycles on an invariant the caller
        already holds.
        """
        pkt = object.__new__(cls)
        pkt.size = size
        pkt.payload = payload
        pkt.subflow_id = subflow_id
        pkt.seq = seq
        pkt.dsn = dsn
        pkt.is_ack = False
        pkt.ack_seq = -1
        pkt.data_ack = -1
        pkt.sent_time = sent_time
        pkt.retransmitted = retransmitted
        pkt.recv_window = None
        return pkt

    @classmethod
    def pure_ack(
        cls,
        subflow_id: int,
        ack_seq: int,
        data_ack: int,
        sent_time: float,
        recv_window: Optional[int],
    ) -> "Packet":
        """Build a pure ACK (fixed ``ACK_SIZE`` wire size, no payload)."""
        pkt = object.__new__(cls)
        pkt.size = ACK_SIZE
        pkt.payload = 0
        pkt.subflow_id = subflow_id
        pkt.seq = -1
        pkt.dsn = -1
        pkt.is_ack = True
        pkt.ack_seq = ack_seq
        pkt.data_ack = data_ack
        pkt.sent_time = sent_time
        pkt.retransmitted = False
        pkt.recv_window = recv_window
        return pkt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_ack:
            return (
                f"Ack(sf={self.subflow_id}, ack_seq={self.ack_seq}, "
                f"data_ack={self.data_ack})"
            )
        return (
            f"Packet(sf={self.subflow_id}, seq={self.seq}, dsn={self.dsn}, "
            f"payload={self.payload})"
        )


def segment_wire_size(payload: int) -> int:
    """Wire size of a data segment carrying ``payload`` bytes."""
    if payload <= 0:
        raise ValueError(f"payload must be positive, got {payload!r}")
    return payload + HEADER_SIZE
