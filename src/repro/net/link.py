"""Unidirectional regulated link with a finite drop-tail queue.

The link reproduces what ``tc`` rate limiting does to a real interface:

* packets are serialized one at a time at the configured rate;
* a finite FIFO queue in front of the transmitter absorbs bursts -- when a
  TCP sender fills it, queueing delay dominates the RTT.  This is the
  bufferbloat effect behind the paper's Table 2, where a 0.3 Mbps
  regulation turns a ~30 ms path into a ~1 s path;
* packets arriving to a full queue are dropped (the loss signal congestion
  control reacts to);
* an optional Bernoulli random-loss process models wireless corruption.

Rate changes (Section 5.3's variable-bandwidth scenarios) take effect on
the next packet that begins transmission, exactly like a token-bucket
regulator being reconfigured.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Callable, Deque, Optional

from repro.analysis import sanitize as _sanitize
from repro.net.packet import Packet
from repro.obs import flight as _flight
from repro.perf import counters as _perf
from repro.sim.engine import Simulator, Timer


class LinkStats:
    """Counters a link maintains over its lifetime."""

    __slots__ = (
        "packets_in",
        "packets_delivered",
        "packets_dropped_queue",
        "packets_dropped_random",
        "packets_dropped_outage",
        "bytes_delivered",
        "busy_time",
    )

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "packets_in",
        "packets_delivered",
        "packets_dropped_queue",
        "packets_dropped_random",
        "packets_dropped_outage",
        "bytes_delivered",
        "busy_time",
    )

    def __init__(self) -> None:
        self.packets_in = 0
        self.packets_delivered = 0
        self.packets_dropped_queue = 0
        self.packets_dropped_random = 0
        self.packets_dropped_outage = 0
        self.bytes_delivered = 0
        self.busy_time = 0.0

    @property
    def packets_dropped(self) -> int:
        """Total packets lost for any reason."""
        return (
            self.packets_dropped_queue
            + self.packets_dropped_random
            + self.packets_dropped_outage
        )

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the transmitter spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkStats(in={self.packets_in}, out={self.packets_delivered}, "
            f"qdrop={self.packets_dropped_queue}, rdrop={self.packets_dropped_random})"
        )


class Link:
    """One direction of a network path.

    Parameters
    ----------
    sim:
        The simulator driving this link.
    rate_bps:
        Transmission rate in bits per second (the ``tc`` regulation value).
    delay:
        One-way propagation delay in seconds, applied after serialization.
    queue_bytes:
        Capacity of the drop-tail queue (bytes of queued, not-yet-serialized
        packets).  The packet currently being transmitted does not count.
    loss_rate:
        Probability an otherwise-deliverable packet is dropped at the
        transmitter (models wireless loss).  Requires ``rng`` when > 0.
    rng:
        Random stream for the loss and jitter processes.
    jitter:
        Maximum extra per-packet propagation delay, seconds, drawn
        uniformly from ``[0, jitter]`` (models wireless MAC variance).
        Jitter can reorder packets *within* the link.  Requires ``rng``
        when > 0.
    name:
        Label used in traces and error messages.
    """

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "sim",
        "rate_bps",
        "delay",
        "queue_bytes",
        "loss_rate",
        "jitter",
        "rng",
        "name",
        "stats",
        "on_drop",
        "_queue",
        "_queued_bytes",
        "_busy",
        "_down",
        "_tx_timer",
        "_in_propagation",
        "_finish_cb",
        "_deliver_cb",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay: float,
        queue_bytes: int = 64_000,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
        jitter: float = 0.0,
    ) -> None:
        if not math.isfinite(rate_bps) or rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive and finite, got {rate_bps!r}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        if queue_bytes <= 0:
            raise ValueError(f"queue_bytes must be positive, got {queue_bytes!r}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter!r}")
        if (loss_rate > 0.0 or jitter > 0.0) and rng is None:
            raise ValueError("loss_rate/jitter > 0 requires an rng")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue_bytes = int(queue_bytes)
        self.loss_rate = float(loss_rate)
        self.jitter = float(jitter)
        self.rng = rng
        self.name = name
        self.stats = LinkStats()
        self.on_drop: Optional[Callable[[Packet], None]] = None
        self._queue: Deque[tuple[Packet, Callable[[Packet], None]]] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._down = False
        self._tx_timer: Optional[Timer] = None
        #: Packets serialized but still in propagation (conservation audit).
        self._in_propagation = 0
        # Bound methods are allocated once here, not once per packet in the
        # serialization loop.
        self._finish_cb = self._finish_transmission
        self._deliver_cb = self._deliver
        if _perf.COLLECTOR is not None:
            _perf.COLLECTOR.adopt_link(self)
        if _flight.COLLECTOR is not None:
            _flight.COLLECTOR.adopt_link(self)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet, on_delivery: Callable[[Packet], None]) -> bool:
        """Enqueue ``packet``; ``on_delivery(packet)`` fires at the far end.

        Returns False if the packet was dropped (full queue or random loss).
        """
        self.stats.packets_in += 1
        if self._down:
            self.stats.packets_dropped_outage += 1
            self._notify_drop(packet)
            return False
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.packets_dropped_random += 1
            self._notify_drop(packet)
            return False
        if self._busy:
            if self._queued_bytes + packet.size > self.queue_bytes:
                self.stats.packets_dropped_queue += 1
                self._notify_drop(packet)
                return False
            self._queue.append((packet, on_delivery))
            self._queued_bytes += packet.size
            if _sanitize.CHECKS is not None:
                _sanitize.CHECKS.link(self)
            return True
        self._begin_transmission(packet, on_delivery)
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.link(self)
        return True

    def _begin_transmission(
        self, packet: Packet, on_delivery: Callable[[Packet], None]
    ) -> None:
        self._busy = True
        tx_time = packet.size * 8.0 / self.rate_bps
        self.stats.busy_time += tx_time
        self._tx_timer = self.sim.schedule(tx_time, self._finish_cb, packet, on_delivery)

    def _finish_transmission(
        self, packet: Packet, on_delivery: Callable[[Packet], None]
    ) -> None:
        self._tx_timer = None
        delay = self.delay
        if self.jitter > 0.0:
            delay += self.rng.uniform(0.0, self.jitter)
        if self._down:
            # The packet in flight when the link went down is lost.
            self.stats.packets_dropped_outage += 1
            self._notify_drop(packet)
        else:
            self._in_propagation += 1
            self.sim.schedule(delay, self._deliver_cb, packet, on_delivery)
        if self._queue:
            next_packet, next_cb = self._queue.popleft()
            self._queued_bytes -= next_packet.size
            self._begin_transmission(next_packet, next_cb)
        else:
            self._busy = False
        if _sanitize.CHECKS is not None:
            _sanitize.CHECKS.link(self)

    def _deliver(self, packet: Packet, on_delivery: Callable[[Packet], None]) -> None:
        self._in_propagation -= 1
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        on_delivery(packet)

    def _notify_drop(self, packet: Packet) -> None:
        if self.on_drop is not None:
            self.on_drop(packet)

    # ------------------------------------------------------------------
    # Runtime control / introspection
    # ------------------------------------------------------------------
    def set_rate(self, rate_bps: float) -> None:
        """Change the regulated rate; applies to subsequent transmissions.

        NaN slips past a plain ``<= 0`` check and silently poisons every
        subsequent serialization time, so the rate must be finite too.
        """
        if not math.isfinite(rate_bps) or rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive and finite, got {rate_bps!r}")
        self.rate_bps = float(rate_bps)

    def set_down(self, down: bool = True) -> None:
        """Take the link down (an interface outage) or bring it back up.

        While down, every arriving packet -- and whatever was mid-flight
        at the transmitter -- is dropped.  Queued packets drain into the
        void; the transport's RTO machinery is what recovers the traffic,
        exactly as with a real radio outage.
        """
        self._down = down

    @property
    def down(self) -> bool:
        """True while the link is in an outage."""
        return self._down

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting behind the packet currently being serialized."""
        return self._queued_bytes

    @property
    def queue_depth(self) -> int:
        """Number of packets waiting (excluding the one in transmission)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    def transit_estimate(self, size: int) -> float:
        """Estimated time for ``size`` bytes to cross an empty link.

        A link in an outage can deliver nothing, so the estimate is
        ``math.inf`` rather than the finite value the rate alone would
        suggest -- schedulers treat an infinite estimate as "path
        unusable" instead of planning traffic onto a dead interface.
        """
        if self._down:
            return math.inf
        return size * 8.0 / self.rate_bps + self.delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, {self.rate_bps / 1e6:.2f} Mbps, "
            f"{self.delay * 1e3:.1f} ms, q={self._queued_bytes}/{self.queue_bytes}B)"
        )
