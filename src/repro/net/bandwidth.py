"""Time-varying bandwidth processes (Section 5.3).

The paper's variable-bandwidth experiments change WiFi and LTE rates
"randomly at exponentially distributed intervals of time with an average of
40 seconds", drawing each new rate uniformly from
``{0.3, 1.1, 1.7, 4.2, 8.6}`` Mbps.  :class:`RandomBandwidthProcess`
implements exactly that; :class:`PiecewiseBandwidth` replays a fixed
schedule (useful for tests and for regenerating a specific scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.path import Path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Rate set used by the paper's random-change scenarios (Mbps).
PAPER_RATE_SET_MBPS = (0.3, 1.1, 1.7, 4.2, 8.6)


def _canonical(value: Any) -> Any:
    """Normalize parameter values so equal specs compare (and hash) equal.

    Lists become tuples (recursively); everything else passes through.
    This keeps a spec reconstructed from JSON equal to the original.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


@dataclass(frozen=True)
class BandwidthSpec:
    """A named, serializable description of a bandwidth process.

    Experiment configs carry these instead of live process objects so a
    run spec stays picklable (for process-pool workers) and content-
    hashable (for the result cache).  ``make_bandwidth_process`` turns a
    spec back into the live object; each process class's ``to_spec``
    goes the other way.

    ``params`` is stored canonically as a sorted tuple of ``(key, value)``
    pairs with nested sequences tupled, so two specs describing the same
    process are equal regardless of construction order or a JSON round
    trip.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, kind: str, **params: Any) -> "BandwidthSpec":
        """Build a spec from keyword parameters."""
        items = tuple(sorted((k, _canonical(v)) for k, v in params.items()))
        return cls(kind=kind, params=items)

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (tuples degrade to lists in JSON)."""
        return {"kind": self.kind, "params": self.param_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BandwidthSpec":
        return cls.of(data["kind"], **dict(data.get("params", {})))


class ConstantBandwidth:
    """Trivial process: the path keeps its configured rate.

    Exists so experiment code can treat fixed and variable scenarios
    uniformly.
    """

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps!r}")
        self.rate_bps = float(rate_bps)

    def attach(self, sim: Simulator, path: Path) -> None:
        """Apply the rate once; nothing further is scheduled."""
        path.set_rate(self.rate_bps)

    def schedule_of_changes(self) -> List[Tuple[float, float]]:
        """The (time, rate) change list -- a single initial setting."""
        return [(0.0, self.rate_bps)]

    def to_spec(self) -> BandwidthSpec:
        return BandwidthSpec.of("constant", rate_bps=self.rate_bps)


class PiecewiseBandwidth:
    """Replay a fixed ``[(time, rate_bps), ...]`` schedule on a path."""

    def __init__(self, schedule: Sequence[Tuple[float, float]]) -> None:
        if not schedule:
            raise ValueError("schedule must contain at least one (time, rate) entry")
        previous = -1.0
        for time, rate in schedule:
            if time < 0 or rate <= 0:
                raise ValueError(f"invalid schedule entry ({time!r}, {rate!r})")
            if time <= previous:
                raise ValueError("schedule times must be strictly increasing")
            previous = time
        self.schedule = [(float(t), float(r)) for t, r in schedule]

    def attach(self, sim: Simulator, path: Path) -> None:
        """Schedule every rate change on the simulator."""
        first_time, first_rate = self.schedule[0]
        if first_time <= sim.now:
            path.set_rate(first_rate)
            remaining = self.schedule[1:]
        else:
            remaining = self.schedule
        for time, rate in remaining:
            sim.schedule_at(time, path.set_rate, rate)

    def schedule_of_changes(self) -> List[Tuple[float, float]]:
        return list(self.schedule)

    def rate_at(self, time: float) -> float:
        """Rate in force at simulated ``time`` (before any change at it)."""
        current = self.schedule[0][1]
        for change_time, rate in self.schedule:
            if change_time <= time:
                current = rate
            else:
                break
        return current

    def to_spec(self) -> BandwidthSpec:
        return BandwidthSpec.of("piecewise", schedule=tuple(self.schedule))


class RandomBandwidthProcess:
    """Markov-style random rate changes, as in Section 5.3.

    Intervals between changes are exponential with mean
    ``mean_interval`` (paper: 40 s); new rates are drawn uniformly from
    ``rate_set_mbps``.  A process is realized once (per seed) into a
    :class:`PiecewiseBandwidth`, so the same scenario can drive multiple
    schedulers for a fair comparison -- this mirrors the paper's "ten
    scenarios, each using a different unique random seed".
    """

    def __init__(
        self,
        seed: int,
        duration: float,
        mean_interval: float = 40.0,
        rate_set_mbps: Sequence[float] = PAPER_RATE_SET_MBPS,
        initial_rate_mbps: Optional[float] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        if mean_interval <= 0:
            raise ValueError(f"mean_interval must be positive, got {mean_interval!r}")
        if not rate_set_mbps:
            raise ValueError("rate_set_mbps must be non-empty")
        self.seed = seed
        self.duration = float(duration)
        self.mean_interval = float(mean_interval)
        self.rate_set_mbps = tuple(float(r) for r in rate_set_mbps)
        self.initial_rate_mbps = initial_rate_mbps

    def realize(self) -> PiecewiseBandwidth:
        """Draw one concrete schedule for this seed."""
        rng = RngRegistry(self.seed).stream("bandwidth.random")
        time = 0.0
        if self.initial_rate_mbps is not None:
            rate = float(self.initial_rate_mbps)
        else:
            rate = rng.choice(self.rate_set_mbps)
        schedule: List[Tuple[float, float]] = [(0.0, rate * 1e6)]
        while True:
            time += rng.expovariate(1.0 / self.mean_interval)
            if time >= self.duration:
                break
            schedule.append((time, rng.choice(self.rate_set_mbps) * 1e6))
        return PiecewiseBandwidth(schedule)

    def attach(self, sim: Simulator, path: Path) -> PiecewiseBandwidth:
        """Realize and install the schedule; returns it for inspection."""
        realized = self.realize()
        realized.attach(sim, path)
        return realized

    def to_spec(self) -> BandwidthSpec:
        return BandwidthSpec.of(
            "random",
            seed=self.seed,
            duration=self.duration,
            mean_interval=self.mean_interval,
            rate_set_mbps=self.rate_set_mbps,
            initial_rate_mbps=self.initial_rate_mbps,
        )


BandwidthProcess = Callable  # documentation alias; all processes share .attach()


_BANDWIDTH_FACTORIES: Dict[str, Callable[..., Any]] = {
    "constant": ConstantBandwidth,
    "piecewise": PiecewiseBandwidth,
    "random": RandomBandwidthProcess,
}

#: Canonical bandwidth-process kind names.
BANDWIDTH_PROCESS_KINDS = tuple(sorted(_BANDWIDTH_FACTORIES))


def registered_bandwidth_kinds() -> frozenset:
    """Every kind ``make_bandwidth_process`` resolves, extensions included.

    Unlike :data:`BANDWIDTH_PROCESS_KINDS` (frozen at import time), this
    reflects :func:`register_bandwidth_process` calls, so registry-aware
    tooling (``repro.analysis.lint``) sees custom kinds.
    """
    return frozenset(_BANDWIDTH_FACTORIES)


def register_bandwidth_process(kind: str, factory: Callable[..., Any]) -> None:
    """Register a custom process kind for spec-based construction.

    ``factory`` is called with the spec's params as keyword arguments and
    must return an object with ``attach(sim, path)``.
    """
    _BANDWIDTH_FACTORIES[kind] = factory


def make_bandwidth_process(spec: BandwidthSpec):
    """Instantiate the live process a :class:`BandwidthSpec` describes.

    Like :func:`repro.core.registry.make_scheduler`, always returns a
    fresh instance.
    """
    try:
        factory = _BANDWIDTH_FACTORIES[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown bandwidth process kind {spec.kind!r}; "
            f"choose from {sorted(_BANDWIDTH_FACTORIES)}"
        ) from None
    return factory(**spec.param_dict())


def as_bandwidth_spec(process: Any) -> BandwidthSpec:
    """Coerce a live process (or a spec) into a :class:`BandwidthSpec`.

    Raises
    ------
    TypeError
        For objects that expose neither ``to_spec`` nor the spec fields;
        such processes cannot cross a process-pool boundary or be cached.
    """
    if isinstance(process, BandwidthSpec):
        return process
    to_spec = getattr(process, "to_spec", None)
    if callable(to_spec):
        return to_spec()
    raise TypeError(
        f"{type(process).__name__} is not serializable as a bandwidth "
        f"process; give it a to_spec() -> BandwidthSpec method (and "
        f"register_bandwidth_process its kind) to use it in experiment specs"
    )
