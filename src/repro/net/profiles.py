"""Interface profiles: the paper's testbed WiFi/LTE and wild paths.

Calibration targets Table 2 of the paper, which reports the average RTT
observed per ``tc`` bandwidth regulation::

    Bandwidth (Mbps)  0.3  0.7  1.1  1.7  4.2  8.6
    WiFi RTT (ms)     969  413  273  196   87   40
    LTE  RTT (ms)     858  416  268  210  131  105

Those RTTs are dominated by queueing: the regulator's buffer holds a
roughly constant number of bytes, so halving the rate doubles the drain
time.  We reproduce that with a fixed-size drop-tail queue in front of the
regulated transmitter:

* WiFi: ~15 ms propagation each way, 34 kB queue
  (34 kB at 0.3 Mbps is ~0.91 s of queueing -> ~0.94 s RTT when full).
* LTE: ~48 ms propagation each way, 28 kB queue.

The "wild" profiles (Section 6) instead draw a per-run RTT for WiFi from a
wide range (the paper observed 70 ms to ~1 s across its nine runs) while
LTE stays near 70 ms, both with plentiful but jittery bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.net.link import Link
from repro.net.path import Path
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PathConfig:
    """Everything needed to instantiate one bidirectional path.

    Attributes
    ----------
    name: interface label ("wifi", "lte", ...).
    rate_mbps: forward (data) regulated rate.
    one_way_delay: propagation delay per direction, seconds.
    queue_bytes: drop-tail queue capacity of the forward link.
    loss_rate: random per-packet loss probability (forward link).
    reverse_rate_mbps: reverse-direction rate; defaults to ``rate_mbps``.
    reverse_queue_bytes: reverse queue; defaults to ``queue_bytes``.
    """

    name: str
    rate_mbps: float
    one_way_delay: float
    queue_bytes: int = 34_000
    loss_rate: float = 0.0
    reverse_rate_mbps: Optional[float] = None
    reverse_queue_bytes: Optional[int] = None

    def with_rate(self, rate_mbps: float) -> "PathConfig":
        """Copy of this config regulated to a different bandwidth."""
        return replace(self, rate_mbps=rate_mbps)

    def with_delay(self, one_way_delay: float) -> "PathConfig":
        """Copy of this config with a different propagation delay."""
        return replace(self, one_way_delay=one_way_delay)


#: Queue floor so low-bandwidth regulations exhibit the bufferbloat RTTs
#: of Table 2 and the multi-second slow-path stragglers of Figs 3/5/13.
#: ``tc`` qdiscs are sized in packets (default ~1000) and so hold many
#: seconds at 0.3 Mbps; 100 kB (~66 segments) reproduces the observed
#: 1-2.5 s last-packet gaps without the unbounded worst case.
QUEUE_FLOOR_BYTES = 100_000

#: Queue also scales with rate (like a tc qdisc sized in packets).  The
#: depth is chosen to absorb a post-idle burst of a full congestion
#: window without drops -- the testbed's pfifo qdisc (1000 packets) did
#: the same -- while keeping the post-loss window at or above the path
#: BDP so a busy subflow sustains the regulated rate.
WIFI_QUEUE_SECONDS = 0.15
LTE_QUEUE_SECONDS = 0.25

#: Propagation delays calibrated against Table 2's high-bandwidth entries.
WIFI_ONE_WAY_DELAY = 0.015
LTE_ONE_WAY_DELAY = 0.048


def queue_bytes_for(rate_mbps: float, queue_seconds: float, floor: int = QUEUE_FLOOR_BYTES) -> int:
    """Drop-tail queue size for a regulated rate (max of floor and BDP-ish)."""
    return max(floor, int(rate_mbps * 1e6 * queue_seconds / 8.0))


def wifi_config(rate_mbps: float, loss_rate: float = 0.0) -> PathConfig:
    """Testbed WiFi (campus network) regulated to ``rate_mbps``."""
    return PathConfig(
        name="wifi",
        rate_mbps=rate_mbps,
        one_way_delay=WIFI_ONE_WAY_DELAY,
        queue_bytes=queue_bytes_for(rate_mbps, WIFI_QUEUE_SECONDS),
        loss_rate=loss_rate,
    )


def lte_config(rate_mbps: float, loss_rate: float = 0.0) -> PathConfig:
    """Testbed AT&T LTE regulated to ``rate_mbps``."""
    return PathConfig(
        name="lte",
        rate_mbps=rate_mbps,
        one_way_delay=LTE_ONE_WAY_DELAY,
        queue_bytes=queue_bytes_for(rate_mbps, LTE_QUEUE_SECONDS),
        loss_rate=loss_rate,
    )


def wild_wifi_config(rng: random.Random) -> PathConfig:
    """One in-the-wild WiFi draw (public town WiFi, Section 6).

    The paper's nine runs span WiFi RTTs from ~70 ms to ~1 s.  A congested
    public access point is bad on every axis at once, so a single quality
    draw drives RTT, bandwidth, and loss together: a poor draw yields the
    ~1 s, sub-Mbps, lossy WiFi of the paper's worst runs, a good draw a
    crisp ~50 ms, ~8 Mbps one.
    """
    quality = rng.random()
    low_rtt, high_rtt = 0.05, 0.9
    base_rtt = high_rtt * (low_rtt / high_rtt) ** quality
    rate = 0.5 + 7.5 * quality ** 1.2
    return PathConfig(
        name="wifi",
        rate_mbps=rate,
        one_way_delay=base_rtt / 2.0,
        queue_bytes=queue_bytes_for(rate, WIFI_QUEUE_SECONDS),
        loss_rate=0.008 * (1.0 - quality),
    )


def wild_lte_config(rng: random.Random) -> PathConfig:
    """One in-the-wild LTE draw: stable ~70 ms RTT, ample bandwidth.

    Cellular link-layer retransmission hides almost all radio loss from
    TCP, so the residual random loss is kept below 0.1% -- any more and
    the Mathis limit caps the paper's observed ~8 Mbps LTE throughput.
    """
    base_rtt = rng.uniform(0.060, 0.080)
    rate = rng.uniform(8.0, 12.0)
    return PathConfig(
        name="lte",
        rate_mbps=rate,
        one_way_delay=base_rtt / 2.0,
        queue_bytes=queue_bytes_for(rate, LTE_QUEUE_SECONDS),
        loss_rate=rng.uniform(0.0, 0.001),
    )


def make_path(
    sim: Simulator,
    config: PathConfig,
    rng: Optional[random.Random] = None,
) -> Path:
    """Instantiate a bidirectional :class:`Path` from a profile.

    ``rng`` is required when the profile has a non-zero loss rate.
    """
    forward = Link(
        sim,
        rate_bps=config.rate_mbps * 1e6,
        delay=config.one_way_delay,
        queue_bytes=config.queue_bytes,
        loss_rate=config.loss_rate,
        rng=rng,
        name=f"{config.name}-fwd",
    )
    reverse_rate = (
        config.reverse_rate_mbps if config.reverse_rate_mbps is not None else config.rate_mbps
    )
    reverse_queue = (
        config.reverse_queue_bytes
        if config.reverse_queue_bytes is not None
        else config.queue_bytes
    )
    reverse = Link(
        sim,
        rate_bps=reverse_rate * 1e6,
        delay=config.one_way_delay,
        queue_bytes=reverse_queue,
        loss_rate=0.0,
        rng=rng,
        name=f"{config.name}-rev",
    )
    return Path(config.name, forward, reverse)
