"""Bidirectional path: the network an MPTCP subflow runs over.

A :class:`Path` pairs a *forward* link (server -> client: data segments)
with a *reverse* link (client -> server: ACKs and HTTP requests).  In the
paper each path corresponds to one interface pair (e.g. server Ethernet to
client WiFi), regulated with ``tc`` on the server side; here the forward
link carries the regulation and the bufferbloat queue, while the reverse
link is configured from the same profile.
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import Link
from repro.sim.engine import Simulator


class Path:
    """Forward/reverse link pair with a human-readable identity.

    Attributes
    ----------
    name:
        Interface label, e.g. ``"wifi"`` or ``"lte"``.
    forward:
        Link carrying data from server to client.
    reverse:
        Link carrying ACKs/requests from client to server.
    """

    __slots__ = ("name", "forward", "reverse")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("name", "forward", "reverse")

    def __init__(self, name: str, forward: Link, reverse: Link) -> None:
        self.name = name
        self.forward = forward
        self.reverse = reverse

    @property
    def sim(self) -> Simulator:
        return self.forward.sim

    @property
    def rate_bps(self) -> float:
        """Forward (data-direction) regulated rate."""
        return self.forward.rate_bps

    def set_rate(self, rate_bps: float, reverse_rate_bps: Optional[float] = None) -> None:
        """Re-regulate the path, like re-running ``tc`` mid-experiment.

        The reverse direction follows the forward rate unless given
        explicitly; ACK traffic is tiny so this mainly affects request
        latency under load.
        """
        self.forward.set_rate(rate_bps)
        self.reverse.set_rate(reverse_rate_bps if reverse_rate_bps is not None else rate_bps)

    @property
    def base_rtt(self) -> float:
        """Propagation-only round-trip time (no queueing, no serialization)."""
        return self.forward.delay + self.reverse.delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Path({self.name!r}, {self.rate_bps / 1e6:.2f} Mbps, "
            f"base_rtt={self.base_rtt * 1e3:.1f} ms)"
        )
