"""Heap-based discrete-event simulator.

The engine is intentionally small: a priority queue of ``(time, seq,
callback)`` entries, a simulated clock, and cancellable :class:`Timer`
handles.  Everything else in the library (links, TCP subflows, DASH players)
is expressed as callbacks scheduled on one :class:`Simulator` instance.

Determinism: ties in event time are broken by a monotonically increasing
sequence number, so two runs with the same seed execute events in the same
order regardless of hash randomization or dict ordering.

Tie-break randomization: correct simulation code must not depend on *which*
order same-timestamp events run in -- any such dependence is a latent race
that insertion-order tie-breaking merely hides.  Constructing a simulator
with ``tie_break="random"`` (or running scenarios under the
:func:`forced_tie_break` context manager, which the race detector in
:mod:`repro.analysis.races` uses) shuffles ties with a seeded stream while
keeping each individual run fully deterministic.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.analysis import events as _events
from repro.analysis import sanitize as _sanitize

#: Forced tie-break policy for newly constructed simulators, or ``None``.
#: Set via :func:`forced_tie_break`; lets the race detector re-run scenario
#: code that builds its own ``Simulator()`` internally.
_FORCED_TIE_BREAK: Optional[Tuple[str, int]] = None


@contextmanager
def forced_tie_break(mode: str, seed: int = 0) -> Iterator[None]:
    """Force every ``Simulator()`` constructed in the body to ``mode``.

    ``mode`` is ``"fifo"`` (insertion order, the default) or ``"random"``
    (seeded shuffle of same-timestamp ties).  Explicit constructor
    arguments still win over the forced default.
    """
    global _FORCED_TIE_BREAK
    previous = _FORCED_TIE_BREAK
    _FORCED_TIE_BREAK = (mode, seed)
    try:
        yield
    finally:
        _FORCED_TIE_BREAK = previous


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (negative delays, etc.)."""


class Timer:
    """Handle for a scheduled event.

    A ``Timer`` can be cancelled before it fires; cancellation is O(1) --
    the entry stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""
        self.cancelled = True
        # Drop references so cancelled timers sitting in the heap do not
        # keep large object graphs (packets, connections) alive.
        self.callback = _noop
        self.args = ()

    @property
    def active(self) -> bool:
        """True while the timer is scheduled and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Timer") -> bool:
        # Exact float equality is intended: two timers tie only when they
        # hold bit-identical times, and ties fall through to the seq.
        if self.time != other.time:  # repro: noqa[RPR301]
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"Timer(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Discrete-event simulation core.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(
        self,
        tie_break: Optional[str] = None,
        tie_break_seed: Optional[int] = None,
    ) -> None:
        if tie_break is None and _FORCED_TIE_BREAK is not None:
            tie_break, forced_seed = _FORCED_TIE_BREAK
            if tie_break_seed is None:
                tie_break_seed = forced_seed
        mode = tie_break or "fifo"
        if mode not in ("fifo", "random"):
            raise SimulationError(f"unknown tie_break mode: {mode!r}")
        self.tie_break = mode
        self.tie_break_seed = 0 if tie_break_seed is None else int(tie_break_seed)
        if mode == "random":
            # Imported here, not at module top: rng is a sibling leaf module
            # but the fifo path must stay import-light.
            from repro.sim.rng import RngRegistry

            self._tie_rng = RngRegistry(self.tie_break_seed).stream("tie-break")
        else:
            self._tie_rng = None
        self.now: float = 0.0
        # Heap entries: (time, key, Timer) where key is the seq (fifo) or a
        # (random draw, seq) pair -- within one simulator the key type is
        # homogeneous, so tuple comparison stays at the C level.
        self._heap: list = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self.now!r}"
            )
        self._seq += 1
        timer = Timer(time, self._seq, callback, args)
        # Heap entries are plain tuples: C-level comparisons are several
        # times faster than calling Timer.__lt__ for every sift.
        if self._tie_rng is None:
            key: Any = self._seq
        else:
            key = (self._tie_rng.random(), self._seq)
        heapq.heappush(self._heap, (time, key, timer))
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` are executed, and the clock is advanced to
            ``until`` even if the event queue drains earlier.
        max_events:
            Safety valve for tests; stop after this many events.

        Returns
        -------
        int
            Number of (non-cancelled) events executed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        # Bound once per run() call: a branch on a local is free in the
        # hot loop, and toggling the sanitizer or event log mid-run is not
        # supported.
        checks = _sanitize.CHECKS
        log = _events.LOG
        if log is not None and not log.capture_dispatch:
            log = None
        try:
            while heap:
                time, _, timer = heap[0]
                if timer.cancelled:
                    pop(heap)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(heap)
                if checks is not None:
                    checks.event_dispatch(self.now, time)
                if log is not None:
                    log.emit(_events.Dispatch(t=time, seq=timer.seq))
                self.now = time
                timer.cancelled = True  # consumed; cancel() after firing is a no-op
                timer.callback(*timer.args)
                executed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for _, _, t in self._heap if not t.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_processed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
