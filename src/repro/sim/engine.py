"""Heap-based discrete-event simulator.

The engine is intentionally small: a priority queue of ``(time, seq,
callback)`` entries, a simulated clock, and cancellable :class:`Timer`
handles.  Everything else in the library (links, TCP subflows, DASH players)
is expressed as callbacks scheduled on one :class:`Simulator` instance.

Determinism: ties in event time are broken by a monotonically increasing
sequence number, so two runs with the same seed execute events in the same
order regardless of hash randomization or dict ordering.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.analysis import sanitize as _sanitize


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (negative delays, etc.)."""


class Timer:
    """Handle for a scheduled event.

    A ``Timer`` can be cancelled before it fires; cancellation is O(1) --
    the entry stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""
        self.cancelled = True
        # Drop references so cancelled timers sitting in the heap do not
        # keep large object graphs (packets, connections) alive.
        self.callback = _noop
        self.args = ()

    @property
    def active(self) -> bool:
        """True while the timer is scheduled and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Timer") -> bool:
        # Exact float equality is intended: two timers tie only when they
        # hold bit-identical times, and ties fall through to the seq.
        if self.time != other.time:  # repro: noqa[RPR301]
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"Timer(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Discrete-event simulation core.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []  # entries: (time, seq, Timer)
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self.now!r}"
            )
        self._seq += 1
        timer = Timer(time, self._seq, callback, args)
        # Heap entries are plain tuples: C-level comparisons are several
        # times faster than calling Timer.__lt__ for every sift.
        heapq.heappush(self._heap, (time, self._seq, timer))
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` are executed, and the clock is advanced to
            ``until`` even if the event queue drains earlier.
        max_events:
            Safety valve for tests; stop after this many events.

        Returns
        -------
        int
            Number of (non-cancelled) events executed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        # Bound once per run() call: a branch on a local is free in the
        # hot loop, and toggling the sanitizer mid-run is not supported.
        checks = _sanitize.CHECKS
        try:
            while heap:
                time, _, timer = heap[0]
                if timer.cancelled:
                    pop(heap)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(heap)
                if checks is not None:
                    checks.event_dispatch(self.now, time)
                self.now = time
                timer.cancelled = True  # consumed; cancel() after firing is a no-op
                timer.callback(*timer.args)
                executed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for _, _, t in self._heap if not t.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_processed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
