"""Heap-based discrete-event simulator.

The engine is intentionally small: a priority queue of ``(time, seq,
callback)`` entries, a simulated clock, and cancellable :class:`Timer`
handles.  Everything else in the library (links, TCP subflows, DASH players)
is expressed as callbacks scheduled on one :class:`Simulator` instance.

Determinism: ties in event time are broken by a monotonically increasing
sequence number, so two runs with the same seed execute events in the same
order regardless of hash randomization or dict ordering.

Tie-break randomization: correct simulation code must not depend on *which*
order same-timestamp events run in -- any such dependence is a latent race
that insertion-order tie-breaking merely hides.  Constructing a simulator
with ``tie_break="random"`` (or running scenarios under the
:func:`forced_tie_break` context manager, which the race detector in
:mod:`repro.analysis.races` uses) shuffles ties with a seeded stream while
keeping each individual run fully deterministic.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.analysis import events as _events
from repro.analysis import sanitize as _sanitize
from repro.obs import flight as _flight
from repro.perf import counters as _perf
from repro.perf import profiler as _profiler

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Heap compaction trigger: rebuild once at least this many cancelled
#: entries sit in the heap *and* they outnumber the live ones.  The floor
#: keeps tiny simulations from compacting pointlessly; the fraction bound
#: keeps the amortized cost O(1) per cancellation.
_COMPACT_MIN_CANCELLED = 256

#: Forced tie-break policy for newly constructed simulators, or ``None``.
#: Set via :func:`forced_tie_break`; lets the race detector re-run scenario
#: code that builds its own ``Simulator()`` internally.
_FORCED_TIE_BREAK: Optional[Tuple[str, int]] = None


@contextmanager
def forced_tie_break(mode: str, seed: int = 0) -> Iterator[None]:
    """Force every ``Simulator()`` constructed in the body to ``mode``.

    ``mode`` is ``"fifo"`` (insertion order, the default) or ``"random"``
    (seeded shuffle of same-timestamp ties).  Explicit constructor
    arguments still win over the forced default.
    """
    global _FORCED_TIE_BREAK
    previous = _FORCED_TIE_BREAK
    _FORCED_TIE_BREAK = (mode, seed)
    try:
        yield
    finally:
        _FORCED_TIE_BREAK = previous


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (negative delays, etc.)."""


class Timer:
    """Handle for a scheduled event.

    A ``Timer`` can be cancelled before it fires; cancellation is O(1) --
    the entry stays in the heap but is skipped when popped.  The owning
    simulator counts cancellations and compacts the heap once dead
    entries dominate it, so a workload that cancels aggressively does not
    drag a mostly-dead heap through every sift.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("time", "seq", "callback", "args", "cancelled", "_sim")
    #: Fields :mod:`repro.sim.snapshot` encodes as owner references and
    #: rebinds on restore (exempts them from RPR914): the callback is a
    #: bound method of another snapshotted object, never copied raw.
    SNAPSHOT_REBIND = ("callback",)

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once,
        and a no-op on a timer that has already fired (firing consumes
        the timer)."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled timers sitting in the heap do not
        # keep large object graphs (packets, connections) alive.
        self.callback = _noop
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._note_cancellation()

    @property
    def active(self) -> bool:
        """True while the timer is scheduled: not cancelled and not yet
        fired (a fired timer is consumed and reports inactive)."""
        return not self.cancelled

    def __lt__(self, other: "Timer") -> bool:
        # Exact float equality is intended: two timers tie only when they
        # hold bit-identical times, and ties fall through to the seq.
        if self.time != other.time:  # repro: noqa[RPR301]
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"Timer(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Discrete-event simulation core.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    1
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    #: Snapshot contract for checkpoint/fork (audited by RPR915): every
    #: attribute a clean state capture must copy, and nothing else.
    STATE_FIELDS = (
        "tie_break",
        "tie_break_seed",
        "_tie_rng",
        "now",
        "_heap",
        "_seq",
        "_events_processed",
        "_running",
        "_cancelled_in_heap",
        "_timers_cancelled",
        "_stale_pops",
        "_compactions",
    )

    def __init__(
        self,
        tie_break: Optional[str] = None,
        tie_break_seed: Optional[int] = None,
    ) -> None:
        if tie_break is None and _FORCED_TIE_BREAK is not None:
            tie_break, forced_seed = _FORCED_TIE_BREAK
            if tie_break_seed is None:
                tie_break_seed = forced_seed
        mode = tie_break or "fifo"
        if mode not in ("fifo", "random"):
            raise SimulationError(f"unknown tie_break mode: {mode!r}")
        self.tie_break = mode
        self.tie_break_seed = 0 if tie_break_seed is None else int(tie_break_seed)
        if mode == "random":
            # Imported here, not at module top: rng is a sibling leaf module
            # but the fifo path must stay import-light.
            from repro.sim.rng import RngRegistry

            self._tie_rng = RngRegistry(self.tie_break_seed).stream("tie-break")
        else:
            self._tie_rng = None
        self.now: float = 0.0
        # Heap entries: (time, key, Timer) where key is the seq (fifo) or a
        # (random draw, seq) pair -- within one simulator the key type is
        # homogeneous, so tuple comparison stays at the C level.
        self._heap: list = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False
        # Perf accounting (always-on: plain int bumps, read by repro.perf).
        self._cancelled_in_heap: int = 0
        self._timers_cancelled: int = 0
        self._stale_pops: int = 0
        self._compactions: int = 0
        if _perf.COLLECTOR is not None:
            _perf.COLLECTOR.adopt_sim(self)
        if _flight.COLLECTOR is not None:
            _flight.COLLECTOR.adopt_sim(self)
        if _profiler.PROFILER is not None:
            _profiler.PROFILER.adopt_sim(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        This is the per-packet path (links and subflows live here), so the
        ``schedule_at`` body is inlined rather than delegated: one call
        frame per packet, not two.  A non-negative delay from ``now`` can
        never land in the past, so only the delay needs validating.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        seq = self._seq + 1
        self._seq = seq
        time = self.now + delay
        timer = Timer(time, seq, callback, args, self)
        # Heap entries are plain tuples: C-level comparisons are several
        # times faster than calling Timer.__lt__ for every sift.
        if self._tie_rng is None:
            key: Any = seq
        else:
            key = (self._tie_rng.random(), seq)
        _heappush(self._heap, (time, key, timer))
        return timer

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self.now!r}"
            )
        seq = self._seq + 1
        self._seq = seq
        timer = Timer(time, seq, callback, args, self)
        if self._tie_rng is None:
            key: Any = seq
        else:
            key = (self._tie_rng.random(), seq)
        _heappush(self._heap, (time, key, timer))
        return timer

    # ------------------------------------------------------------------
    # Cancelled-entry bookkeeping
    # ------------------------------------------------------------------
    def _note_cancellation(self) -> None:
        """Called by :meth:`Timer.cancel`; compacts when dead entries win.

        Compaction rewrites the heap *in place* (slice assignment), so a
        ``run()`` loop holding a local alias to the heap list keeps seeing
        the live structure even when a callback cancels mid-run.
        """
        self._timers_cancelled += 1
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 >= len(heap)
        ):
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled_in_heap = 0
            self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` are executed, and the clock is advanced to
            ``until`` when the queue drains (or only holds later events)
            before reaching it.  When ``max_events`` stops the run first,
            the clock stays at the last dispatched event so the pending
            backlog is still in the future.
        max_events:
            Safety valve for tests and checkpointing drivers; stop after
            this many events.

        Returns
        -------
        int
            Number of (non-cancelled) events executed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = _heappop
        # Bound once per run() call: a branch on a local is free in the
        # hot loop, and toggling the sanitizer or event log mid-run is not
        # supported.
        checks = _sanitize.CHECKS
        log = _events.LOG
        if log is not None and not log.capture_dispatch:
            log = None
        profiler = _profiler.PROFILER
        # Normalized stop conditions: one float compare and one int
        # compare per event instead of two None tests.  Counting up by one
        # from zero makes ``executed == budget`` equivalent to the
        # ``executed >= max_events`` it replaces.
        limit = float("inf") if until is None else until
        budget = -1 if max_events is None else max_events
        run_token: Optional[Tuple[float, float]] = None
        if profiler is not None:
            run_token = profiler.run_started()
        try:
            if checks is None and log is None and profiler is None:
                # Fast path: the common (hooks-off) per-packet loop.  Kept
                # branch-identical to the instrumented loop below -- any
                # semantic edit must be applied to both.
                while heap:
                    entry = heap[0]
                    timer = entry[2]
                    if timer.cancelled:
                        pop(heap)
                        self._stale_pops += 1
                        self._cancelled_in_heap -= 1
                        continue
                    time = entry[0]
                    if time > limit or executed == budget:
                        break
                    pop(heap)
                    self.now = time
                    timer.cancelled = True  # consumed; cancel() after firing is a no-op
                    timer.callback(*timer.args)
                    executed += 1
            else:
                while heap:
                    entry = heap[0]
                    timer = entry[2]
                    if timer.cancelled:
                        pop(heap)
                        self._stale_pops += 1
                        self._cancelled_in_heap -= 1
                        continue
                    time = entry[0]
                    if time > limit or executed == budget:
                        break
                    pop(heap)
                    if checks is not None:
                        checks.event_dispatch(self.now, time)
                    if log is not None:
                        log.emit(_events.Dispatch(t=time, seq=timer.seq))
                    self.now = time
                    timer.cancelled = True  # consumed; cancel() after firing is a no-op
                    if profiler is not None:
                        profiler.begin_event(timer.callback)
                        try:
                            timer.callback(*timer.args)
                        finally:
                            profiler.end_event()
                    else:
                        timer.callback(*timer.args)
                    executed += 1
        finally:
            self._running = False
            self._events_processed += executed
            if profiler is not None and run_token is not None:
                profiler.run_finished(run_token)
        if until is not None and self.now < until:
            # Fast-forward only when nothing is pending at or before
            # ``until``: a budget-stopped run must not leave events in the
            # past (schedule_at would raise and dispatch monotonicity in
            # the sanitizer would be violated on the next call).
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for _, _, t in self._heap if not t.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_processed

    @property
    def timers_scheduled(self) -> int:
        """Total timers ever pushed onto this simulator's heap."""
        return self._seq

    @property
    def timers_cancelled(self) -> int:
        """Live timers cancelled before firing (fired-then-cancelled
        no-ops are not counted)."""
        return self._timers_cancelled

    @property
    def stale_pops(self) -> int:
        """Cancelled heap entries popped and skipped by the event loop --
        the dead weight the heap dragged through sifts before shedding it."""
        return self._stale_pops

    @property
    def heap_compactions(self) -> int:
        """Times the heap was rebuilt to evict cancelled entries."""
        return self._compactions

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries currently sitting in the heap."""
        return self._cancelled_in_heap

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._stale_pops += 1
            self._cancelled_in_heap -= 1
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
