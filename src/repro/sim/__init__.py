"""Discrete-event simulation engine.

This package provides the substrate every other subsystem runs on:

* :class:`~repro.sim.engine.Simulator` -- a heap-based event loop with a
  simulated clock and cancellable timers.
* :class:`~repro.sim.rng.RngRegistry` -- named, independently seeded random
  streams so experiments are reproducible event-order-independently.
* :class:`~repro.sim.trace.TraceRecorder` -- lightweight named time-series
  collection used for CWND traces, send-buffer occupancy, etc.
* :mod:`repro.sim.snapshot` -- checkpoint/fork of a live simulation
  (:func:`~repro.sim.snapshot.capture` / ``restore`` / ``fork``).
"""

from repro.sim.engine import Simulator, Timer
from repro.sim.rng import RngRegistry
from repro.sim.snapshot import Snapshot, SnapshotError, capture, fork, restore
from repro.sim.trace import TraceRecorder

__all__ = [
    "Simulator",
    "Timer",
    "RngRegistry",
    "TraceRecorder",
    "Snapshot",
    "SnapshotError",
    "capture",
    "restore",
    "fork",
]
