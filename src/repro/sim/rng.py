"""Named, independently seeded random streams.

Experiments need reproducibility that is robust to refactoring: adding a new
consumer of randomness must not perturb the draws seen by existing
consumers.  ``RngRegistry`` derives one ``random.Random`` per *named* stream
from a root seed, so the link-loss stream, the bandwidth-change stream, and
the workload-size stream are all independent.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of deterministic per-purpose random streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("loss").random()
    >>> b = RngRegistry(seed=7).stream("loss").random()
    >>> a == b
    True
    >>> rngs.stream("loss") is rngs.stream("loss")
    True
    """

    __slots__ = ("seed", "_streams")

    #: Snapshot contract for checkpoint/fork (audited by RPR915): the
    #: streams dict is captured via ``Random.getstate``/``setstate``.
    STATE_FIELDS = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive(name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
