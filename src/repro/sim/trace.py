"""Lightweight named time-series recording.

Used throughout the library to collect the traces the paper plots: CWND over
time (Figs 11-12), send-buffer occupancy (Fig 3), player download progress
(Fig 1).  Recording is append-only and can be disabled globally for large
parameter sweeps where only summary statistics matter, or capped per series
(``max_samples_per_series``) for long check-mode runs where only the recent
tail of each series is of interest.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs import flight as _flight

Sample = Tuple[float, float]

_Bucket = Union[List[Sample], Deque[Sample]]


class TraceRecorder:
    """Collects ``(time, value)`` samples into named series.

    Parameters
    ----------
    enabled: when False, :meth:`record` is a no-op.
    max_samples_per_series: optional bound per series; once a series is
        full, each new sample evicts the oldest one, so memory stays
        O(series x cap) on arbitrarily long runs.
    """

    __slots__ = ("enabled", "max_samples_per_series", "_series")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("enabled", "max_samples_per_series", "_series")

    def __init__(
        self, enabled: bool = True, max_samples_per_series: Optional[int] = None
    ) -> None:
        if max_samples_per_series is not None and max_samples_per_series < 1:
            raise ValueError(
                f"max_samples_per_series must be >= 1, got {max_samples_per_series!r}"
            )
        self.enabled = enabled
        self.max_samples_per_series = max_samples_per_series
        self._series: Dict[str, _Bucket] = {}
        if _flight.COLLECTOR is not None:
            _flight.COLLECTOR.adopt_trace(self)

    def _bucket(self, series: str) -> _Bucket:
        bucket = self._series.get(series)
        if bucket is None:
            if self.max_samples_per_series is None:
                bucket = []
            else:
                bucket = deque(maxlen=self.max_samples_per_series)
            self._series[series] = bucket
        return bucket

    def record(self, series: str, time: float, value: float) -> None:
        """Append one sample; no-op when the recorder is disabled."""
        if not self.enabled:
            return
        self._bucket(series).append((time, value))

    def series(self, name: str) -> List[Sample]:
        """Samples of one series (empty list if never recorded)."""
        bucket = self._series.get(name)
        if bucket is None:
            return []
        if isinstance(bucket, deque):
            return list(bucket)
        return bucket

    def names(self) -> List[str]:
        """Sorted names of all recorded series."""
        return sorted(self._series)

    def last(self, name: str) -> Sample:
        """Most recent sample of a series.

        Raises
        ------
        KeyError
            If the series has no samples.
        """
        samples = self._series.get(name)
        if not samples:
            raise KeyError(f"no samples recorded for series {name!r}")
        return samples[-1]

    def values(self, name: str) -> List[float]:
        """Just the values of a series, in time order."""
        return [v for _, v in self.series(name)]

    def times(self, name: str) -> List[float]:
        """Just the timestamps of a series, in time order."""
        return [t for t, _ in self.series(name)]

    def window(self, name: str, start: float, end: float) -> List[Sample]:
        """Samples with ``start <= time <= end``."""
        return [(t, v) for t, v in self.series(name) if start <= t <= end]

    def merge(self, other: "TraceRecorder", prefix: str = "") -> None:
        """Copy all series from ``other`` into this recorder."""
        for name in other.names():
            self._bucket(prefix + name).extend(other.series(name))

    def extend(self, series: str, samples: Iterable[Sample]) -> None:
        """Bulk-append pre-timestamped samples (bypasses ``enabled``)."""
        self._bucket(series).extend(samples)

    def clear(self) -> None:
        """Drop all recorded series."""
        self._series.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {k: len(v) for k, v in self._series.items()}
        return f"TraceRecorder(enabled={self.enabled}, series={sizes})"
