"""Lightweight named time-series recording.

Used throughout the library to collect the traces the paper plots: CWND over
time (Figs 11-12), send-buffer occupancy (Fig 3), player download progress
(Fig 1).  Recording is append-only and can be disabled globally for large
parameter sweeps where only summary statistics matter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

Sample = Tuple[float, float]


class TraceRecorder:
    """Collects ``(time, value)`` samples into named series."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._series: Dict[str, List[Sample]] = {}

    def record(self, series: str, time: float, value: float) -> None:
        """Append one sample; no-op when the recorder is disabled."""
        if not self.enabled:
            return
        self._series.setdefault(series, []).append((time, value))

    def series(self, name: str) -> List[Sample]:
        """Samples of one series (empty list if never recorded)."""
        return self._series.get(name, [])

    def names(self) -> List[str]:
        """Sorted names of all recorded series."""
        return sorted(self._series)

    def last(self, name: str) -> Sample:
        """Most recent sample of a series.

        Raises
        ------
        KeyError
            If the series has no samples.
        """
        samples = self._series.get(name)
        if not samples:
            raise KeyError(f"no samples recorded for series {name!r}")
        return samples[-1]

    def values(self, name: str) -> List[float]:
        """Just the values of a series, in time order."""
        return [v for _, v in self.series(name)]

    def times(self, name: str) -> List[float]:
        """Just the timestamps of a series, in time order."""
        return [t for t, _ in self.series(name)]

    def window(self, name: str, start: float, end: float) -> List[Sample]:
        """Samples with ``start <= time <= end``."""
        return [(t, v) for t, v in self.series(name) if start <= t <= end]

    def merge(self, other: "TraceRecorder", prefix: str = "") -> None:
        """Copy all series from ``other`` into this recorder."""
        for name in other.names():
            dest = self._series.setdefault(prefix + name, [])
            dest.extend(other.series(name))

    def extend(self, series: str, samples: Iterable[Sample]) -> None:
        """Bulk-append pre-timestamped samples (bypasses ``enabled``)."""
        self._series.setdefault(series, []).extend(samples)

    def clear(self) -> None:
        """Drop all recorded series."""
        self._series.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {k: len(v) for k, v in self._series.items()}
        return f"TraceRecorder(enabled={self.enabled}, series={sizes})"
