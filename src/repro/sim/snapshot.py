"""Runtime checkpoint/fork of a live simulation.

This is the runtime half of the ROADMAP's counterfactual-twin item; the
static half is ``state-model.json`` (PR 8).  :func:`capture` walks the
object graph from the :class:`~repro.sim.engine.Simulator` and any extra
roots, deep-copying exactly the ``STATE_FIELDS`` every class declares:

* the engine heap, including live :class:`~repro.sim.engine.Timer`\\ s --
  their callbacks are encoded as *(owner, method-name)* pairs and rebound
  through the restore registry, never copied raw (the ``SNAPSHOT_REBIND``
  declaration that exempts them from RPR914 is this protocol's contract);
* :class:`~repro.sim.rng.RngRegistry` streams via ``Random.getstate`` /
  ``setstate``;
* receiver reassembly maps, subflow retransmission state, congestion
  controllers, RTT estimators (deque ``maxlen`` preserved), schedulers.

The walk is *refusing* by construction, in both directions:

* an object whose class declares no ``STATE_FIELDS`` (and is not a
  dataclass) cannot be captured;
* an instance attribute outside the declared contract is an error, and
  every captured field must also appear in the committed
  ``state-model.json`` for the class -- the static contract gates the
  runtime one;
* opaque callables (lambdas, closures) are rejected with a pointer at
  the offending field, because no registry can rebind them.

:func:`restore` rebuilds the world two-phase -- blank instances first,
then field fills with references resolved through the registry -- and
:func:`fork` layers a caller override (e.g. forcing the opposite ECF
decision) on a restored world.  Since the simulator is deterministic,
``capture`` at an event boundary followed by ``restore`` replays the
original future byte-identically; the twin driver in
:mod:`repro.experiments.twin` builds on exactly that property.

Checkpoints are event-boundary only: :func:`capture` refuses while
``Simulator.run()`` is on the stack, because the Python frames of a
half-executed callback are not state the protocol can copy.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import importlib
import json
import random
import types
from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.sim.engine import Simulator

__all__ = ["Snapshot", "SnapshotError", "capture", "restore", "fork"]

#: Attribute prefix the sanitizer uses for its scratch state (for example
#: ``MptcpReceiver._sz_dsn_floor``).  Scratch is not simulation state: it
#: is skipped at capture and simply absent on restored instances (every
#: sanitizer read defaults it).
_SANITIZER_PREFIX = "_sz_"

_PRIMITIVES = (type(None), bool, int, float, str, bytes)


class SnapshotError(RuntimeError):
    """A capture or restore hit state outside the snapshot contract."""


class Snapshot:
    """An immutable deep copy of a simulation world.

    ``nodes`` is the object table in registration order (node 0 is the
    simulator); ``roots`` maps the caller's root names to encoded
    values.  Two captures of identical world state produce structurally
    identical snapshots, so :meth:`digest` doubles as a cheap
    state-equality probe.
    """

    __slots__ = ("nodes", "roots")

    def __init__(self, nodes: List[Dict[str, Any]], roots: Dict[str, Any]) -> None:
        self.nodes = list(nodes)
        self.roots = dict(roots)

    def digest(self) -> str:
        """Deterministic fingerprint of the captured state."""
        payload = repr((self.nodes, sorted(self.roots.items())))
        return hashlib.sha256(payload.encode()).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Snapshot):
            return NotImplemented
        return self.nodes == other.nodes and self.roots == other.roots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot({len(self.nodes)} objects, roots={sorted(self.roots)})"


# ----------------------------------------------------------------------
# The static contract gate
# ----------------------------------------------------------------------

_MODEL_INDEX: Optional[Dict[str, Set[str]]] = None
_MODEL_LOADED = False


def _model_index() -> Optional[Dict[str, Set[str]]]:
    """Field closure per class from the committed ``state-model.json``.

    Located by walking up from this package (the repo root keeps the
    file next to ``src/``); ``None`` when no committed model is found,
    in which case the static gate is skipped.
    """
    global _MODEL_INDEX, _MODEL_LOADED
    if _MODEL_LOADED:
        return _MODEL_INDEX
    _MODEL_LOADED = True
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "state-model.json"
        if candidate.is_file():
            from repro.analysis.state import state_fields_index

            document = json.loads(candidate.read_text())
            _MODEL_INDEX = state_fields_index(document)
            break
    return _MODEL_INDEX


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _declared_fields(cls: type) -> Optional[Tuple[str, ...]]:
    """Effective STATE_FIELDS: base-first union over the MRO, or None."""
    names: List[str] = []
    seen: Set[str] = set()
    declared = False
    for klass in reversed(cls.__mro__):
        own = klass.__dict__.get("STATE_FIELDS")
        if own is None:
            continue
        declared = True
        for name in own:
            if name not in seen:
                seen.add(name)
                names.append(name)
    return tuple(names) if declared else None


def _instance_attrs(obj: Any) -> Set[str]:
    """Every attribute actually present on the instance."""
    names: Set[str] = set()
    if hasattr(obj, "__dict__"):
        names.update(obj.__dict__)
    for klass in type(obj).__mro__:
        for slot in klass.__dict__.get("__slots__", ()):
            if slot not in ("__dict__", "__weakref__") and hasattr(obj, slot):
                names.add(slot)
    return names


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------


class _Capture:
    def __init__(self) -> None:
        self.nodes: List[Dict[str, Any]] = []
        self.memo: Dict[int, int] = {}
        self.model = _model_index()

    def encode(self, value: Any, where: str) -> Any:
        if isinstance(value, _PRIMITIVES):
            return value
        if isinstance(value, tuple):
            return {"__snap__": "tuple",
                    "items": [self.encode(v, where) for v in value]}
        if isinstance(value, list):
            return {"__snap__": "list",
                    "items": [self.encode(v, where) for v in value]}
        if isinstance(value, deque):
            return {"__snap__": "deque", "maxlen": value.maxlen,
                    "items": [self.encode(v, where) for v in value]}
        if isinstance(value, (set, frozenset)):
            kind = "frozenset" if isinstance(value, frozenset) else "set"
            items = sorted(value, key=repr)
            return {"__snap__": kind,
                    "items": [self.encode(v, where) for v in items]}
        if isinstance(value, dict):
            return {"__snap__": "dict",
                    "items": [[self.encode(k, where), self.encode(v, where)]
                              for k, v in value.items()]}
        if isinstance(value, random.Random):
            # Registered like an object so aliasing survives: a stream
            # held by both the RngRegistry and a Link must restore to
            # ONE Random, or their futures diverge.
            oid = id(value)
            index = self.memo.get(oid)
            if index is None:
                index = len(self.nodes)
                self.memo[oid] = index
                self.nodes.append({
                    "cls": "random.Random",
                    "fields": {},
                    "rng": self.encode(value.getstate(), where),
                })
            return {"__snap__": "ref", "id": index}
        if isinstance(value, types.MethodType):
            return self._encode_method(value, where)
        if isinstance(value, functools.partial):
            return {"__snap__": "partial",
                    "func": self.encode(value.func, where),
                    "args": [self.encode(v, where) for v in value.args],
                    "keywords": [[k, self.encode(v, where)]
                                 for k, v in sorted(value.keywords.items())]}
        if isinstance(value, types.FunctionType):
            return self._encode_function(value, where)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return self._encode_object(
                value, [f.name for f in dataclasses.fields(value)], where
            )
        declared = _declared_fields(type(value))
        if declared is not None:
            return self._encode_object(value, list(declared), where)
        raise SnapshotError(
            f"{where}: cannot snapshot {_qualname(type(value))} -- the class "
            "declares no STATE_FIELDS and is not a dataclass"
        )

    def _encode_object(self, obj: Any, fields: List[str], where: str) -> Any:
        oid = id(obj)
        index = self.memo.get(oid)
        if index is not None:
            return {"__snap__": "ref", "id": index}
        index = len(self.nodes)
        self.memo[oid] = index
        qual = _qualname(type(obj))
        node: Dict[str, Any] = {"cls": qual, "fields": {}}
        self.nodes.append(node)
        declared = set(fields)
        present = _instance_attrs(obj)
        extra = sorted(
            name for name in present
            if name not in declared and not name.startswith(_SANITIZER_PREFIX)
        )
        if extra:
            raise SnapshotError(
                f"{qual} carries attribute(s) outside its snapshot contract: "
                f"{', '.join(extra)} (declare them in STATE_FIELDS)"
            )
        allowed = None if self.model is None else self.model.get(qual)
        for name in fields:
            if name not in present:
                continue  # declared, currently unset (slot never filled)
            if allowed is not None and name not in allowed:
                raise SnapshotError(
                    f"{qual}.{name} is not in state-model.json -- regenerate "
                    "the model (python -m repro.cli state -o state-model.json) "
                    "before snapshotting"
                )
            node["fields"][name] = self.encode(
                getattr(obj, name), f"{qual}.{name}"
            )
        return {"__snap__": "ref", "id": index}

    def _encode_method(self, method: types.MethodType, where: str) -> Any:
        owner = method.__self__
        name = method.__func__.__name__
        if isinstance(owner, type) or getattr(type(owner), name, None) is None:
            raise SnapshotError(
                f"{where}: cannot rebind bound method {name!r} -- its owner "
                f"{type(owner).__name__} does not define it"
            )
        return {"__snap__": "method",
                "owner": self.encode(owner, where), "name": name}

    def _encode_function(self, func: types.FunctionType, where: str) -> Any:
        if func.__name__ == "<lambda>" or "<locals>" in func.__qualname__ or func.__closure__:
            raise SnapshotError(
                f"{where}: cannot snapshot {func.__qualname__!r} -- lambdas "
                "and closures are not rebindable; store a bound method of a "
                "snapshot-reachable object instead"
            )
        return {"__snap__": "function",
                "module": func.__module__, "qualname": func.__qualname__}


def capture(sim: Simulator, roots: Optional[Mapping[str, Any]] = None) -> Snapshot:
    """Deep-copy the world reachable from ``sim`` and ``roots``.

    ``roots`` names extra entry points (connections, sessions, result
    recorders) so :func:`restore` can hand them back by name; ``"sim"``
    is reserved for the simulator itself.  Only callable between
    ``run()`` calls -- a capture mid-callback would miss the Python
    stack.
    """
    if sim._running:
        raise SnapshotError("capture() is only valid between run() calls")
    if roots and "sim" in roots:
        raise SnapshotError("root name 'sim' is reserved for the simulator")
    walker = _Capture()
    encoded_roots = {"sim": walker.encode(sim, "roots[sim]")}
    for name, obj in (roots or {}).items():
        encoded_roots[name] = walker.encode(obj, f"roots[{name}]")
    return Snapshot(walker.nodes, encoded_roots)


# ----------------------------------------------------------------------
# Restore / fork
# ----------------------------------------------------------------------


def _resolve_class(qual: str) -> type:
    module_name, _, rest = qual.rpartition(".")
    probe = module_name
    attrs = [rest]
    while probe:
        try:
            module = importlib.import_module(probe)
        except ImportError:
            probe, _, head = probe.rpartition(".")
            attrs.insert(0, head)
            continue
        target: Any = module
        for attr in attrs:
            target = getattr(target, attr)
        if not isinstance(target, type):
            raise SnapshotError(f"{qual} is not a class")
        return target
    raise SnapshotError(f"cannot resolve class {qual!r}")


class _Restore:
    __slots__ = ("snapshot", "instances")

    def __init__(self, snapshot: Snapshot) -> None:
        self.snapshot = snapshot
        self.instances: List[Any] = []
        for node in snapshot.nodes:
            if node["cls"] == "random.Random":
                # Allocation only -- seeding would be wasted work, the
                # captured ``getstate`` tuple overwrites it in phase 2.
                self.instances.append(random.Random.__new__(random.Random))
            else:
                cls = _resolve_class(node["cls"])
                self.instances.append(cls.__new__(cls))
        for node, obj in zip(snapshot.nodes, self.instances):
            if node["cls"] == "random.Random":
                obj.setstate(self.decode(node["rng"]))
                continue
            frozen = dataclasses.is_dataclass(obj) and getattr(
                type(obj), "__dataclass_params__"
            ).frozen
            setter = object.__setattr__ if frozen else setattr
            for name, encoded in node["fields"].items():
                setter(obj, name, self.decode(encoded))

    def decode(self, encoded: Any) -> Any:
        if isinstance(encoded, _PRIMITIVES):
            return encoded
        tag = encoded["__snap__"]
        if tag == "ref":
            return self.instances[encoded["id"]]
        if tag == "tuple":
            return tuple(self.decode(v) for v in encoded["items"])
        if tag == "list":
            return [self.decode(v) for v in encoded["items"]]
        if tag == "deque":
            return deque(
                (self.decode(v) for v in encoded["items"]),
                maxlen=encoded["maxlen"],
            )
        if tag == "set":
            return {self.decode(v) for v in encoded["items"]}
        if tag == "frozenset":
            return frozenset(self.decode(v) for v in encoded["items"])
        if tag == "dict":
            return {self.decode(k): self.decode(v) for k, v in encoded["items"]}
        if tag == "method":
            return getattr(self.decode(encoded["owner"]), encoded["name"])
        if tag == "partial":
            return functools.partial(
                self.decode(encoded["func"]),
                *[self.decode(v) for v in encoded["args"]],
                **{k: self.decode(v) for k, v in encoded["keywords"]},
            )
        if tag == "function":
            module = importlib.import_module(encoded["module"])
            target: Any = module
            for attr in encoded["qualname"].split("."):
                target = getattr(target, attr)
            return target
        raise SnapshotError(f"unknown snapshot tag {tag!r}")  # pragma: no cover


def restore(snapshot: Snapshot) -> Dict[str, Any]:
    """Rebuild an independent world; returns the named roots.

    The result maps every root name passed to :func:`capture` (plus
    ``"sim"``) to its freshly built object.  Nothing is shared with the
    captured world: mutating one cannot perturb the other.
    """
    # noqa: restore legitimately re-materializes captured Random streams
    # from their getstate tuples; no registry seed is involved.
    restorer = _Restore(snapshot)  # repro: noqa[RPR813]
    return {name: restorer.decode(encoded)
            for name, encoded in snapshot.roots.items()}


def fork(
    snapshot: Snapshot, override: Optional[Callable[[Dict[str, Any]], None]] = None
) -> Dict[str, Any]:
    """Restore a world and apply a counterfactual ``override`` to it.

    ``override`` receives the restored roots dict and mutates state in
    place -- e.g. forcing the opposite choice on an
    :class:`~repro.core.ecf.EcfScheduler` -- before the caller runs the
    forked future to completion.
    """
    world = restore(snapshot)  # repro: noqa[RPR813] -- see restore()
    if override is not None:
        override(world)
    return world
