"""MP-DASH-style deadline-aware path management (Han et al., CoNEXT 2016).

The paper's Section 7 contrasts ECF with MP-DASH: "it activates and
deactivates cellular paths according to required bandwidths to meet
deadlines for chunk downloads regardless of path heterogeneity", and it
requires cross-layer knowledge (the streaming client's rate requirement)
plus client and server modifications -- where ECF is a transparent
server-side per-packet scheduler.

This module implements that policy so the two approaches can be compared
inside the same stack:

* :class:`MpDashScheduler` prefers the preferred (primary, typically WiFi)
  interface, and admits the cellular interfaces only while they are
  *activated*;
* :class:`MpDashPathManager` is the cross-layer half: the DASH player
  tells it each chunk's bitrate and deadline (the chunk duration), it
  estimates the preferred path's current rate from CWND/SRTT, and
  activates cellular only when the preferred path alone would miss the
  deadline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.dash.media import Representation
    from repro.apps.dash.player import DashPlayer
    from repro.mptcp.connection import MptcpConnection
    from repro.tcp.subflow import Subflow

#: Safety margin on the required rate before cellular is activated
#: (MP-DASH activates early enough to make the deadline, not exactly).
DEFAULT_MARGIN = 1.2


class MpDashScheduler(Scheduler):
    """Preferred-path-first scheduler with a cellular activation gate.

    Subflow 0 (the primary interface) is always admissible; the other
    subflows carry data only while ``cellular_active`` is set by the path
    manager.  Within the admissible set, lowest-RTT-first applies.
    """

    name = "mpdash"

    __slots__ = ("cellular_active", "activations", "deactivations")

    def __init__(self) -> None:
        super().__init__()
        self.cellular_active = True  # safe default before any requirement
        self.activations = 0
        self.deactivations = 0

    def set_cellular(self, active: bool) -> None:
        if active and not self.cellular_active:
            self.activations += 1
        if not active and self.cellular_active:
            self.deactivations += 1
        self.cellular_active = active

    def select(self, conn: "MptcpConnection") -> Optional["Subflow"]:
        self.decisions += 1
        admissible = [
            sf for sf in conn.subflows
            if sf.can_send() and (sf.sf_id == 0 or self.cellular_active)
        ]
        choice = self.fastest(admissible)
        if choice is None:
            self.waits += 1
        return choice


class MpDashPathManager:
    """Cross-layer deadline monitor driving the activation gate.

    Wire it to a player with :meth:`attach`; on every chunk request it
    re-evaluates whether the preferred path alone sustains the chunk's
    bitrate (chunk bytes over chunk duration) with a safety margin.
    """

    __slots__ = ("scheduler", "conn", "margin", "requirements_seen")

    def __init__(
        self,
        scheduler: MpDashScheduler,
        conn: "MptcpConnection",
        margin: float = DEFAULT_MARGIN,
    ) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin!r}")
        self.scheduler = scheduler
        self.conn = conn
        self.margin = margin
        self.requirements_seen = 0

    def attach(self, player: "DashPlayer") -> None:
        player.on_chunk_request = self.on_chunk_request

    def preferred_rate_estimate_bps(self) -> float:
        """Current deliverable rate of the preferred path: CWND per RTT."""
        preferred = self.conn.subflows[0]
        srtt = preferred.srtt_or_default()
        if srtt <= 0:
            return 0.0
        return preferred.cwnd * preferred.mss * 8.0 / srtt

    def on_chunk_request(self, representation: "Representation", chunk_duration: float) -> None:
        self.requirements_seen += 1
        required = representation.bitrate_bps * self.margin
        self.scheduler.set_cellular(self.preferred_rate_estimate_bps() < required)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MpDashPathManager(margin={self.margin}, "
            f"cellular_active={self.scheduler.cellular_active})"
        )
