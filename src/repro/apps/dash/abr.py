"""Adaptive bit-rate selection algorithms.

The paper's client uses "a state-of-art adaptive bit rate selection (ABR)
algorithm [12]" -- the buffer-based approach (BBA) of Huang et al.
(SIGCOMM 2014).  :class:`BufferBasedAbr` implements BBA-0's rate map with
the customary throughput-informed startup phase (pure BBA-0 is only
defined once the buffer is in steady state).  A throughput-EWMA ABR and a
fixed-rate ABR round out the set for comparisons and calibration.

The ABR sees a small snapshot of player state and returns the
representation for the *next* chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.dash.media import Representation, VideoManifest


@dataclass(frozen=True)
class AbrInputs:
    """What the player shows the ABR before each chunk request."""

    buffer_level: float
    throughput_estimate_bps: Optional[float]
    last_representation: Optional[Representation]
    startup: bool
    #: Most recent per-chunk throughput samples, oldest first (used by
    #: robust estimators such as the harmonic-mean ABR).
    recent_throughputs_bps: tuple = ()


class AbrAlgorithm:
    """Interface: pick the representation for the next chunk."""

    name = "abr"

    def choose(self, manifest: VideoManifest, inputs: AbrInputs) -> Representation:
        raise NotImplementedError


class FixedAbr(AbrAlgorithm):
    """Always request the same representation (calibration/testing)."""

    name = "fixed"

    def __init__(self, representation: Representation) -> None:
        self.representation = representation

    def choose(self, manifest: VideoManifest, inputs: AbrInputs) -> Representation:
        if self.representation not in manifest.representations:
            raise ValueError(
                f"{self.representation!r} is not in the manifest"
            )
        return self.representation


class ThroughputAbr(AbrAlgorithm):
    """Classic rate-based ABR: EWMA of chunk throughput with a safety factor."""

    name = "throughput"

    def __init__(self, safety: float = 0.85) -> None:
        if not 0.0 < safety <= 1.0:
            raise ValueError(f"safety must be in (0, 1], got {safety!r}")
        self.safety = safety

    def choose(self, manifest: VideoManifest, inputs: AbrInputs) -> Representation:
        estimate = inputs.throughput_estimate_bps
        if estimate is None:
            return manifest.lowest
        return manifest.best_under(self.safety * estimate)


class HarmonicThroughputAbr(AbrAlgorithm):
    """Rate-based ABR using the harmonic mean of recent chunk throughputs.

    The harmonic mean is dominated by the *slow* samples, making the
    estimator robust against one lucky fast chunk -- the standard trick in
    robust-MPC-style players.  Falls back to the EWMA estimate (then the
    lowest rate) when history is short.
    """

    name = "harmonic"

    def __init__(self, safety: float = 0.9, window: int = 5) -> None:
        if not 0.0 < safety <= 1.0:
            raise ValueError(f"safety must be in (0, 1], got {safety!r}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self.safety = safety
        self.window = window

    def choose(self, manifest: VideoManifest, inputs: AbrInputs) -> Representation:
        samples = [s for s in inputs.recent_throughputs_bps[-self.window:] if s > 0]
        if samples:
            estimate = len(samples) / sum(1.0 / s for s in samples)
        elif inputs.throughput_estimate_bps is not None:
            estimate = inputs.throughput_estimate_bps
        else:
            return manifest.lowest
        return manifest.best_under(self.safety * estimate)


class BufferBasedAbr(AbrAlgorithm):
    """BBA (Huang et al.): map buffer occupancy to bitrate.

    * buffer below ``reservoir`` seconds -> lowest representation;
    * buffer above ``reservoir + cushion`` -> highest;
    * in between -> linear interpolation in bitrate, snapped down to an
      available representation.

    During startup (before playback begins) the player has no steady-state
    buffer signal, so the throughput estimate picks the rate, as in the
    BBA paper's startup heuristic.  Steady state is the pure BBA-0 buffer
    map: the rate climbs whenever the buffer is full *regardless of the
    throughput estimate* -- this is the property that lets a good path
    scheduler translate into a higher selected bitrate (the ABR probes up,
    and only a scheduler that sustains the aggregate bandwidth keeps the
    buffer from draining back down).  An optional ``cap_factor`` restores
    a throughput guard for experiments that want less rate oscillation.
    """

    name = "bba"

    def __init__(
        self,
        reservoir: float = 5.0,
        cushion: float = 10.0,
        cap_factor: Optional[float] = None,
    ) -> None:
        if reservoir <= 0 or cushion <= 0:
            raise ValueError("reservoir and cushion must be positive")
        self.reservoir = reservoir
        self.cushion = cushion
        self.cap_factor = cap_factor

    def choose(self, manifest: VideoManifest, inputs: AbrInputs) -> Representation:
        estimate = inputs.throughput_estimate_bps
        if inputs.startup:
            if estimate is None:
                return manifest.lowest
            return manifest.best_under(0.85 * estimate)
        level = inputs.buffer_level
        low = manifest.lowest.bitrate_bps
        high = manifest.highest.bitrate_bps
        if level <= self.reservoir:
            target = low
        elif level >= self.reservoir + self.cushion:
            target = high
        else:
            frac = (level - self.reservoir) / self.cushion
            target = low + frac * (high - low)
        if self.cap_factor is not None and estimate is not None:
            target = min(target, self.cap_factor * estimate)
        return manifest.best_under(target)


def make_abr(name: str, manifest: Optional[VideoManifest] = None, **params) -> AbrAlgorithm:
    """Factory: "bba", "throughput", "harmonic", or "fixed:<rep name>"
    (the fixed form needs the manifest to resolve the name)."""
    lowered = name.lower()
    if lowered == "bba":
        return BufferBasedAbr(**params)
    if lowered == "throughput":
        return ThroughputAbr(**params)
    if lowered == "harmonic":
        return HarmonicThroughputAbr(**params)
    if lowered.startswith("fixed:"):
        if manifest is None:
            raise ValueError("fixed ABR requires a manifest to resolve the name")
        rep_name = name.split(":", 1)[1]
        for rep in manifest.representations:
            if rep.name == rep_name:
                return FixedAbr(rep, **params)
        raise ValueError(f"no representation named {rep_name!r} in manifest")
    raise ValueError(f"unknown ABR {name!r}")
