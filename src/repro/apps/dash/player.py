"""The DASH client player (Section 2.2).

Lifecycle per the paper:

* **initial buffering** -- fetch chunks back-to-back until the playback
  buffer reaches its prescribed maximum; playback starts earlier, once a
  "second sufficient threshold" is buffered;
* **steady state (ON-OFF)** -- after initial buffering, "the player pauses
  video download until the buffer level falls below the prescribed
  maximum": each 5-second chunk consumed opens room for the next request,
  producing OFF periods of roughly one chunk duration during which the
  MPTCP connection sits idle -- long enough to trip the idle CWND reset;
* **rebuffering** -- if the buffer empties, playback stops and the player
  refills to a resume threshold before playing again.

The player issues chunk GETs through an :class:`~repro.apps.http.HttpSession`
and feeds measured chunk throughput to its ABR algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.apps.dash.abr import AbrAlgorithm, AbrInputs, BufferBasedAbr
from repro.apps.dash.media import Representation, VideoManifest
from repro.apps.http import GetResult, HttpSession
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

#: Throughput EWMA gain for the ABR's estimate.
EWMA_GAIN = 0.3


@dataclass(frozen=True)
class ChunkRecord:
    """One downloaded chunk."""

    index: int
    representation: Representation
    requested_at: float
    completed_at: float
    size: int

    @property
    def download_time(self) -> float:
        return self.completed_at - self.requested_at

    @property
    def throughput_bps(self) -> float:
        elapsed = self.download_time
        return self.size * 8.0 / elapsed if elapsed > 0 else 0.0


@dataclass
class StreamingMetrics:
    """Session-level summary the experiments consume."""

    chunks: List[ChunkRecord] = field(default_factory=list)
    rebuffer_time: float = 0.0
    rebuffer_events: int = 0
    startup_completed_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def average_bitrate_bps(self) -> float:
        """Mean selected bitrate over downloaded chunks (the paper's
        'average measured bit rate')."""
        if not self.chunks:
            return 0.0
        return sum(c.representation.bitrate_bps for c in self.chunks) / len(self.chunks)

    def steady_chunks(self) -> List[ChunkRecord]:
        """Chunks requested after initial buffering completed.

        Scaled-down runs are startup-heavy; the paper's 20-minute runs are
        not, so steady-state averages are the comparable statistic.
        Falls back to all chunks if startup never completed.
        """
        t0 = self.startup_completed_at
        if t0 is None:
            return list(self.chunks)
        steady = [c for c in self.chunks if c.requested_at >= t0]
        return steady or list(self.chunks)

    @property
    def steady_average_bitrate_bps(self) -> float:
        """Mean selected bitrate over post-startup chunks."""
        chunks = self.steady_chunks()
        if not chunks:
            return 0.0
        return sum(c.representation.bitrate_bps for c in chunks) / len(chunks)

    @property
    def steady_average_throughput_bps(self) -> float:
        """Mean per-chunk download throughput over post-startup chunks."""
        chunks = self.steady_chunks()
        rates = [c.throughput_bps for c in chunks if c.throughput_bps > 0]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def average_throughput_bps(self) -> float:
        """Bytes downloaded over active session time."""
        if not self.chunks:
            return 0.0
        total = sum(c.size for c in self.chunks)
        start = self.chunks[0].requested_at
        end = self.chunks[-1].completed_at
        if end <= start:
            return 0.0
        return total * 8.0 / (end - start)

    def chunk_throughputs_bps(self) -> List[float]:
        """Per-chunk download throughput (Fig 17)."""
        return [c.throughput_bps for c in self.chunks]


class DashPlayer:
    """Adaptive streaming client over one HTTP session.

    Parameters
    ----------
    sim: the simulator.
    session: HTTP session to fetch chunks through.
    manifest: the video.
    abr: bit-rate selection algorithm (default: buffer-based BBA).
    max_buffer: prescribed maximum playback buffer, seconds.
    start_threshold: buffered seconds at which playback begins.
    resume_threshold: buffered seconds ending a rebuffering phase.
    trace: optional recorder; series ``player.buffer``,
        ``player.download_bytes`` (Fig 1), and ``player.bitrate``.
    """

    def __init__(
        self,
        sim: Simulator,
        session: HttpSession,
        manifest: VideoManifest,
        abr: Optional[AbrAlgorithm] = None,
        max_buffer: float = 25.0,
        start_threshold: float = 10.0,
        resume_threshold: float = 10.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if start_threshold > max_buffer or resume_threshold > max_buffer:
            raise ValueError("thresholds cannot exceed max_buffer")
        self.sim = sim
        self.session = session
        self.manifest = manifest
        self.abr = abr or BufferBasedAbr()
        self.max_buffer = max_buffer
        self.start_threshold = start_threshold
        self.resume_threshold = resume_threshold
        self.trace = trace

        self.metrics = StreamingMetrics()
        self.buffer_level = 0.0
        self.playing = False
        self.startup = True
        self.rebuffering = False
        self.finished = False
        self.downloaded_bytes = 0
        self._next_chunk = 0
        self._last_update = sim.now
        self._last_rep: Optional[Representation] = None
        self._throughput_ewma: Optional[float] = None
        self._recent_throughputs: List[float] = []
        self._started = False
        #: Optional cross-layer hook: called as
        #: ``on_chunk_request(representation, chunk_duration)`` right
        #: before each chunk GET is issued (MP-DASH-style path managers
        #: learn the current rate requirement through this).
        self.on_chunk_request: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Session control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the streaming session (request the first chunk)."""
        if self._started:
            raise RuntimeError("player already started")
        self._started = True
        self._request_next()

    # ------------------------------------------------------------------
    # Buffer dynamics
    # ------------------------------------------------------------------
    def _update_buffer(self) -> None:
        """Advance playback consumption to the current time."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if not self.playing or elapsed <= 0:
            return
        if elapsed >= self.buffer_level:
            # Playback ran dry somewhere inside the interval.
            stalled = elapsed - self.buffer_level
            self.buffer_level = 0.0
            self.playing = False
            if not self.finished:
                self.rebuffering = True
                self.metrics.rebuffer_events += 1
                self.metrics.rebuffer_time += stalled
        else:
            self.buffer_level -= elapsed

    # ------------------------------------------------------------------
    # Chunk pipeline
    # ------------------------------------------------------------------
    def _request_next(self) -> None:
        self._update_buffer()
        inputs = AbrInputs(
            buffer_level=self.buffer_level,
            throughput_estimate_bps=self._throughput_ewma,
            last_representation=self._last_rep,
            startup=self.startup,
            recent_throughputs_bps=tuple(self._recent_throughputs[-8:]),
        )
        representation = self.abr.choose(self.manifest, inputs)
        if self.on_chunk_request is not None:
            self.on_chunk_request(representation, self.manifest.chunk_duration)
        size = representation.chunk_bytes(self.manifest.chunk_duration)
        index = self._next_chunk
        self._next_chunk += 1
        requested_at = self.sim.now
        if self.trace is not None:
            self.trace.record("player.bitrate", requested_at, representation.bitrate_bps)

        def _on_complete(result: GetResult, rep=representation, idx=index, t0=requested_at) -> None:
            self._on_chunk_complete(rep, idx, t0, result)

        self.session.get(size, _on_complete)

    def _on_chunk_complete(
        self, rep: Representation, index: int, requested_at: float, result: GetResult
    ) -> None:
        self._update_buffer()
        now = self.sim.now
        record = ChunkRecord(
            index=index,
            representation=rep,
            requested_at=requested_at,
            completed_at=now,
            size=result.size,
        )
        self.metrics.chunks.append(record)
        self.downloaded_bytes += result.size
        self._last_rep = rep
        sample = record.throughput_bps
        if sample > 0:
            self._recent_throughputs.append(sample)
            if self._throughput_ewma is None:
                self._throughput_ewma = sample
            else:
                self._throughput_ewma = (
                    (1.0 - EWMA_GAIN) * self._throughput_ewma + EWMA_GAIN * sample
                )
        self.buffer_level = min(self.max_buffer, self.buffer_level + self.manifest.chunk_duration)
        if self.trace is not None:
            self.trace.record("player.download_bytes", now, float(self.downloaded_bytes))
            self.trace.record("player.buffer", now, self.buffer_level)

        # Phase transitions.  Startup (throughput-driven ABR) ends when
        # playback begins; from there the buffer map is in charge.
        if not self.playing:
            threshold = self.resume_threshold if self.rebuffering else self.start_threshold
            if self.buffer_level >= threshold or self._next_chunk >= self.manifest.num_chunks:
                self.playing = True
                self.rebuffering = False
                self._last_update = now
                if self.startup:
                    self.startup = False
                    self.metrics.startup_completed_at = now

        if self._next_chunk >= self.manifest.num_chunks:
            self.finished = True
            self.metrics.finished_at = now
            return

        # ON-OFF: wait for the buffer to drain one chunk's worth of room.
        room = self.max_buffer - self.buffer_level
        if room >= self.manifest.chunk_duration or not self.playing:
            self._request_next()
        else:
            wait = self.manifest.chunk_duration - room
            self.sim.schedule(wait, self._request_next)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "finished" if self.finished
            else "startup" if self.startup
            else "rebuffering" if self.rebuffering
            else "steady"
        )
        return (
            f"DashPlayer({state}, buffer={self.buffer_level:.1f}s, "
            f"chunk={self._next_chunk}/{self.manifest.num_chunks})"
        )
