"""Video representations and manifests.

Table 1 of the paper::

    Resolution  144p  240p  360p  480p  760p  1080p
    Bit rate    0.26  0.64  1.00  1.60  4.14  8.47   (Mbps)

The testbed video is 1332 s long, served as 5-second chunks in six
representations ("just as Youtube does").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Representation:
    """One encoding of the video."""

    name: str
    bitrate_bps: float

    def chunk_bytes(self, chunk_duration: float) -> int:
        """Size of one chunk of this representation, bytes."""
        return max(1, int(self.bitrate_bps * chunk_duration / 8.0))

    @property
    def bitrate_mbps(self) -> float:
        return self.bitrate_bps / 1e6


#: Table 1 of the paper (note: the paper labels the 4.14 Mbps tier "760p";
#: that is its typo for 720p, kept here as 720p).
PAPER_REPRESENTATIONS: Tuple[Representation, ...] = (
    Representation("144p", 0.26e6),
    Representation("240p", 0.64e6),
    Representation("360p", 1.00e6),
    Representation("480p", 1.60e6),
    Representation("720p", 4.14e6),
    Representation("1080p", 8.47e6),
)

#: The paper's chunk length, seconds.
PAPER_CHUNK_DURATION = 5.0

#: The paper's video length, seconds.
PAPER_VIDEO_DURATION = 1332.0


class VideoManifest:
    """A DASH manifest: representations + chunk grid.

    >>> manifest = VideoManifest(duration=20.0, chunk_duration=5.0)
    >>> manifest.num_chunks
    4
    """

    __slots__ = ("duration", "chunk_duration", "representations")

    def __init__(
        self,
        duration: float = PAPER_VIDEO_DURATION,
        chunk_duration: float = PAPER_CHUNK_DURATION,
        representations: Sequence[Representation] = PAPER_REPRESENTATIONS,
    ) -> None:
        if duration <= 0 or chunk_duration <= 0:
            raise ValueError("duration and chunk_duration must be positive")
        if not representations:
            raise ValueError("at least one representation is required")
        rates = [r.bitrate_bps for r in representations]
        if rates != sorted(rates):
            raise ValueError("representations must be sorted by bitrate")
        self.duration = float(duration)
        self.chunk_duration = float(chunk_duration)
        self.representations: List[Representation] = list(representations)

    @property
    def num_chunks(self) -> int:
        """Number of chunks covering the video (last chunk may be short
        in reality; modelled as full length)."""
        return max(1, int(round(self.duration / self.chunk_duration)))

    @property
    def lowest(self) -> Representation:
        return self.representations[0]

    @property
    def highest(self) -> Representation:
        return self.representations[-1]

    def best_under(self, rate_bps: float) -> Representation:
        """Highest representation with bitrate <= ``rate_bps`` (or lowest)."""
        choice = self.representations[0]
        for rep in self.representations:
            if rep.bitrate_bps <= rate_bps:
                choice = rep
        return choice

    def ideal_average_bitrate(self, aggregate_bandwidth_bps: float) -> float:
        """Section 3.1's ideal: min(aggregate bandwidth, top bitrate).

        "we define the ideal average bit rate as the minimum of the
        aggregate total bandwidth and the bandwidth required for the
        highest resolution."
        """
        return min(aggregate_bandwidth_bps, self.highest.bitrate_bps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "/".join(r.name for r in self.representations)
        return (
            f"VideoManifest({self.duration:.0f}s, {self.chunk_duration:.0f}s "
            f"chunks, reps={names})"
        )
