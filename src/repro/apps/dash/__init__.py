"""DASH adaptive video streaming (Section 2.2 of the paper).

* :mod:`~repro.apps.dash.media` -- the six-representation video of Table 1
  and chunk-size arithmetic.
* :mod:`~repro.apps.dash.abr` -- adaptive bit-rate algorithms: the
  buffer-based BBA of Huang et al. (the paper's "state-of-art ABR [12]"),
  a throughput-EWMA ABR, and a fixed-rate ABR for calibration.
* :mod:`~repro.apps.dash.player` -- the client player: initial buffering,
  steady-state ON-OFF chunk fetching, and rebuffering, the traffic pattern
  whose OFF periods trigger the idle CWND resets at the heart of the paper.
"""

from repro.apps.dash.media import (
    PAPER_REPRESENTATIONS,
    Representation,
    VideoManifest,
)
from repro.apps.dash.abr import (
    AbrAlgorithm,
    BufferBasedAbr,
    FixedAbr,
    ThroughputAbr,
)
from repro.apps.dash.player import DashPlayer, StreamingMetrics

__all__ = [
    "Representation",
    "VideoManifest",
    "PAPER_REPRESENTATIONS",
    "AbrAlgorithm",
    "BufferBasedAbr",
    "ThroughputAbr",
    "FixedAbr",
    "DashPlayer",
    "StreamingMetrics",
]
