"""Application layer: HTTP, bulk downloads, and DASH video streaming."""

from repro.apps.http import GetResult, HttpSession
from repro.apps.bulk import BulkDownloadResult, run_bulk_download

__all__ = ["HttpSession", "GetResult", "run_bulk_download", "BulkDownloadResult"]
