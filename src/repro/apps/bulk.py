"""Simple Web downloads: the paper's wget workload (Section 5.4).

Each download is its own fresh MPTCP connection (wget connects, GETs one
object, closes), so connection establishment and the secondary subflow's
late join are part of the measured completion time -- this is why "MPTCP
rarely utilizes a secondary subflow for small transfers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.apps.http import HttpSession
from repro.core.registry import make_scheduler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.path import Path
from repro.net.profiles import PathConfig, make_path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class BulkDownloadResult:
    """Outcome of one wget-style single-object download."""

    scheduler: str
    size: int
    completion_time: float
    payload_by_path: Dict[str, int]
    ooo_delays_max: float
    reinjections: int

    @property
    def throughput_bps(self) -> float:
        if self.completion_time <= 0:
            return 0.0
        return self.size * 8.0 / self.completion_time


def run_bulk_download(
    scheduler_name: str,
    path_configs: Sequence[PathConfig],
    size: int,
    seed: int = 0,
    config: Optional[ConnectionConfig] = None,
    timeout: float = 300.0,
    **scheduler_params,
) -> BulkDownloadResult:
    """Download one object of ``size`` bytes over a fresh MPTCP connection.

    Parameters
    ----------
    scheduler_name: which path scheduler to use ("minrtt", "ecf", ...).
    path_configs: profiles of the paths, primary first.
    size: object size, bytes.
    seed: seeds the loss processes.
    config: optional connection tunables.
    timeout: give up (and raise) if the download has not completed.

    Raises
    ------
    RuntimeError
        If the download does not finish within ``timeout`` simulated
        seconds (indicative of a dead path or a scheduler deadlock).
    """
    sim = Simulator()
    rngs = RngRegistry(seed)
    paths = [make_path(sim, pc, rngs.stream(f"loss.{i}.{pc.name}")) for i, pc in enumerate(path_configs)]
    scheduler = make_scheduler(scheduler_name, **scheduler_params)
    conn = MptcpConnection(sim, paths, scheduler, config=config, name=f"wget-{scheduler_name}")
    session = HttpSession(sim, conn)

    done = {}

    def _on_complete(result) -> None:
        done["result"] = result

    session.get(size, _on_complete)
    sim.run(until=timeout)
    if "result" not in done:
        raise RuntimeError(
            f"download of {size} bytes with {scheduler_name!r} did not "
            f"complete within {timeout} s (delivered "
            f"{conn.delivered_bytes} bytes)"
        )
    result = done["result"]
    payload_by_path: Dict[str, int] = {}
    for sf in conn.subflows:
        payload_by_path[sf.path.name] = (
            payload_by_path.get(sf.path.name, 0) + sf.stats.payload_bytes_sent
        )
    return BulkDownloadResult(
        scheduler=scheduler_name,
        size=size,
        completion_time=result.completion_time,
        payload_by_path=payload_by_path,
        ooo_delays_max=max(conn.receiver.ooo_delays, default=0.0),
        reinjections=conn.reinjections,
    )
