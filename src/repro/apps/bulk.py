"""Simple Web downloads: the paper's wget workload (Section 5.4).

Each download is its own fresh MPTCP connection (wget connects, GETs one
object, closes), so connection establishment and the secondary subflow's
late join are part of the measured completion time -- this is why "MPTCP
rarely utilizes a secondary subflow for small transfers".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar, Dict, Mapping, Optional, Sequence, Tuple

from repro.apps.http import HttpSession
from repro.core.spec import SchedulerSpec, build
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.path import Path
from repro.net.profiles import PathConfig, make_path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class BulkDownloadSpec:
    """Frozen description of one wget-style download -- a plain value.

    Path profiles are embedded as :class:`~repro.net.profiles.PathConfig`
    (primary first) and the optional connection tunables as their plain
    field values, so the spec serializes, pickles, and content-hashes for
    the executor and its result cache.
    """

    kind: ClassVar[str] = "bulk_download"

    scheduler: str
    path_configs: Tuple[PathConfig, ...]
    size: int
    seed: int = 0
    scheduler_params: Dict = field(default_factory=dict)
    connection: Optional[ConnectionConfig] = None
    timeout: float = 300.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "path_configs", tuple(self.path_configs))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "path_configs": [asdict(pc) for pc in self.path_configs],
            "size": self.size,
            "seed": self.seed,
            "scheduler_params": dict(self.scheduler_params),
            "connection": None if self.connection is None else asdict(self.connection),
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BulkDownloadSpec":
        data = dict(data)
        data["path_configs"] = tuple(PathConfig(**pc) for pc in data["path_configs"])
        if data.get("connection") is not None:
            data["connection"] = ConnectionConfig(**data["connection"])
        return cls(**data)


@dataclass(frozen=True)
class BulkDownloadResult:
    """Outcome of one wget-style single-object download."""

    scheduler: str
    size: int
    completion_time: float
    payload_by_path: Dict[str, int]
    ooo_delays_max: float
    reinjections: int
    #: Optional per-run perf record (``PerfRecord.to_dict()``), attached by
    #: the executor when ``REPRO_PERF=1``.  Additive: absent from the wire
    #: format when None, so cached v2 payloads stay valid.
    perf: Optional[Dict[str, Any]] = None

    @property
    def throughput_bps(self) -> float:
        if self.completion_time <= 0:
            return 0.0
        return self.size * 8.0 / self.completion_time

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema_version": 2,
            "kind": "bulk_download",
            "scheduler": self.scheduler,
            "size": self.size,
            "completion_time": self.completion_time,
            "payload_by_path": dict(self.payload_by_path),
            "ooo_delays_max": self.ooo_delays_max,
            "reinjections": self.reinjections,
        }
        if self.perf is not None:
            data["perf"] = dict(self.perf)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BulkDownloadResult":
        return cls(
            scheduler=data["scheduler"],
            size=data["size"],
            completion_time=data["completion_time"],
            payload_by_path=dict(data["payload_by_path"]),
            ooo_delays_max=data["ooo_delays_max"],
            reinjections=data["reinjections"],
            perf=data.get("perf"),
        )


def run_bulk(spec: BulkDownloadSpec) -> BulkDownloadResult:
    """Download one object over a fresh MPTCP connection, per ``spec``.

    Raises
    ------
    RuntimeError
        If the download does not finish within ``spec.timeout`` simulated
        seconds (indicative of a dead path or a scheduler deadlock).
    """
    sim = Simulator()
    rngs = RngRegistry(spec.seed)
    paths = [
        make_path(sim, pc, rngs.stream(f"loss.{i}.{pc.name}"))
        for i, pc in enumerate(spec.path_configs)
    ]
    scheduler = build(SchedulerSpec.of(spec.scheduler, **spec.scheduler_params))
    conn = MptcpConnection(
        sim, paths, scheduler, config=spec.connection, name=f"wget-{spec.scheduler}"
    )
    session = HttpSession(sim, conn)

    done = {}

    def _on_complete(result) -> None:
        done["result"] = result

    session.get(spec.size, _on_complete)
    sim.run(until=spec.timeout)
    if "result" not in done:
        raise RuntimeError(
            f"download of {spec.size} bytes with {spec.scheduler!r} did not "
            f"complete within {spec.timeout} s (delivered "
            f"{conn.delivered_bytes} bytes)"
        )
    result = done["result"]
    payload_by_path: Dict[str, int] = {}
    for sf in conn.subflows:
        payload_by_path[sf.path.name] = (
            payload_by_path.get(sf.path.name, 0) + sf.stats.payload_bytes_sent
        )
    return BulkDownloadResult(
        scheduler=spec.scheduler,
        size=spec.size,
        completion_time=result.completion_time,
        payload_by_path=payload_by_path,
        ooo_delays_max=max(conn.receiver.ooo_delays, default=0.0),
        reinjections=conn.reinjections,
    )


def run_bulk_download(
    scheduler_name: str,
    path_configs: Sequence[PathConfig],
    size: int,
    seed: int = 0,
    config: Optional[ConnectionConfig] = None,
    timeout: float = 300.0,
    **scheduler_params,
) -> BulkDownloadResult:
    """Positional-argument wrapper around :func:`run_bulk`.

    .. deprecated:: 1.1
        Build a :class:`BulkDownloadSpec` and call :func:`run_bulk` (or
        submit the spec to :class:`repro.experiments.exec.ExperimentExecutor`).
        Kept so existing examples and benchmarks run unchanged.
    """
    return run_bulk(
        BulkDownloadSpec(
            scheduler=scheduler_name,
            path_configs=tuple(path_configs),
            size=size,
            seed=seed,
            scheduler_params=dict(scheduler_params),
            connection=config,
            timeout=timeout,
        )
    )


def _register() -> None:
    from repro.experiments.spec import register_experiment

    register_experiment(
        "bulk_download",
        BulkDownloadSpec.from_dict,
        run_bulk,
        BulkDownloadResult.from_dict,
    )


_register()
