"""HTTP/1.1 over MPTCP: persistent connections with sequential GETs.

The paper's workloads are all HTTP: DASH chunk fetches, wget downloads,
and Web-object retrieval over persistent connections.  :class:`HttpSession`
models one client/server pair sharing one MPTCP connection:

* the client issues a GET by sending a small request packet up the
  *primary path's* reverse link (requests ride the primary subflow, as a
  real client's tiny requests do), so request latency and reverse-path
  queueing are part of every measured completion time;
* on arrival the server writes the response body into the MPTCP
  connection; the pluggable path scheduler takes it from there;
* the client watches the in-order delivered byte stream for response
  boundaries (HTTP/1.1 without pipelining: requests on one connection are
  strictly sequential).

Completion time of a GET = request issue to last response byte delivered
in order, matching how the paper's client-side measurements see it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Callable, Deque, List, Optional

from repro.mptcp.connection import MptcpConnection
from repro.net.packet import Packet
from repro.sim.engine import Simulator

#: Wire size of an HTTP GET request (headers fit in one small packet).
REQUEST_SIZE = 300


@dataclass(frozen=True)
class GetResult:
    """Outcome of one completed GET."""

    index: int
    size: int
    issued_at: float
    first_byte_at: float
    completed_at: float

    @property
    def completion_time(self) -> float:
        """Request-to-last-byte latency (the paper's download time)."""
        return self.completed_at - self.issued_at

    @property
    def throughput_bps(self) -> float:
        """Response bytes over completion time."""
        elapsed = self.completion_time
        return self.size * 8.0 / elapsed if elapsed > 0 else 0.0


class _PendingGet:
    __slots__ = ("index", "size", "issued_at", "first_byte_at", "remaining", "callback")

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = ("index", "size", "issued_at", "first_byte_at", "remaining", "callback")
    #: Fields :mod:`repro.sim.snapshot` encodes as owner references and
    #: rebinds on restore (exempts them from RPR914).
    SNAPSHOT_REBIND = ("callback",)

    def __init__(self, index: int, size: int, issued_at: float, callback) -> None:
        self.index = index
        self.size = size
        self.issued_at = issued_at
        self.first_byte_at: Optional[float] = None
        self.remaining = size
        self.callback = callback


class HttpSession:
    """One persistent HTTP exchange over one MPTCP connection.

    Parameters
    ----------
    sim: the simulator.
    conn: the MPTCP connection to ride (its delivery callback is taken
        over by the session).
    request_size: request packet size on the wire, bytes.
    """

    __slots__ = (
        "sim",
        "conn",
        "request_size",
        "results",
        "observers",
        "_pending",
        "_next_index",
    )

    #: Snapshot contract for checkpoint/fork (audited by RPR915).
    STATE_FIELDS = (
        "sim",
        "conn",
        "request_size",
        "results",
        "observers",
        "_pending",
        "_next_index",
    )

    def __init__(self, sim: Simulator, conn: MptcpConnection, request_size: int = REQUEST_SIZE) -> None:
        self.sim = sim
        self.conn = conn
        self.request_size = int(request_size)
        self.results: List[GetResult] = []
        #: Observers invoked (after the per-GET callback) for every
        #: completed GET; experiment harnesses hook per-download metrics
        #: here without wrapping the application.
        self.observers: List[Callable[[GetResult], None]] = []
        self._pending: Deque[_PendingGet] = deque()
        self._next_index = 0
        conn.set_deliver_callback(self._on_bytes)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def get(self, size: int, on_complete: Optional[Callable[[GetResult], None]] = None) -> int:
        """Issue a GET for a ``size``-byte object; returns its index.

        ``on_complete(result)`` fires when the last response byte is
        delivered in order at the client.
        """
        if size <= 0:
            raise ValueError(f"GET size must be positive, got {size!r}")
        index = self._next_index
        self._next_index += 1
        pending = _PendingGet(index, int(size), self.sim.now, on_complete)
        self._pending.append(pending)
        request = Packet(size=self.request_size)
        primary = self.conn.subflows[0].path
        primary.reverse.send(request, partial(self._request_arrived, size))
        return index

    @property
    def outstanding_requests(self) -> int:
        """GETs issued but not yet fully delivered."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _server_on_request(self, size: int) -> None:
        self.conn.write(size)

    def _request_arrived(self, size: int, _packet: Packet) -> None:
        """Link-delivery adapter: ``partial(self._request_arrived, size)``
        replaces the per-GET closure the request path used to allocate."""
        self.conn.write(size)

    # ------------------------------------------------------------------
    # Client side delivery tracking
    # ------------------------------------------------------------------
    def _on_bytes(self, nbytes: int) -> None:
        now = self.sim.now
        while nbytes > 0 and self._pending:
            head = self._pending[0]
            if head.first_byte_at is None:
                head.first_byte_at = now
            consumed = min(nbytes, head.remaining)
            head.remaining -= consumed
            nbytes -= consumed
            if head.remaining == 0:
                self._pending.popleft()
                result = GetResult(
                    index=head.index,
                    size=head.size,
                    issued_at=head.issued_at,
                    first_byte_at=head.first_byte_at,
                    completed_at=now,
                )
                self.results.append(result)
                if head.callback is not None:
                    head.callback(result)
                for observer in self.observers:
                    observer(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HttpSession(completed={len(self.results)}, "
            f"pending={len(self._pending)})"
        )
