"""Timeline export: event logs + trace series -> Perfetto / JSONL / Prometheus.

The paper's evidence is temporal -- CWND and send-buffer timelines, idle
resets, ECF's wait intervals -- so the most useful view of a run is a
timeline you can scrub.  This module converts a structured event log
(:mod:`repro.analysis.events`) and recorded
:class:`~repro.sim.trace.TraceRecorder` series into the Chrome
trace-event JSON format that https://ui.perfetto.dev and
``chrome://tracing`` load directly:

* one track (thread) per subflow, scheduler, receiver, and connection,
  labelled via ``M`` metadata events;
* sends, ACKs, RTO firings, idle resets, deliveries, reinjections, and
  scheduler decisions as ``i`` instant events;
* loss-recovery episodes and ECF wait intervals as ``X`` duration
  events -- both the waits the scheduler *took* (``ecf wait``) and the
  waits Algorithm 1 *mandated* when replayed offline from each
  decision's logged inputs (``ecf wait (mandated)``), so a buggy
  scheduler that never waits still shows where it should have;
* CWND as ``C`` counter tracks, from both per-event snapshots and any
  recorded ``cwnd.*`` trace series.

Timestamps are simulated seconds converted to integer microseconds (the
trace-event unit).  Entry points: :func:`timeline_document` builds the
document, :func:`validate_trace_events` checks one structurally,
:func:`load_export_source` reads events/traces back out of a postmortem
bundle, an ``events.jsonl`` dump, or a cached/exported result JSON, and
:func:`prometheus_text` renders perf counters in Prometheus text
exposition format.  The CLI front end is
``python -m repro.cli trace export`` / ``trace validate``.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis import events as _events

PathLike = Union[str, "os.PathLike[str]"]

#: Series samples as plain data: ``{name: [[t, value], ...]}``.
TraceData = Mapping[str, Sequence[Sequence[float]]]

_PID = 1


def _us(t: float) -> int:
    """Simulated seconds -> integer trace-event microseconds."""
    return int(round(t * 1e6))


def _finite(value: Any) -> Any:
    """JSON-safe arg value: non-finite floats become ``None``.

    Algorithm 1 legitimately logs ``inf`` thresholds (down subflows);
    Perfetto's JSON parser rejects bare ``Infinity``/``NaN`` tokens.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _args(event: _events.Event) -> Dict[str, Any]:
    data = event.to_dict()
    data.pop("kind", None)
    data.pop("t", None)
    return {key: _finite(value) for key, value in data.items()}


class _Tracks:
    """Allocates one tid per logical track and its ``M`` metadata."""

    def __init__(self) -> None:
        self._tids: Dict[Tuple[str, Any], int] = {}
        self.metadata: List[Dict[str, Any]] = []

    def tid(self, category: str, key: Any, label: str) -> int:
        ident = (category, key)
        tid = self._tids.get(ident)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[ident] = tid
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return tid


def _mandated_wait(event: _events.EcfDecision) -> bool:
    """Replay Algorithm 1 from one decision's logged inputs.

    Mirrors ``EcfScheduler._evaluate`` (including its non-finite
    guards): a non-finite fast RTT can never be worth waiting for, a
    non-finite slow RTT can never be worth sending on.
    """
    if not math.isfinite(event.rtt_f):
        return False
    if not math.isfinite(event.rtt_s):
        return True
    if not event.n_rounds * event.rtt_f < event.threshold:
        return False
    if not event.use_second_inequality:
        return True
    cwnd_s = max(event.cwnd_s, 1.0)
    rounds_s = math.ceil(event.k_segments / cwnd_s)
    return rounds_s * event.rtt_s >= 2.0 * event.rtt_f + event.delta


def _wait_spans(
    decisions: Sequence[_events.EcfDecision],
    is_wait: Any,
    last_t: float,
) -> List[Tuple[float, float, _events.EcfDecision]]:
    """Maximal runs of consecutive wait decisions -> (start, end, first)."""
    spans: List[Tuple[float, float, _events.EcfDecision]] = []
    start: Optional[float] = None
    first: Optional[_events.EcfDecision] = None
    for event in decisions:
        if is_wait(event):
            if start is None:
                start = event.t
                first = event
        elif start is not None:
            assert first is not None
            spans.append((start, event.t, first))
            start = None
            first = None
    if start is not None:
        assert first is not None
        spans.append((start, max(last_t, start), first))
    return spans


def timeline_document(
    events: Iterable[_events.Event],
    traces: Optional[TraceData] = None,
    process_name: str = "repro simulation",
) -> Dict[str, Any]:
    """Build a Chrome trace-event / Perfetto JSON document.

    ``events`` is any iterable of typed records (a live
    :class:`~repro.analysis.events.EventLog` works); ``traces`` adds
    counter tracks from recorded series data.  The result is a plain
    dict ready for ``json.dump``.
    """
    records = list(events)
    tracks = _Tracks()
    out: List[Dict[str, Any]] = []
    last_t = records[-1].t if records else 0.0

    def instant(name: str, event: _events.Event, tid: int) -> None:
        out.append(
            {
                "ph": "i",
                "s": "t",
                "name": name,
                "ts": _us(event.t),
                "pid": _PID,
                "tid": tid,
                "args": _args(event),
            }
        )

    def span(name: str, start: float, end: float, tid: int, args: Dict[str, Any]) -> None:
        out.append(
            {
                "ph": "X",
                "name": name,
                "ts": _us(start),
                "dur": max(_us(end) - _us(start), 1),
                "pid": _PID,
                "tid": tid,
                "args": args,
            }
        )

    def counter(name: str, t: float, value: float) -> None:
        if not math.isfinite(value):
            return
        out.append(
            {
                "ph": "C",
                "name": name,
                "ts": _us(t),
                "pid": _PID,
                "tid": 0,
                "args": {"value": value},
            }
        )

    def subflow_tid(sf_uid: int, sf_id: int) -> int:
        return tracks.tid("subflow", sf_uid, f"subflow {sf_id} (uid {sf_uid})")

    # Open loss-recovery episodes per subflow uid: (start, cause, seq).
    open_recovery: Dict[int, Tuple[float, str, int]] = {}

    ecf_by_sched: Dict[int, List[_events.EcfDecision]] = {}

    for event in records:
        if isinstance(event, _events.SegmentSent):
            tid = subflow_tid(event.sf_uid, event.sf_id)
            instant("retransmit" if event.retransmitted else "send", event, tid)
            counter(f"cwnd sf{event.sf_id}", event.t, event.cwnd)
        elif isinstance(event, _events.AckProcessed):
            tid = subflow_tid(event.sf_uid, event.sf_id)
            instant("ack", event, tid)
            counter(f"cwnd sf{event.sf_id}", event.t, event.cwnd)
            episode = open_recovery.get(event.sf_uid)
            if episode is not None and not event.in_recovery:
                start, cause, seq = episode
                del open_recovery[event.sf_uid]
                span(
                    f"recovery ({cause})",
                    start,
                    event.t,
                    tid,
                    {"cause": cause, "seq": seq},
                )
        elif isinstance(event, _events.FastRetransmit):
            tid = subflow_tid(event.sf_uid, event.sf_id)
            instant("fast retransmit", event, tid)
            open_recovery.setdefault(event.sf_uid, (event.t, "fast rtx", event.seq))
        elif isinstance(event, _events.RtoFired):
            tid = subflow_tid(event.sf_uid, event.sf_id)
            instant("rto", event, tid)
            open_recovery.setdefault(event.sf_uid, (event.t, "rto", -1))
        elif isinstance(event, _events.IdleReset):
            tid = subflow_tid(event.sf_uid, event.sf_id)
            instant("idle reset", event, tid)
            counter(f"cwnd sf{event.sf_id}", event.t, event.new_cwnd)
        elif isinstance(event, _events.Delivered):
            tid = tracks.tid("receiver", event.recv_uid, f"receiver (uid {event.recv_uid})")
            instant("deliver", event, tid)
        elif isinstance(event, _events.Reinjection):
            tid = tracks.tid("meta", event.conn, f"connection {event.conn}")
            instant(f"reinjection ({event.cause})", event, tid)
        elif isinstance(event, _events.EcfDecision):
            tid = tracks.tid(
                "scheduler", event.sched_uid, f"ecf scheduler (uid {event.sched_uid})"
            )
            instant(f"ecf: {event.decision}", event, tid)
            ecf_by_sched.setdefault(event.sched_uid, []).append(event)
        elif isinstance(event, _events.MinRttDecision):
            tid = tracks.tid(
                "scheduler", event.sched_uid, f"minrtt scheduler (uid {event.sched_uid})"
            )
            instant("minrtt pick", event, tid)
        elif isinstance(event, _events.Dispatch):
            # One per engine event; far too chatty to chart individually.
            continue

    # Close any recovery episode still open when the log ends.
    for sf_uid, (start, cause, seq) in open_recovery.items():
        tid = tracks.tid("subflow", sf_uid, f"subflow ? (uid {sf_uid})")
        span(f"recovery ({cause})", start, max(last_t, start), tid, {"cause": cause, "seq": seq})

    # ECF wait intervals: spans the scheduler took, and spans Algorithm 1
    # mandated when replayed from each decision's own logged inputs.  A
    # seeded-violation scheduler (ecf-nowait) never records a "wait"
    # decision, but its mandated spans still show every missed interval.
    for sched_uid, decisions in ecf_by_sched.items():
        tid = tracks.tid(
            "scheduler", sched_uid, f"ecf scheduler (uid {sched_uid})"
        )
        actual = _wait_spans(decisions, lambda e: e.decision == "wait", last_t)
        for start, end, first in actual:
            span(
                "ecf wait",
                start,
                end,
                tid,
                {"fastest_sf": first.fastest_sf, "second_sf": first.second_sf},
            )
        mandated = _wait_spans(decisions, _mandated_wait, last_t)
        for start, end, first in mandated:
            span(
                "ecf wait (mandated)",
                start,
                end,
                tid,
                {
                    "fastest_sf": first.fastest_sf,
                    "second_sf": first.second_sf,
                    "taken": first.decision,
                },
            )

    # Counter tracks from recorded trace series (cwnd.wifi, sndbuf.lte, ...).
    if traces:
        for name in sorted(traces):
            for sample in traces[name]:
                t, value = sample[0], sample[1]
                counter(name, t, value)

    process_meta = {
        "ph": "M",
        "name": "process_name",
        "pid": _PID,
        "tid": 0,
        "args": {"name": process_name},
    }
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [process_meta, *tracks.metadata, *out],
    }


# ----------------------------------------------------------------------
# Counterfactual twin spans
# ----------------------------------------------------------------------


def counterfactual_spans(
    report: Mapping[str, Any], tid: int = 1
) -> List[Dict[str, Any]]:
    """Twin-report regret records -> Perfetto ``X``/``C`` events.

    Each per-decision record from :func:`repro.experiments.twin.twin_report`
    becomes a duration span starting at the decision instant whose length
    is the completion-time regret of the *forced* (counterfactual) choice
    -- scrubbing the track shows exactly which wait/send decisions
    mattered -- plus a ``completion_delta`` counter track charting the
    regret magnitude over the run.
    """
    out: List[Dict[str, Any]] = []
    for record in report.get("regret", ()):
        delta = record["completion_delta"]
        # A 0-regret decision still gets a visible 1us sliver.
        duration = max(_us(abs(delta)), 1)
        out.append(
            {
                "ph": "X",
                "name": (
                    f"forced {record['forced']}: {delta:+.4f}s"
                ),
                "cat": "counterfactual",
                "ts": _us(record["t"]),
                "dur": duration,
                "pid": _PID,
                "tid": tid,
                "args": {key: _finite(value) for key, value in record.items()},
            }
        )
        out.append(
            {
                "ph": "C",
                "name": "completion_delta",
                "ts": _us(record["t"]),
                "pid": _PID,
                "tid": 0,
                "args": {"value": _finite(delta)},
            }
        )
    return out


def twin_timeline_document(report: Mapping[str, Any]) -> Dict[str, Any]:
    """Standalone Perfetto document for one twin report.

    The result loads in https://ui.perfetto.dev as-is: one
    ``counterfactual regret`` track of per-decision spans plus the
    regret counter, labelled with the baseline run's scheduler.
    """
    scheduler = report.get("spec", {}).get("scheduler", "?")
    tracks = _Tracks()
    tid = tracks.tid("counterfactual", scheduler, "counterfactual regret")
    process_meta = {
        "ph": "M",
        "name": "process_name",
        "pid": _PID,
        "tid": 0,
        "args": {"name": f"twin run ({scheduler})"},
    }
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [
            process_meta,
            *tracks.metadata,
            *counterfactual_spans(report, tid),
        ],
    }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
_KNOWN_PHASES = frozenset({"i", "X", "C", "M", "B", "E", "b", "e", "n"})


def validate_trace_events(
    document: Any,
    min_subflow_tracks: int = 0,
    require_ecf_waits: bool = False,
) -> List[str]:
    """Structurally validate a trace-event document; returns problems.

    An empty list means the document is loadable by Perfetto /
    ``chrome://tracing``: a ``traceEvents`` array whose entries carry a
    known phase, numeric timestamps, pid/tid, and (for ``X``) a
    non-negative duration.  ``min_subflow_tracks`` additionally demands
    that many per-subflow tracks; ``require_ecf_waits`` demands at least
    one ``ecf wait*`` duration event.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]

    subflow_tracks = 0
    ecf_waits = 0
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing or non-string 'name'")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or not math.isfinite(ts):
                problems.append(f"{where}: missing or non-finite 'ts'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing or non-integer {field!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                problems.append(f"{where}: 'X' event needs a non-negative 'dur'")
            if isinstance(event.get("name"), str) and event["name"].startswith("ecf wait"):
                ecf_waits += 1
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) and math.isfinite(v) for v in args.values()
            ):
                problems.append(f"{where}: 'C' event needs finite numeric args")
        if (
            phase == "M"
            and event.get("name") == "thread_name"
            and isinstance(event.get("args"), dict)
            and str(event["args"].get("name", "")).startswith("subflow ")
        ):
            subflow_tracks += 1

    if subflow_tracks < min_subflow_tracks:
        problems.append(
            f"expected >= {min_subflow_tracks} subflow tracks, found {subflow_tracks}"
        )
    if require_ecf_waits and ecf_waits == 0:
        problems.append("no 'ecf wait' duration events found")
    return problems


# ----------------------------------------------------------------------
# Flat exports
# ----------------------------------------------------------------------
def to_jsonl(events: Iterable[_events.Event]) -> str:
    """Event records as JSONL (one sorted-keys object per line)."""
    lines = [json.dumps(e.to_dict(), sort_keys=True) for e in events]
    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_text(
    counters: Mapping[str, Any], prefix: str = "repro_"
) -> str:
    """Perf counters as a valid OpenMetrics text exposition.

    Accepts any flat name->number mapping -- typically
    ``PerfSnapshot.to_dict()`` or a bundle's ``perf.json``; non-numeric,
    non-finite, and negative entries are skipped (counters cannot
    decrease).

    The rendering routes through the :mod:`repro.obs.metrics` registry,
    so the output is the same dialect the ``campaign serve`` daemon
    scrapes: ``# TYPE``/``# HELP`` metadata per family,
    ``_total``-suffixed counter samples, and the mandatory ``# EOF``
    terminator.  ``repro.cli metrics validate`` accepts it.
    """
    from repro.obs import metrics as _metrics

    registry = _metrics.MetricRegistry()
    for name in sorted(counters):
        value = counters[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(value) or value < 0:
            continue
        registry.counter(
            prefix + name,
            f"Perf counter {name} from the run's perf record.",
        ).inc(value)
    return _metrics.render_openmetrics(registry)


# ----------------------------------------------------------------------
# Loaders (bundle / JSONL / result JSON -> events + traces)
# ----------------------------------------------------------------------
def load_events_jsonl(path: PathLike) -> List[_events.Event]:
    """Rebuild typed events from an ``events.jsonl`` dump."""
    records: List[_events.Event] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        records.append(_events.event_from_dict(json.loads(line)))
    return records


def load_bundle(path: PathLike) -> Dict[str, Any]:
    """Load a postmortem bundle directory written by the flight recorder.

    Returns ``{"manifest": ..., "events": [Event, ...], "traces":
    {name: [[t, v], ...]}, "perf": {...}}`` (missing files read as
    empty).
    """
    bundle = Path(path)
    manifest = json.loads((bundle / "manifest.json").read_text())
    events_path = bundle / "events.jsonl"
    events = load_events_jsonl(events_path) if events_path.exists() else []
    traces_path = bundle / "traces.json"
    traces = json.loads(traces_path.read_text()) if traces_path.exists() else {}
    perf_path = bundle / "perf.json"
    perf = json.loads(perf_path.read_text()) if perf_path.exists() else {}
    return {"manifest": manifest, "events": events, "traces": traces, "perf": perf}


def _result_traces(payload: Dict[str, Any]) -> TraceData:
    trace = payload.get("trace")
    return trace if isinstance(trace, dict) else {}


def load_export_source(path: PathLike) -> Dict[str, Any]:
    """Load any exportable source into events + traces (+ perf).

    Understands, by shape:

    * a postmortem **bundle directory** (has ``manifest.json``);
    * an **events JSONL** file (``*.jsonl``);
    * a **cache entry** (``{"schema_version", "kind", "spec", "result"}``,
      the executor's on-disk format) -- trace series only;
    * a serialized **run result** dict, or a JSON **array** of them
      (``write_streaming_results_json`` output; the first element is
      used) -- trace series only.
    """
    source = Path(path)
    if source.is_dir():
        if not (source / "manifest.json").exists():
            raise ValueError(f"{source}: directory is not a postmortem bundle")
        return load_bundle(source)
    if source.suffix == ".jsonl":
        return {
            "manifest": None,
            "events": load_events_jsonl(source),
            "traces": {},
            "perf": {},
        }
    payload = json.loads(source.read_text())
    if isinstance(payload, list):
        if not payload:
            raise ValueError(f"{source}: empty result array")
        payload = payload[0]
    if not isinstance(payload, dict):
        raise ValueError(f"{source}: unrecognized export source")
    if "result" in payload and isinstance(payload["result"], dict):
        # Executor cache entry: the result dict is nested under "result".
        inner = payload["result"]
        return {
            "manifest": None,
            "events": [],
            "traces": _result_traces(inner),
            "perf": payload.get("perf") or inner.get("perf") or {},
        }
    return {
        "manifest": None,
        "events": [],
        "traces": _result_traces(payload),
        "perf": payload.get("perf") or {},
    }


def write_timeline(
    document: Dict[str, Any], path: PathLike
) -> None:
    """Write a trace-event document (refusing non-finite floats)."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, allow_nan=False)
        handle.write("\n")
