"""Structured run journal: per-job JSONL records for executor batches.

A 10k-cell sweep that dies at cell 7312 is undiagnosable from a progress
line.  The journal is an append-only JSONL file (one JSON object per
line) that :class:`~repro.experiments.exec.ExperimentExecutor` writes as
the batch unfolds, so after the fact you can answer: which specs ran,
which came from cache, which timed out and how often they were retried,
which failed and where their postmortem bundle landed, and how long each
one took.

Record schema (every line carries ``record``, ``seq``, and ``wall`` --
a host wall-clock timestamp, which is deliberate: the journal describes
the *campaign*, not anything inside a simulation):

``batch_start``
    ``total``, ``jobs``, ``cache`` (cache root or ``null``),
    ``timeout_s``, ``retries``.
``job``
    ``spec_hash``, ``kind``, ``status`` (``"cached"`` / ``"executed"`` /
    ``"failed"``), ``wall_s`` (parent-side: inline it brackets the run;
    on the pool it spans submit-to-completion, queue wait included),
    ``attempts``, and for failures ``error`` {``type``, ``message``} and
    ``postmortem`` (bundle path, when the flight recorder was on).
``retry``
    ``spec_hash``, ``attempt``, ``error`` -- one per timed-out attempt.
``batch_end``
    ``done``, ``executed``, ``cached``, ``failed``, ``retried``,
    ``elapsed_s``.

The file is append-opened per record (no handle to leak across the
executor's lifetime) and is safe to tail while a sweep runs.  Load one
back with :func:`read_journal`; :func:`summarize` folds the records into
a per-status accounting for quick triage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

PathLike = Union[str, "os.PathLike[str]"]


class RunJournal:
    """Append-only JSONL journal of one or more executor batches.

    ``observer``, when given, is invoked with every record dict right
    after it is written.  The campaign store uses this to index journal
    records against their campaign without the executor knowing the
    store exists; observer failures propagate (a campaign that cannot
    index its journal should say so loudly, not drop records silently).
    """

    def __init__(
        self,
        path: PathLike,
        observer: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.observer = observer
        self._seq = 0

    def record(self, record_type: str, **fields: Any) -> Dict[str, Any]:
        """Append one record; returns the dict that was written."""
        self._seq += 1
        entry: Dict[str, Any] = {
            "record": record_type,
            "seq": self._seq,
            # Campaign bookkeeping, not simulation state: wall clock is
            # the honest timestamp for "when did this job finish".
            "wall": time.time(),  # repro: noqa[RPR101]
        }
        entry.update(fields)
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        if self.observer is not None:
            self.observer(entry)
        return entry

    # -- typed conveniences (thin wrappers; schema lives in the docstring)
    def batch_start(self, **fields: Any) -> Dict[str, Any]:
        return self.record("batch_start", **fields)

    def job(self, **fields: Any) -> Dict[str, Any]:
        return self.record("job", **fields)

    def retry(self, **fields: Any) -> Dict[str, Any]:
        return self.record("retry", **fields)

    def batch_end(self, **fields: Any) -> Dict[str, Any]:
        return self.record("batch_end", **fields)


def read_journal(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a journal file back into its records (skipping blank lines)."""
    records: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if not isinstance(entry, dict):
            raise ValueError(f"journal line is not an object: {line[:80]!r}")
        records.append(entry)
    return records


def summarize(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold journal records into a quick-triage accounting.

    Returns counts per job status, total retries, and the spec hashes of
    failed jobs with their postmortem paths (when present).
    """
    statuses: Dict[str, int] = {}
    retries = 0
    failures: List[Dict[str, Any]] = []
    for entry in records:
        kind = entry.get("record")
        if kind == "job":
            status = str(entry.get("status", "unknown"))
            statuses[status] = statuses.get(status, 0) + 1
            if status == "failed":
                failures.append(
                    {
                        "spec_hash": entry.get("spec_hash"),
                        "error": entry.get("error"),
                        "postmortem": entry.get("postmortem"),
                    }
                )
        elif kind == "retry":
            retries += 1
    return {"statuses": statuses, "retries": retries, "failures": failures}
