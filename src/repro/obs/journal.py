"""Structured run journal: per-job JSONL records for executor batches.

A 10k-cell sweep that dies at cell 7312 is undiagnosable from a progress
line.  The journal is an append-only JSONL file (one JSON object per
line) that :class:`~repro.experiments.exec.ExperimentExecutor` writes as
the batch unfolds, so after the fact you can answer: which specs ran,
which came from cache, which timed out and how often they were retried,
which failed and where their postmortem bundle landed, and how long each
one took.

Record schema (every line carries ``record``, ``seq``, and ``wall`` --
a host wall-clock timestamp, which is deliberate: the journal describes
the *campaign*, not anything inside a simulation):

``batch_start``
    ``total``, ``jobs``, ``cache`` (cache root or ``null``),
    ``timeout_s``, ``retries``.
``job``
    ``spec_hash``, ``kind``, ``status`` (``"cached"`` / ``"executed"`` /
    ``"failed"``), ``wall_s`` (parent-side: inline it brackets the run;
    on the pool it spans submit-to-completion, queue wait included),
    ``attempts``, and for failures ``error`` {``type``, ``message``} and
    ``postmortem`` (bundle path, when the flight recorder was on).
``retry``
    ``spec_hash``, ``attempt``, ``error`` -- one per timed-out attempt.
``batch_end``
    ``done``, ``executed``, ``cached``, ``failed``, ``retried``,
    ``elapsed_s``.

The file is append-opened per record (no handle to leak across the
executor's lifetime) and is safe to tail while a sweep runs.  Load one
back with :func:`read_journal`; :func:`summarize` folds the records into
a per-status accounting for quick triage.

Long-running campaigns (``campaign serve`` drains for days) would grow
the JSONL without bound, so the journal supports **rotation**: give the
constructor ``max_bytes`` and/or ``max_age_s`` and, when the active file
exceeds either limit, it is atomically renamed to ``<path>.1`` (replacing
the previous generation, which bounds total disk at roughly twice the
size limit) and a fresh active file is seeded with the last
``retain_tail`` records -- the retained-tail guarantee: the most recent
records stay greppable at ``path`` across every rotation, so ``status``
and ``watch`` never see an empty window right after a roll.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

PathLike = Union[str, "os.PathLike[str]"]

#: Record types this schema revision understands (newer writers may add
#: more; :func:`summarize` skips those with a single warning).
KNOWN_RECORD_TYPES = frozenset({"batch_start", "job", "retry", "batch_end"})


class RunJournal:
    """Append-only JSONL journal of one or more executor batches.

    ``observer``, when given, is invoked with every record dict right
    after it is written.  The campaign store uses this to index journal
    records against their campaign without the executor knowing the
    store exists; observer failures propagate (a campaign that cannot
    index its journal should say so loudly, not drop records silently).

    ``max_bytes`` / ``max_age_s`` bound the active file (see the module
    docstring); ``retain_tail`` is how many of the newest records survive
    into the fresh file on rotation.  With both limits ``None`` (the
    default) the journal is append-only forever, exactly as before.
    """

    def __init__(
        self,
        path: PathLike,
        observer: Optional[Callable[[Dict[str, Any]], None]] = None,
        *,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        retain_tail: int = 256,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.observer = observer
        self.max_bytes = max_bytes
        self.max_age_s = max_age_s
        self.retain_tail = max(0, int(retain_tail))
        self._seq = 0
        # Wall timestamp of the active file's first record; lazily read
        # back from disk when resuming an existing file.
        self._first_wall: Optional[float] = None

    @property
    def rotated_path(self) -> Path:
        """Where the previous generation lands on rotation."""
        return self.path.with_name(self.path.name + ".1")

    def record(self, record_type: str, **fields: Any) -> Dict[str, Any]:
        """Append one record; returns the dict that was written."""
        self._seq += 1
        entry: Dict[str, Any] = {
            "record": record_type,
            "seq": self._seq,
            # Campaign bookkeeping, not simulation state: wall clock is
            # the honest timestamp for "when did this job finish".
            "wall": time.time(),  # repro: noqa[RPR101]
        }
        entry.update(fields)
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        if self._first_wall is None:
            self._first_wall = float(entry["wall"])
        self._maybe_rotate(float(entry["wall"]))
        if self.observer is not None:
            self.observer(entry)
        return entry

    def _read_first_wall(self) -> Optional[float]:
        try:
            with self.path.open() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    wall = json.loads(line).get("wall")
                    return float(wall) if wall is not None else None
        except (OSError, ValueError):
            return None
        return None

    def _maybe_rotate(self, now: float) -> None:
        if self.max_bytes is None and self.max_age_s is None:
            return
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        over_size = self.max_bytes is not None and size > self.max_bytes
        over_age = False
        if self.max_age_s is not None and not over_size:
            if self._first_wall is None:
                self._first_wall = self._read_first_wall()
            over_age = (
                self._first_wall is not None
                and now - self._first_wall > self.max_age_s
            )
        if over_size or over_age:
            self.rotate()

    def rotate(self) -> None:
        """Roll the active file to ``.1``, keeping the newest records.

        The rename is atomic (``os.replace``); the fresh active file is
        seeded with the last ``retain_tail`` lines of the old one, so a
        reader of ``self.path`` always sees the recent history.
        """
        try:
            lines = [
                line
                for line in self.path.read_text().splitlines()
                if line.strip()
            ]
        except OSError:
            return
        os.replace(self.path, self.rotated_path)
        tail = lines[-self.retain_tail:] if self.retain_tail else []
        with self.path.open("w") as handle:
            for line in tail:
                handle.write(line + "\n")
        self._first_wall = None
        if tail:
            try:
                wall = json.loads(tail[0]).get("wall")
                self._first_wall = float(wall) if wall is not None else None
            except (ValueError, TypeError):
                self._first_wall = None

    # -- typed conveniences (thin wrappers; schema lives in the docstring)
    def batch_start(self, **fields: Any) -> Dict[str, Any]:
        return self.record("batch_start", **fields)

    def job(self, **fields: Any) -> Dict[str, Any]:
        return self.record("job", **fields)

    def retry(self, **fields: Any) -> Dict[str, Any]:
        return self.record("retry", **fields)

    def batch_end(self, **fields: Any) -> Dict[str, Any]:
        return self.record("batch_end", **fields)


def read_journal(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a journal file back into its records (skipping blank lines)."""
    records: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if not isinstance(entry, dict):
            raise ValueError(f"journal line is not an object: {line[:80]!r}")
        records.append(entry)
    return records


def summarize(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold journal records into a quick-triage accounting.

    Returns counts per job status, total retries, and the spec hashes of
    failed jobs with their postmortem paths (when present).  Records with
    a ``record`` type this schema revision does not know (a journal
    written by a newer version) are skipped and counted under
    ``"skipped"``, with a single :class:`FutureWarning` naming the
    unknown types -- old readers stay usable against new journals.
    """
    statuses: Dict[str, int] = {}
    retries = 0
    failures: List[Dict[str, Any]] = []
    unknown: Dict[str, int] = {}
    for entry in records:
        kind = entry.get("record")
        if kind not in KNOWN_RECORD_TYPES:
            key = str(kind)
            unknown[key] = unknown.get(key, 0) + 1
            continue
        if kind == "job":
            status = str(entry.get("status", "unknown"))
            statuses[status] = statuses.get(status, 0) + 1
            if status == "failed":
                failures.append(
                    {
                        "spec_hash": entry.get("spec_hash"),
                        "error": entry.get("error"),
                        "postmortem": entry.get("postmortem"),
                    }
                )
        elif kind == "retry":
            retries += 1
    if unknown:
        warnings.warn(
            "journal has record type(s) this reader does not know "
            f"(newer schema?): {sorted(unknown)} -- skipped "
            f"{sum(unknown.values())} record(s)",
            FutureWarning,
            stacklevel=2,
        )
    return {
        "statuses": statuses,
        "retries": retries,
        "failures": failures,
        "skipped": sum(unknown.values()),
    }
