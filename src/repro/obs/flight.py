"""Flight recorder: always-ready telemetry with postmortem bundles.

A failing simulation run normally leaves a one-line exception and zero
protocol context.  With the flight recorder on (``REPRO_OBS=1``, or the
CLI's ``--obs``), every executor run keeps a bounded ring buffer of
recent typed protocol events (reusing the record types of
:mod:`repro.analysis.events`) and adopts, at construction time, the
simulators, links, schedulers, and :class:`~repro.sim.trace.TraceRecorder`
instances built while it is active -- the same one-pointer-test hook
pattern as :mod:`repro.analysis.sanitize` and :mod:`repro.perf.counters`,
so the hot path is untouched when observability is off.

When a run dies -- a :class:`~repro.analysis.sanitize.SanitizerError`, a
:class:`~repro.analysis.check.CheckError`, a
:class:`~repro.experiments.exec.RunTimeoutError`, or any other worker
exception -- the executor snapshots the recorder into a **postmortem
bundle**: a directory holding the event-log tail, trace-series tails,
perf counter totals, the spec, seed, and revision.  Bundles live under
``REPRO_OBS_DIR`` (default ``.repro-obs``) at a deterministic path
derived from the spec hash, so retries overwrite rather than accumulate
and the run journal can point at them.  Export a bundle with::

    python -m repro.cli trace export .repro-obs/postmortem-<hash> -o out.json

This module must stay dependency-free within the package apart from the
leaf modules it aggregates (:mod:`repro.analysis.events`,
:mod:`repro.perf.counters`): the engine, links, schedulers, and trace
recorder all import it, so it cannot import any of them back.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.analysis import events as _events
from repro.perf import counters as _perf

PathLike = Union[str, "os.PathLike[str]"]

#: Environment variable that turns the flight recorder on in the executor
#: (pool workers inherit it, like ``REPRO_SANITIZE`` / ``REPRO_CHECK``).
ENV_VAR = "REPRO_OBS"

#: Environment variable overriding where bundles and the journal land.
DIR_ENV_VAR = "REPRO_OBS_DIR"

#: Default bundle/journal directory (relative to the working directory).
DEFAULT_DIR = ".repro-obs"

#: Default ring-buffer capacity: recent-history depth of a postmortem.
DEFAULT_CAPACITY = 4096

#: Default per-series tail kept from adopted trace recorders.
DEFAULT_TRACE_TAIL = 512

#: Version of the postmortem bundle layout (``manifest.json``).
BUNDLE_SCHEMA_VERSION = 1


def obs_enabled() -> bool:
    """True when the environment asks for the flight recorder."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def obs_dir() -> Path:
    """Directory for postmortem bundles and the run journal."""
    return Path(os.environ.get(DIR_ENV_VAR) or DEFAULT_DIR)


def postmortem_dir_for(spec_hash: str, root: Optional[PathLike] = None) -> Path:
    """Deterministic bundle path for one spec (retries overwrite).

    Both the worker that writes the bundle and the parent process that
    journals its path derive it from the spec hash alone, so no path has
    to survive a process-pool boundary inside a pickled exception.
    """
    base = Path(root) if root is not None else obs_dir()
    return base / f"postmortem-{spec_hash[:12]}"


class FlightRecorder:
    """Bounded telemetry for one run, snapshot-able into a bundle.

    Construction-time adoption (strong references are intentional -- a
    flight window brackets one run, so adopted objects die with it):

    * ``Simulator`` -> clock + event-loop counters in the manifest;
    * ``Link`` / ``Scheduler`` -> perf counter totals (aggregated through
      a private :class:`~repro.perf.counters.PerfCollector`, *not* the
      global perf window, so ``REPRO_PERF`` and ``REPRO_OBS`` compose);
    * ``TraceRecorder`` -> per-series sample tails for the bundle.

    The event ring itself is a capacity-capped
    :class:`~repro.analysis.events.EventLog` installed by :func:`flight`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        trace_tail: int = DEFAULT_TRACE_TAIL,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if trace_tail < 1:
            raise ValueError(f"trace_tail must be >= 1, got {trace_tail!r}")
        self.capacity = capacity
        self.trace_tail = trace_tail
        #: The ring buffer; set by :func:`flight` once installed.
        self.log: Optional[_events.EventLog] = None
        self._sims: List[Any] = []
        self._traces: List[Any] = []
        self._perf = _perf.PerfCollector()

    # -- adoption hooks (called from constructors) ----------------------
    def adopt_sim(self, sim: Any) -> None:
        self._sims.append(sim)
        self._perf.adopt_sim(sim)

    def adopt_link(self, link: Any) -> None:
        self._perf.adopt_link(link)

    def adopt_scheduler(self, scheduler: Any) -> None:
        self._perf.adopt_scheduler(scheduler)

    def adopt_trace(self, recorder: Any) -> None:
        self._traces.append(recorder)

    # -- snapshots -------------------------------------------------------
    def sim_now(self) -> float:
        """Largest simulated clock reached by any adopted simulator."""
        return max((sim.now for sim in self._sims), default=0.0)

    def counters(self) -> _perf.PerfSnapshot:
        """Perf counter totals over every adopted object."""
        return self._perf.snapshot()

    def trace_tails(self) -> Dict[str, List[List[float]]]:
        """Last ``trace_tail`` samples of every adopted trace series.

        Series names colliding across recorders (two simulations in one
        window) are disambiguated with a ``#<recorder-index>`` suffix.
        """
        out: Dict[str, List[List[float]]] = {}
        for index, recorder in enumerate(self._traces):
            for name in recorder.names():
                samples = recorder.series(name)[-self.trace_tail:]
                key = name if name not in out else f"{name}#{index}"
                out[key] = [[t, v] for t, v in samples]
        return out

    # -- the postmortem bundle ------------------------------------------
    def write_postmortem(
        self,
        *,
        kind: str,
        spec: Dict[str, Any],
        spec_hash: str,
        error: BaseException,
        seed: Optional[int] = None,
        rev: str = "unknown",
        root: Optional[PathLike] = None,
    ) -> Path:
        """Snapshot everything into a bundle directory; returns its path.

        The event tail prefers the log attached to the propagating error
        (``error.event_log``, set by
        :func:`repro.analysis.check.run_with_checks`) over the recorder's
        own ring: when ``REPRO_CHECK`` shadowed the ring with its full
        log, the failure context lives there.
        """
        bundle = postmortem_dir_for(spec_hash, root)
        bundle.mkdir(parents=True, exist_ok=True)

        log = getattr(error, "event_log", None)
        if log is None:
            log = self.log
        tail: List[Dict[str, Any]] = []
        dropped = 0
        if log is not None:
            records = log.tail(self.capacity)
            dropped = log.dropped + (len(log) - len(records))
            tail = [event.to_dict() for event in records]

        lines = [json.dumps(event, sort_keys=True) for event in tail]
        (bundle / "events.jsonl").write_text(
            "\n".join(lines) + ("\n" if lines else "")
        )
        (bundle / "traces.json").write_text(
            json.dumps(self.trace_tails(), sort_keys=True) + "\n"
        )
        counters = self.counters()
        (bundle / "perf.json").write_text(
            json.dumps(counters.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        manifest = {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "kind": kind,
            "spec": spec,
            "spec_hash": spec_hash,
            "seed": seed,
            "rev": rev,
            "error": {"type": type(error).__name__, "message": str(error)},
            "sim_now": self.sim_now(),
            "events": len(tail),
            "events_dropped": dropped,
            "adopted": self._perf.adopted_counts(),
            "trace_recorders": len(self._traces),
            "files": {
                "events": "events.jsonl",
                "traces": "traces.json",
                "perf": "perf.json",
            },
        }
        (bundle / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return bundle


#: The active flight recorder, or ``None`` (the default: recording off).
#: Constructors read this through the module (``flight.COLLECTOR``) so one
#: pointer test decides whether anything is adopted.
COLLECTOR: Optional[FlightRecorder] = None


@contextmanager
def flight(
    capacity: int = DEFAULT_CAPACITY, trace_tail: int = DEFAULT_TRACE_TAIL
) -> Iterator[FlightRecorder]:
    """Open a flight-recording window; restores previous state on exit.

    Installs a fresh :class:`FlightRecorder` as the adoption target and a
    capacity-capped event log as the active
    :data:`repro.analysis.events.LOG` (the ring buffer).  Windows nest;
    the innermost wins, exactly like :func:`repro.perf.counters.collecting`.
    """
    global COLLECTOR
    previous = COLLECTOR
    recorder = FlightRecorder(capacity=capacity, trace_tail=trace_tail)
    COLLECTOR = recorder
    try:
        with _events.recording(capacity=capacity) as log:
            recorder.log = log
            yield recorder
    finally:
        COLLECTOR = previous
