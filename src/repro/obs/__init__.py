"""Unified observability layer: flight recorder, timelines, run journal.

Three pieces, each usable on its own:

* :mod:`repro.obs.flight` -- a default-off **flight recorder**: a bounded
  ring buffer of recent typed protocol events (the record types of
  :mod:`repro.analysis.events`) plus construction-time adoption of
  simulators, links, schedulers, and trace recorders, snapshotted into a
  **postmortem bundle** whenever a run dies (sanitizer assertion,
  temporal-property violation, timeout, or any worker exception).
  Enabled with ``REPRO_OBS=1`` (or the CLI's ``--obs``); costs one
  pointer test per hook point when off.
* :mod:`repro.obs.timeline` -- exporters that turn an event log and
  trace series into Chrome trace-event / Perfetto JSON (one track per
  subflow; ECF wait intervals as duration events; CWND as counter
  tracks), JSONL, and Prometheus text, via
  ``python -m repro.cli trace export``.
* :mod:`repro.obs.journal` -- a structured per-job JSONL **run journal**
  for :class:`~repro.experiments.exec.ExperimentExecutor`, so a 10k-cell
  sweep is diagnosable after the fact.

This package sits above the protocol layers but below the executor; its
import-time dependencies are only the leaf modules
(:mod:`repro.analysis.events`, :mod:`repro.perf.counters`), so every
protocol layer can hook into it without cycles.  See
``docs/observability.md`` for the bundle format and workflows.
"""

# The `flight()` context manager itself is NOT re-exported here: binding
# it at package level would shadow the `repro.obs.flight` submodule (the
# names collide), so open a window with `flight.flight()`.
from repro.obs.flight import (  # noqa: F401
    DIR_ENV_VAR,
    ENV_VAR,
    FlightRecorder,
    obs_dir,
    obs_enabled,
    postmortem_dir_for,
)
