"""Typed metric registry: one telemetry plane over runs and campaigns.

Before this module the repo's telemetry was four disjoint surfaces --
:mod:`repro.perf` counter snapshots, :class:`~repro.obs.journal.RunJournal`
outcome records, :class:`~repro.service.store.CampaignStore` state-machine
transitions, and executor progress events -- each with its own ad-hoc
shape.  The registry unifies them: every source publishes into labelled
**counters**, **gauges**, and **histograms** with a stable catalog
(:data:`CATALOG`), and one formatter renders the whole registry as
OpenMetrics text (proper ``# HELP`` / ``# TYPE`` / ``# UNIT`` metadata,
the ``_total`` sample-suffix convention for counters, escaped label
values, a terminating ``# EOF``).  The campaign daemon
(:mod:`repro.service.daemon`) serves exactly this text on ``/metrics``;
``python -m repro.cli trace export --format prom`` renders run-level
perf counters through the same formatter, so run-level and
campaign-level exports cannot drift apart.

Metrics come in two time flavors, and the catalog keeps them apart the
same way :class:`~repro.perf.counters.PerfRecord` does: **sim-time**
quantities (``repro_perf_sim_seconds_total``, event/packet/decision
counts) are deterministic functions of the simulated runs, while
**wall-time** quantities (``repro_perf_wall_seconds_total``, the
profiler histograms, scrape counters) describe the host.  Dashboards
that divide one by the other get events/s; nothing in the registry ever
mixes the two in a single series.

The module is dependency-free within the package (stdlib only): the
profiler, the daemon, and the timeline exporter all import it, so it
cannot import any of them back.

Example
-------
>>> reg = MetricRegistry()
>>> jobs = reg.counter("jobs", "Jobs seen.", labels=("status",))
>>> jobs.inc(status="done")
>>> jobs.inc(2, status="failed")
>>> print(render_openmetrics(reg), end="")
# TYPE jobs counter
# HELP jobs Jobs seen.
jobs_total{status="done"} 1
jobs_total{status="failed"} 2
# EOF
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

#: HTTP Content-Type for an OpenMetrics scrape body.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: log-spaced seconds from 1us to 1s.  Sized
#: for per-event and per-call wall times, which is what the sim-profiler
#: feeds them.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - guarded by callers
        value = float(value)
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_key(
    label_names: Tuple[str, ...], labels: Mapping[str, Any]
) -> Tuple[str, ...]:
    extra = set(labels) - set(label_names)
    if extra:
        raise ValueError(f"undeclared label(s) {sorted(extra)}; declared: {label_names}")
    return tuple(str(labels.get(name, "")) for name in label_names)


def _render_labels(
    label_names: Tuple[str, ...],
    values: Tuple[str, ...],
    extra: Optional[Tuple[str, str]] = None,
) -> str:
    pairs = [
        (name, value) for name, value in zip(label_names, values) if value != ""
    ]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared shape: a named family with fixed label names."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labels: Sequence[str] = (), unit: str = ""
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help = help
        self.unit = unit
        self.label_names: Tuple[str, ...] = tuple(labels)

    # Subclasses provide: samples() -> List[str], sample_dicts() -> list.


class Counter(_Metric):
    """Monotonically increasing total; rendered with the ``_total`` suffix."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labels: Sequence[str] = (), unit: str = ""
    ) -> None:
        super().__init__(name, help, labels, unit)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount!r})")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def samples(self) -> List[str]:
        return [
            f"{self.name}_total"
            f"{_render_labels(self.label_names, key)} {_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]

    def sample_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down (current job counts, rates)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, labels: Sequence[str] = (), unit: str = ""
    ) -> None:
        super().__init__(name, help, labels, unit)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(self.label_names, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def samples(self) -> List[str]:
        return [
            f"{self.name}"
            f"{_render_labels(self.label_names, key)} {_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]

    def sample_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram (per-event wall times, job durations)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels, unit)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b1 == b2 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} has duplicate buckets")
        self.buckets = bounds
        # Per labelset: [per-bound counts..., +Inf count], total count, sum.
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._totals: Dict[Tuple[str, ...], List[float]] = {}

    def _slot(self, labels: Mapping[str, Any]) -> Tuple[List[int], List[float]]:
        key = _label_key(self.label_names, labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._totals[key] = [0.0, 0.0]  # [count, sum]
        return counts, self._totals[key]

    def observe(self, value: float, **labels: Any) -> None:
        counts, totals = self._slot(labels)
        counts[bisect_left(self.buckets, value)] += 1
        totals[0] += 1
        totals[1] += value

    def merge_counts(
        self,
        bucket_counts: Sequence[int],
        total_sum: float,
        **labels: Any,
    ) -> None:
        """Fold pre-aggregated per-bucket counts in (the profiler path).

        ``bucket_counts`` must align with ``self.buckets`` plus a final
        overflow (+Inf) slot.
        """
        if len(bucket_counts) != len(self.buckets) + 1:
            raise ValueError(
                f"expected {len(self.buckets) + 1} bucket counts, "
                f"got {len(bucket_counts)}"
            )
        counts, totals = self._slot(labels)
        for index, n in enumerate(bucket_counts):
            counts[index] += n
        totals[0] += sum(bucket_counts)
        totals[1] += total_sum

    def samples(self) -> List[str]:
        out: List[str] = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            total, acc = self._totals[key]
            cumulative = 0
            for bound, n in zip(self.buckets, counts):
                cumulative += n
                le = _format_value(float(bound))
                out.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(self.label_names, key, ('le', le))}"
                    f" {cumulative}"
                )
            out.append(
                f"{self.name}_bucket"
                f"{_render_labels(self.label_names, key, ('le', '+Inf'))}"
                f" {int(total)}"
            )
            labels_text = _render_labels(self.label_names, key)
            out.append(f"{self.name}_count{labels_text} {int(total)}")
            out.append(f"{self.name}_sum{labels_text} {_format_value(acc)}")
        return out

    def sample_dicts(self) -> List[Dict[str, Any]]:
        out = []
        for key in sorted(self._counts):
            total, acc = self._totals[key]
            out.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "count": int(total),
                    "sum": acc,
                    "buckets": dict(
                        zip(
                            [*map(float, self.buckets), math.inf],
                            self._counts[key],
                        )
                    ),
                }
            )
        return out


class MetricRegistry:
    """A namespace of metrics with one renderer.

    Registration is idempotent for an identical re-declaration (same
    kind, labels, and -- for histograms -- buckets), so publishers can
    declare what they need without coordinating; a *conflicting*
    redeclaration raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is None:
            self._metrics[metric.name] = metric
            return metric
        if (
            existing.kind != metric.kind
            or existing.label_names != metric.label_names
            or (
                isinstance(existing, Histogram)
                and isinstance(metric, Histogram)
                and existing.buckets != metric.buckets
            )
        ):
            raise ValueError(
                f"metric {metric.name!r} re-registered with a different shape "
                f"({existing.kind}{existing.label_names} vs "
                f"{metric.kind}{metric.label_names})"
            )
        return existing

    def counter(
        self, name: str, help: str, labels: Sequence[str] = (), unit: str = ""
    ) -> Counter:
        metric = self._register(Counter(name, help, labels, unit))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str, labels: Sequence[str] = (), unit: str = ""
    ) -> Gauge:
        metric = self._register(Gauge(name, help, labels, unit))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        metric = self._register(Histogram(name, help, labels, unit, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterable[_Metric]:
        return iter(self._metrics.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON form of every family (the daemon's ``/status`` payload)."""
        return {
            name: {
                "kind": metric.kind,
                "help": metric.help,
                "unit": metric.unit,
                "labels": list(metric.label_names),
                "samples": metric.sample_dicts(),  # type: ignore[attr-defined]
            }
            for name, metric in sorted(self._metrics.items())
        }


def render_openmetrics(registry: MetricRegistry) -> str:
    """The registry as OpenMetrics 1.0 text exposition (with ``# EOF``)."""
    lines: List[str] = []
    for name in sorted(metric.name for metric in registry):
        metric = registry.get(name)
        assert metric is not None
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.unit:
            lines.append(f"# UNIT {metric.name} {metric.unit}")
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.extend(metric.samples())  # type: ignore[attr-defined]
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# OpenMetrics structural validation (the CI scrape gate)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+\S+)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)

#: Sample-name suffixes each family kind may emit.
_KIND_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
    "summary": ("", "_count", "_sum", "_created"),
    "info": ("_info",),
    "stateset": ("",),
    "unknown": ("",),
    "untyped": ("",),
}


def _family_for_sample(
    sample_name: str, families: Mapping[str, str]
) -> Optional[Tuple[str, str]]:
    """Resolve a sample name to ``(family, suffix)`` against known TYPEs."""
    candidates = []
    for family, kind in families.items():
        for suffix in _KIND_SUFFIXES.get(kind, ("",)):
            if sample_name == family + suffix:
                candidates.append((family, suffix))
    if not candidates:
        return None
    # Longest family name wins (x vs x_total both declared).
    return max(candidates, key=lambda item: len(item[0]))


def validate_openmetrics(text: str) -> List[str]:
    """Structurally validate an OpenMetrics scrape body; returns problems.

    An empty list means: metadata lines are well-formed, every sample
    belongs to a ``# TYPE``-declared family using a legal suffix for its
    kind (counters expose ``_total``, histograms ``_bucket``/``_count``/
    ``_sum`` with cumulative ``le`` buckets), label syntax parses, values
    are numbers, families are not interleaved or redeclared, and the
    body ends with ``# EOF`` and nothing after it.
    """
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        return ["empty exposition"]
    if lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator as the final line")
    families: Dict[str, str] = {}
    help_seen: set = set()
    order: List[str] = []

    def note_family_position(family: str, where: str) -> None:
        if order and order[-1] == family:
            return
        if family in order:
            problems.append(
                f"{where}: family {family!r} is interleaved with other families"
            )
        order.append(family)

    for position, line in enumerate(lines):
        where = f"line {position + 1}"
        if line == "# EOF":
            if position != len(lines) - 1:
                problems.append(f"{where}: content after '# EOF'")
            continue
        if not line:
            problems.append(f"{where}: blank line is not allowed")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "TYPE", "HELP", "UNIT",
            ):
                problems.append(f"{where}: malformed comment line {line!r}")
                continue
            keyword, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                problems.append(f"{where}: invalid metric name {name!r}")
                continue
            if keyword == "TYPE":
                if len(parts) != 4:
                    problems.append(f"{where}: TYPE line needs a kind")
                    continue
                kind = parts[3]
                if kind not in _KIND_SUFFIXES:
                    problems.append(f"{where}: unknown metric type {kind!r}")
                    continue
                if name in families:
                    problems.append(f"{where}: duplicate TYPE for {name!r}")
                    continue
                families[name] = kind
                note_family_position(name, where)
            elif keyword == "HELP":
                if name in help_seen:
                    problems.append(f"{where}: duplicate HELP for {name!r}")
                help_seen.add(name)
                note_family_position(name, where)
            else:  # UNIT
                note_family_position(name, where)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"{where}: unparseable sample line {line!r}")
            continue
        sample_name, labels_text, value_text = (
            match.group(1), match.group(2), match.group(3),
        )
        resolved = _family_for_sample(sample_name, families)
        if resolved is None:
            problems.append(
                f"{where}: sample {sample_name!r} has no preceding # TYPE"
            )
            continue
        family, suffix = resolved
        note_family_position(family, where)
        kind = families[family]
        if kind == "counter" and suffix == "":
            problems.append(
                f"{where}: counter sample {sample_name!r} must use '_total'"
            )
        labels: Dict[str, str] = {}
        if labels_text:
            body = labels_text[1:-1]
            consumed = _LABEL_PAIR_RE.findall(body)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if body and rebuilt != body:
                problems.append(f"{where}: malformed label set {labels_text!r}")
            labels = dict(consumed)
        if kind == "histogram" and suffix == "_bucket" and "le" not in labels:
            problems.append(f"{where}: histogram bucket without an 'le' label")
        if value_text not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_text)
            except ValueError:
                problems.append(f"{where}: non-numeric value {value_text!r}")
    return problems


# ----------------------------------------------------------------------
# The stable metric catalog
# ----------------------------------------------------------------------
#: Deterministic counter fields a :class:`~repro.perf.counters.PerfSnapshot`
#: carries (everything but ``sim_time``, which becomes the sim-seconds
#: counter below).
PERF_COUNTER_FIELDS: Tuple[str, ...] = (
    "events_dispatched",
    "stale_pops",
    "timers_scheduled",
    "timers_cancelled",
    "heap_compactions",
    "packets_in",
    "packets_delivered",
    "packets_dropped",
    "bytes_delivered",
    "scheduler_decisions",
    "scheduler_waits",
)

#: The stable catalog: ``name -> (kind, help, label names)``.  Docs
#: (``docs/observability.md``) table-ify this; tests pin it; renaming an
#: entry is a breaking change to every scrape config downstream.
CATALOG: Dict[str, Tuple[str, str, Tuple[str, ...]]] = {
    # -- campaign store (gauges reflect ground truth at scrape time) ----
    "repro_campaign_jobs": (
        "gauge", "Jobs in the campaign store by status.", ("campaign", "status"),
    ),
    "repro_campaign_transitions": (
        "counter",
        "Job state-machine transitions applied by the store.",
        ("campaign", "from_status", "to_status"),
    ),
    # -- journal / drain outcomes ---------------------------------------
    "repro_campaign_journal_records": (
        "counter", "Run-journal records observed, by record type.",
        ("campaign", "record"),
    ),
    "repro_campaign_job_outcomes": (
        "counter",
        "Terminal job outcomes observed by drains (cached/executed/failed).",
        ("campaign", "status"),
    ),
    "repro_campaign_retries": (
        "counter", "Timed-out attempts that were retried.", ("campaign",),
    ),
    "repro_campaign_drains": (
        "counter", "Executor batches (drains) started.", ("campaign",),
    ),
    # -- perf counters (sim-time flavor: deterministic totals) ----------
    **{
        f"repro_perf_{field}": (
            "counter",
            f"Perf counter total: {field.replace('_', ' ')}.",
            ("campaign",),
        )
        for field in PERF_COUNTER_FIELDS
    },
    "repro_perf_sim_seconds": (
        "counter",
        "Simulated seconds covered by measured runs (sim-time flavor).",
        ("campaign",),
    ),
    # -- perf wall clock (wall-time flavor: host-dependent) -------------
    "repro_perf_wall_seconds": (
        "counter",
        "Host wall seconds spent inside measured runs (wall-time flavor).",
        ("campaign",),
    ),
    # -- sim-profiler ----------------------------------------------------
    "repro_profile_component_calls": (
        "counter",
        "Sim-profiler: dispatched calls attributed to a component "
        "(deterministic).",
        ("component",),
    ),
    "repro_profile_component_wall_seconds": (
        "counter",
        "Sim-profiler: host wall seconds attributed to a component "
        "(wall-time flavor).",
        ("component",),
    ),
    "repro_profile_event_seconds": (
        "histogram",
        "Sim-profiler: per-dispatch wall-time distribution by component.",
        ("component",),
    ),
    # -- daemon ----------------------------------------------------------
    "repro_serve_scrapes": (
        "counter", "HTTP scrapes served by the campaign daemon.", (),
    ),
    "repro_serve_loops": (
        "counter", "Drain-loop iterations completed by the daemon.", ("campaign",),
    ),
    "repro_serve_events_per_second": (
        "gauge",
        "Recent simulator events per wall second across drained jobs.",
        ("campaign",),
    ),
}


def default_registry() -> MetricRegistry:
    """A registry pre-declaring the whole :data:`CATALOG`."""
    registry = MetricRegistry()
    for name, (kind, help_text, labels) in CATALOG.items():
        if kind == "counter":
            registry.counter(name, help_text, labels)
        elif kind == "gauge":
            registry.gauge(name, help_text, labels)
        else:
            registry.histogram(name, help_text, labels)
    return registry


# ----------------------------------------------------------------------
# Publishers: the formerly disjoint telemetry sources
# ----------------------------------------------------------------------
def publish_perf_counters(
    registry: MetricRegistry,
    perf: Mapping[str, Any],
    campaign: str = "",
) -> None:
    """Fold one perf payload into the registry's ``repro_perf_*`` totals.

    Accepts either a flat :meth:`~repro.perf.counters.PerfSnapshot.to_dict`
    mapping or the :meth:`~repro.perf.counters.PerfRecord.to_dict` shape
    (``counters`` nested beside ``wall_s``) that rides on executor
    results -- including results that crossed the process-pool boundary.
    """
    counters = perf.get("counters")
    flat: Mapping[str, Any] = counters if isinstance(counters, Mapping) else perf
    catalog_kind = lambda n: CATALOG[n]  # noqa: E731 - local alias
    for field in PERF_COUNTER_FIELDS:
        value = flat.get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            name = f"repro_perf_{field}"
            registry.counter(name, catalog_kind(name)[1], ("campaign",)).inc(
                value, campaign=campaign
            )
    sim_s = flat.get("sim_time", perf.get("sim_s"))
    if isinstance(sim_s, (int, float)) and not isinstance(sim_s, bool) and sim_s >= 0:
        registry.counter(
            "repro_perf_sim_seconds",
            CATALOG["repro_perf_sim_seconds"][1],
            ("campaign",),
        ).inc(sim_s, campaign=campaign)
    wall_s = perf.get("wall_s")
    if isinstance(wall_s, (int, float)) and not isinstance(wall_s, bool) and wall_s >= 0:
        registry.counter(
            "repro_perf_wall_seconds",
            CATALOG["repro_perf_wall_seconds"][1],
            ("campaign",),
        ).inc(wall_s, campaign=campaign)


def publish_journal_record(
    registry: MetricRegistry,
    record: Mapping[str, Any],
    campaign: str = "",
) -> None:
    """Fold one :class:`~repro.obs.journal.RunJournal` record in."""
    kind = str(record.get("record", "unknown"))
    registry.counter(
        "repro_campaign_journal_records",
        CATALOG["repro_campaign_journal_records"][1],
        ("campaign", "record"),
    ).inc(campaign=campaign, record=kind)
    if kind == "job":
        registry.counter(
            "repro_campaign_job_outcomes",
            CATALOG["repro_campaign_job_outcomes"][1],
            ("campaign", "status"),
        ).inc(campaign=campaign, status=str(record.get("status", "unknown")))
    elif kind == "retry":
        registry.counter(
            "repro_campaign_retries",
            CATALOG["repro_campaign_retries"][1],
            ("campaign",),
        ).inc(campaign=campaign)
    elif kind == "batch_start":
        registry.counter(
            "repro_campaign_drains",
            CATALOG["repro_campaign_drains"][1],
            ("campaign",),
        ).inc(campaign=campaign)


def publish_store_counts(
    registry: MetricRegistry,
    counts: Mapping[str, int],
    campaign: str = "",
) -> None:
    """Reflect per-status job counts (store ground truth) as gauges."""
    gauge = registry.gauge(
        "repro_campaign_jobs",
        CATALOG["repro_campaign_jobs"][1],
        ("campaign", "status"),
    )
    for status, count in counts.items():
        gauge.set(count, campaign=campaign, status=status)


def publish_transition(
    registry: MetricRegistry,
    old_status: str,
    new_status: str,
    campaign: str = "",
) -> None:
    """Count one store state-machine transition."""
    registry.counter(
        "repro_campaign_transitions",
        CATALOG["repro_campaign_transitions"][1],
        ("campaign", "from_status", "to_status"),
    ).inc(campaign=campaign, from_status=old_status, to_status=new_status)


__all__ = [
    "CATALOG",
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "OPENMETRICS_CONTENT_TYPE",
    "PERF_COUNTER_FIELDS",
    "default_registry",
    "publish_journal_record",
    "publish_perf_counters",
    "publish_store_counts",
    "publish_transition",
    "render_openmetrics",
    "validate_openmetrics",
]
