"""Figure 5: CDF of the time difference between the last packets on each
subflow, default scheduler, for {0.3, 0.7, 1.1, 4.2} Mbps WiFi vs 8.6 LTE.

Paper shape: the more heterogeneous the pair, the larger the gap -- the
slow subflow's last packet trails the fast subflow's by up to seconds at
0.3-8.6 and by almost nothing at 4.2-8.6.
"""

from bench_common import hetero_run, run_once, write_output
from repro.metrics.stats import cdf, percentile

PAIRS = (0.3, 0.7, 1.1, 4.2)


def test_fig05_last_packet_gap_cdf(benchmark):
    def compute():
        return {wifi: hetero_run("minrtt", wifi=wifi, lte=8.6) for wifi in PAIRS}

    results = run_once(benchmark, compute)
    lines = ["# CDF of last-packet time difference per chunk download"]
    medians = {}
    for wifi, result in results.items():
        gaps = result.last_packet_gaps
        medians[wifi] = percentile(gaps, 50)
        lines.append(f"\n-- {wifi}-8.6 Mbps (n={len(gaps)}) --")
        lines.append("gap_s  P[X<=x]")
        for x, p in cdf(gaps)[:: max(1, len(gaps) // 20)]:
            lines.append(f"{x:6.3f}  {p:5.3f}")
        lines.append(f"median={medians[wifi]:.3f}s p90={percentile(gaps, 90):.3f}s")
    write_output("fig05_lastpacket", "\n".join(lines))

    # Shape: gaps grow with heterogeneity; the most symmetric pair has the
    # smallest median gap, the most heterogeneous the largest.
    assert medians[4.2] < medians[0.3]
    assert medians[0.3] > 0.2
