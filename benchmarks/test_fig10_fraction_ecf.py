"""Figure 10: fast-subflow traffic fraction for BLEST and ECF vs ideal.

Paper shape: ECF tracks the ideal allocation more closely than BLEST
(and than the default of Fig 7) wherever paths are heterogeneous.
"""

from bench_common import GRID_MBPS, run_once, scheduler_grid, write_output
from repro.experiments.grid import fraction_fast_matrix
from repro.experiments.ideal import ideal_fast_fraction

HETERO_CELLS = [
    (w, l) for w in GRID_MBPS for l in GRID_MBPS
    if max(w, l) / min(w, l) >= 4.0
]


def test_fig10_fraction_blest_ecf(benchmark):
    def compute():
        return {name: scheduler_grid(name) for name in ("minrtt", "blest", "ecf")}

    grids = run_once(benchmark, compute)
    fractions = {name: fraction_fast_matrix(grid) for name, grid in grids.items()}
    lines = ["wifi-lte   default  blest    ecf     ideal"]
    deficits = {name: 0.0 for name in fractions}
    for wifi in GRID_MBPS:
        for lte in GRID_MBPS:
            ideal = ideal_fast_fraction(max(wifi, lte), min(wifi, lte))
            row = [f"{wifi:3.1f}-{lte:3.1f}  "]
            for name in ("minrtt", "blest", "ecf"):
                value = fractions[name][(wifi, lte)]
                row.append(f"{value:7.3f}")
                if (wifi, lte) in HETERO_CELLS:
                    # The paper's concern is *under*-utilizing the fast
                    # path; exceeding the ideal share is benign (Fig 10's
                    # own 8.6-8.6 cell sits above ideal).
                    deficits[name] += max(0.0, ideal - value)
            row.append(f"  {ideal:5.3f}")
            lines.append(" ".join(row))
    lines.append(
        f"\n# fast-path under-allocation vs ideal over heterogeneous cells: {deficits}"
    )
    write_output("fig10_fraction_ecf", "\n".join(lines))

    # Shape: ECF under-allocates the fast subflow no more than the default.
    assert deficits["ecf"] <= deficits["minrtt"] * 1.05 + 0.02
