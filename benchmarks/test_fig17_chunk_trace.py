"""Figure 17: per-chunk download throughput trace for one random
bandwidth-change scenario, default vs ECF.

Paper shape: ECF's per-chunk throughput is similar or larger than the
default's for every chunk, with up to ~2x gains while the scenario is
heterogeneous.
"""

from bench_common import run_once, write_output
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.workloads.scenarios import random_bandwidth_scenarios

VIDEO = 160.0
SCENARIO_INDEX = 5  # the paper picks its scenario 6 (1-based)


def test_fig17_chunk_throughput_trace(benchmark):
    scenario = random_bandwidth_scenarios(count=SCENARIO_INDEX + 1, duration=VIDEO * 2)[
        SCENARIO_INDEX
    ]

    def run(name):
        config = StreamingRunConfig(
            scheduler=name,
            wifi_mbps=scenario.wifi.rate_at(0.0) / 1e6,
            lte_mbps=scenario.lte.rate_at(0.0) / 1e6,
            video_duration=VIDEO,
            wifi_process=scenario.wifi,
            lte_process=scenario.lte,
            seed=SCENARIO_INDEX,
        )
        return run_streaming(config)

    results = run_once(benchmark, lambda: {n: run(n) for n in ("minrtt", "ecf")})
    default_chunks = results["minrtt"].metrics.chunks
    ecf_chunks = results["ecf"].metrics.chunks
    lines = ["chunk  default_Mbps  ecf_Mbps"]
    for index in range(min(len(default_chunks), len(ecf_chunks))):
        lines.append(
            f"{index:5d}  {default_chunks[index].throughput_bps / 1e6:12.2f}  "
            f"{ecf_chunks[index].throughput_bps / 1e6:8.2f}"
        )
    write_output("fig17_chunk_trace", "\n".join(lines))

    mean_default = sum(c.throughput_bps for c in default_chunks) / len(default_chunks)
    mean_ecf = sum(c.throughput_bps for c in ecf_chunks) / len(ecf_chunks)
    # Shape: ECF's chunk throughput is at least comparable overall.
    assert mean_ecf >= mean_default * 0.9
