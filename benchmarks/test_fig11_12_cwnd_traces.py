"""Figures 11 and 12: WiFi and LTE CWND traces per scheduler at
0.3 Mbps WiFi / 8.6 Mbps LTE.

Paper shape: the default scheduler grows a large WiFi (slow path) window
and keeps knocking the LTE (fast path) window back to the initial window;
ECF does the opposite -- the LTE window stays high, the WiFi window stays
comparatively small.
"""

from bench_common import hetero_run, run_once, write_output

SCHEDULERS = ("minrtt", "daps", "blest", "ecf")


def mean(values):
    return sum(values) / len(values) if values else 0.0


def test_fig11_12_cwnd_traces(benchmark):
    def compute():
        return {
            name: hetero_run(name, wifi=0.3, lte=8.6, record_traces=True)
            for name in SCHEDULERS
        }

    results = run_once(benchmark, compute)
    lines = ["scheduler  mean_wifi_cwnd  mean_lte_cwnd  lte_iw_resets"]
    stats = {}
    for name, result in results.items():
        wifi_cwnd = result.trace.values("cwnd.wifi0")
        lte_cwnd = result.trace.values("cwnd.lte1")
        resets = result.iw_resets_by_interface.get("lte", 0)
        stats[name] = (mean(wifi_cwnd), mean(lte_cwnd), resets)
        lines.append(
            f"{name:9s}  {stats[name][0]:14.1f}  {stats[name][1]:13.1f}  {resets:12d}"
        )
    # Also dump the raw ECF vs default traces for plotting.
    lines.append("\ntime_s  default_lte_cwnd  ecf_lte_cwnd")
    default_trace = results["minrtt"].trace.series("cwnd.lte1")
    ecf_trace = results["ecf"].trace.series("cwnd.lte1")
    for (t, d), (_, e) in list(zip(default_trace, ecf_trace))[::4]:
        lines.append(f"{t:7.2f}  {d:16.1f}  {e:12.1f}")
    write_output("fig11_12_cwnd_traces", "\n".join(lines))

    # Shape: ECF sustains a higher LTE window than the default and resets
    # it less.
    assert stats["ecf"][1] >= stats["minrtt"][1]
    assert stats["ecf"][2] <= stats["minrtt"][2]
