"""Figure 23 / Table 4: in-the-wild Web browsing -- object completion time
and out-of-order delay, default vs ECF.

Paper values (Table 4): mean completion 0.882 s (default) vs 0.650 s
(ECF, 26% shorter); mean out-of-order delay 0.297 s vs 0.087 s (71%
shorter).

Reproduction shape: ECF clearly improves the out-of-order delay; the
completion-time gain is compressed to roughly parity because our page mix
is dominated by small objects and the six browser connections contend for
the same emulated links, so the fast path ECF protects inside one
connection is loaded by its five siblings (see EXPERIMENTS.md).
"""

from bench_common import run_once, write_output
from repro.experiments.wild import run_wild_web
from repro.metrics.stats import mean, percentile


def test_fig23_tab04_wild_web(benchmark):
    results = run_once(benchmark, lambda: run_wild_web(runs=8))

    stats = {}
    for name, runs in results.items():
        cts = [t for r in runs for t in r.object_completion_times]
        ooo = [d for r in runs for d in r.ooo_delays]
        stats[name] = {
            "ct_mean": mean(cts),
            "ct_p99": percentile(cts, 99),
            "ooo_mean": mean(ooo),
            "ooo_p99": percentile(ooo, 99),
        }
    ct_gain = (1 - stats["ecf"]["ct_mean"] / stats["minrtt"]["ct_mean"]) * 100
    ooo_gain = (1 - stats["ecf"]["ooo_mean"] / stats["minrtt"]["ooo_mean"]) * 100
    lines = [
        "metric                     default     ecf",
        f"completion mean (s)      {stats['minrtt']['ct_mean']:9.3f}  {stats['ecf']['ct_mean']:7.3f}",
        f"completion p99 (s)       {stats['minrtt']['ct_p99']:9.3f}  {stats['ecf']['ct_p99']:7.3f}",
        f"ooo delay mean (s)       {stats['minrtt']['ooo_mean']:9.3f}  {stats['ecf']['ooo_mean']:7.3f}",
        f"ooo delay p99 (s)        {stats['minrtt']['ooo_p99']:9.3f}  {stats['ecf']['ooo_p99']:7.3f}",
        f"\n# ECF completion improvement: {ct_gain:+.1f}% (paper: 26%)",
        f"# ECF ooo-delay improvement:  {ooo_gain:+.1f}% (paper: 71%)",
    ]
    write_output("fig23_tab04_wild_web", "\n".join(lines))

    # Shape: ECF's reordering-delay tail is no heavier and it does not
    # lose on completion time.  (The mean OOO gain is seed-sensitive at
    # this scale; the longer testbed web runs of Figs 20-21 show it
    # robustly.)
    assert stats["ecf"]["ooo_p99"] <= stats["minrtt"]["ooo_p99"] * 1.05
    assert stats["ecf"]["ooo_mean"] <= stats["minrtt"]["ooo_mean"] * 1.10
    assert stats["ecf"]["ct_mean"] <= stats["minrtt"]["ct_mean"] * 1.05
