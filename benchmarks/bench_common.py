"""Shared infrastructure for the per-figure benchmark harnesses.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper.  Heavyweight sweeps (the 6x6 streaming grids) are computed once per
pytest session and shared across figures through the cached helpers here.

Each harness writes its paper-shaped output table to
``benchmarks/output/<figure>.txt`` (and also prints it, visible with
``pytest -s``), then registers a single-shot pytest-benchmark timing so
``pytest benchmarks/ --benchmark-only`` reports wall-clock per figure.

Scaling note: benches default to a 30-60 s video instead of the paper's
1332 s and fewer repetitions; the shapes survive, the absolute statistics
are noisier.  Every harness accepts full-scale parameters through the
underlying ``repro.experiments`` APIs.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.exec import ExperimentExecutor
from repro.experiments.grid import streaming_grid
from repro.experiments.runner import StreamingRunConfig, StreamingRunResult, run_streaming

OUTPUT_DIR = Path(__file__).parent / "output"

#: Workers for the sweep harnesses.  ``REPRO_BENCH_JOBS=8 pytest
#: benchmarks/`` fans the heavy grids out over 8 processes;
#: ``REPRO_BENCH_CACHE=dir`` additionally memoizes finished cells, so an
#: interrupted benchmark session resumes instead of recomputing.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None


def bench_executor() -> Optional[ExperimentExecutor]:
    """A fresh executor honoring the REPRO_BENCH_* environment knobs."""
    if BENCH_JOBS <= 1 and BENCH_CACHE is None:
        return None
    return ExperimentExecutor(jobs=BENCH_JOBS, cache_dir=BENCH_CACHE)

#: Grid used by the streaming heat-map benches (the paper's Section 3/5 set).
GRID_MBPS: Tuple[float, ...] = (0.3, 0.7, 1.1, 1.7, 4.2, 8.6)

#: Scaled-down video length for bench runs (paper: 1332 s).
BENCH_VIDEO_SECONDS = 60.0

#: Longer video for reset-count/trace benches where per-chunk effects matter.
BENCH_LONG_VIDEO_SECONDS = 120.0

Cell = Tuple[float, float]


def write_output(name: str, text: str) -> None:
    """Persist a harness's table and echo it for ``pytest -s``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}")


@functools.lru_cache(maxsize=None)
def scheduler_grid(scheduler: str, video: float = BENCH_VIDEO_SECONDS) -> Dict[Cell, List[StreamingRunResult]]:
    """One full 6x6 streaming grid for a scheduler (cached per session)."""
    base = StreamingRunConfig(scheduler=scheduler, video_duration=video)
    return streaming_grid(base, GRID_MBPS, GRID_MBPS, executor=bench_executor())


@functools.lru_cache(maxsize=None)
def hetero_run(
    scheduler: str,
    wifi: float = 0.3,
    lte: float = 8.6,
    video: float = BENCH_LONG_VIDEO_SECONDS,
    record_traces: bool = False,
    idle_reset: bool = True,
) -> StreamingRunResult:
    """One cached streaming run at a specific cell."""
    config = StreamingRunConfig(
        scheduler=scheduler,
        wifi_mbps=wifi,
        lte_mbps=lte,
        video_duration=video,
        record_traces=record_traces,
        idle_reset_enabled=idle_reset,
        sample_period=0.25,
    )
    return run_streaming(config)


def run_once(benchmark, fn):
    """Register ``fn`` as a single-shot benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
