"""Extension experiment: ECF vs MP-DASH-style deadline path management.

The paper declines to evaluate MP-DASH ("it activates and deactivates
cellular paths according to required bandwidths ... regardless of path
heterogeneity"); having built both, we can run the comparison it alludes
to.  Expected shape, per both papers' claims: MP-DASH slashes cellular
(LTE) usage when WiFi alone meets the rate requirement, at little QoE
cost there -- while ECF, which optimizes completion time rather than
cellular economy, delivers the higher bit rate when WiFi alone is not
enough.
"""

from bench_common import BENCH_LONG_VIDEO_SECONDS, run_once, write_output
from repro.experiments.runner import StreamingRunConfig, run_streaming

SCHEDULERS = ("minrtt", "ecf", "mpdash")
CELLS = ((8.6, 8.6), (4.2, 8.6), (0.3, 8.6))


def test_ext_mpdash_vs_ecf(benchmark):
    def compute():
        out = {}
        for wifi, lte in CELLS:
            for name in SCHEDULERS:
                result = run_streaming(StreamingRunConfig(
                    scheduler=name, wifi_mbps=wifi, lte_mbps=lte,
                    video_duration=BENCH_LONG_VIDEO_SECONDS,
                ))
                total = sum(result.payload_by_interface.values())
                out[(wifi, lte, name)] = {
                    "bitrate": result.metrics.steady_average_bitrate_bps,
                    "lte_share": result.payload_by_interface.get("lte", 0) / total,
                }
        return out

    data = run_once(benchmark, compute)
    lines = ["wifi-lte   scheduler  bitrate_Mbps  lte_share"]
    for wifi, lte in CELLS:
        for name in SCHEDULERS:
            row = data[(wifi, lte, name)]
            lines.append(
                f"{wifi:3.1f}-{lte:3.1f}   {name:9s}  {row['bitrate'] / 1e6:12.2f}  "
                f"{row['lte_share']:9.2f}"
            )
    write_output("ext_mpdash", "\n".join(lines))

    # When WiFi is starved (0.3), everyone leans on LTE and ECF's bit rate
    # is at least MP-DASH's.
    assert (
        data[(0.3, 8.6, "ecf")]["bitrate"]
        >= data[(0.3, 8.6, "mpdash")]["bitrate"] * 0.95
    )
    # MP-DASH never uses more LTE than the default at any cell.
    for cell in CELLS:
        assert (
            data[(cell[0], cell[1], "mpdash")]["lte_share"]
            <= data[(cell[0], cell[1], "minrtt")]["lte_share"] + 0.25
        )
