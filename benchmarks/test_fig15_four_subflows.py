"""Figure 15: bit-rate ratio with four subflows (2 WiFi + 2 LTE),
0.3 Mbps WiFi vs a range of LTE bandwidths, default vs ECF.

Paper shape: with four subflows the default still degrades under strong
heterogeneity while ECF mitigates it.
"""

from bench_common import BENCH_VIDEO_SECONDS, run_once, write_output
from repro.apps.dash.media import VideoManifest
from repro.experiments.ideal import ideal_average_bitrate
from repro.experiments.runner import StreamingRunConfig, run_streaming

LTE_VALUES = (0.3, 1.1, 1.7, 4.2, 8.6)


def ratio(result, wifi, lte):
    ideal = ideal_average_bitrate([wifi * 1e6, lte * 1e6], VideoManifest())
    return min(1.0, result.metrics.steady_average_bitrate_bps / ideal)


def test_fig15_four_subflows(benchmark):
    def compute():
        rows = []
        for lte in LTE_VALUES:
            per_sched = {}
            for name in ("minrtt", "ecf"):
                result = run_streaming(StreamingRunConfig(
                    scheduler=name, wifi_mbps=0.3, lte_mbps=lte,
                    video_duration=BENCH_VIDEO_SECONDS,
                    subflows_per_interface=2,
                ))
                per_sched[name] = ratio(result, 0.3, lte)
            rows.append((lte, per_sched["minrtt"], per_sched["ecf"]))
        return rows

    rows = run_once(benchmark, compute)
    lines = ["lte_Mbps  default_ratio  ecf_ratio   (wifi = 0.3 Mbps, 2+2 subflows)"]
    for lte, default, ecf in rows:
        lines.append(f"{lte:8.1f}  {default:13.2f}  {ecf:9.2f}")
    write_output("fig15_four_subflows", "\n".join(lines))

    # Shape: ECF at least matches the default on average across the row.
    assert sum(e for _, _, e in rows) >= sum(d for _, d, _ in rows) * 0.95
    # And every run produced sane ratios.
    assert all(0.0 < d <= 1.0 and 0.0 < e <= 1.0 for _, d, e in rows)
