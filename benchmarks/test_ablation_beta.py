"""Ablation: ECF's hysteresis constant beta.

The paper sets beta = 0.25 and reports that "other values ... were
examined but found to yield similar results".  We sweep beta over two
orders of magnitude at the flagship heterogeneous cell and check the
outcome is indeed insensitive.
"""

from bench_common import BENCH_LONG_VIDEO_SECONDS, run_once, write_output
from repro.experiments.runner import StreamingRunConfig, run_streaming

BETAS = (0.0, 0.1, 0.25, 0.5, 1.0)


def test_ablation_beta(benchmark):
    def compute():
        out = {}
        for beta in BETAS:
            result = run_streaming(StreamingRunConfig(
                scheduler="ecf", scheduler_params={"beta": beta},
                wifi_mbps=0.3, lte_mbps=8.6,
                video_duration=BENCH_LONG_VIDEO_SECONDS,
            ))
            out[beta] = result.metrics.steady_average_bitrate_bps
        return out

    rates = run_once(benchmark, compute)
    lines = ["beta   steady_bitrate_Mbps"]
    for beta in BETAS:
        lines.append(f"{beta:5.2f}  {rates[beta] / 1e6:8.2f}")
    write_output("ablation_beta", "\n".join(lines))

    # Paper's claim: beta choice barely matters.
    values = list(rates.values())
    assert max(values) <= min(values) * 1.35
