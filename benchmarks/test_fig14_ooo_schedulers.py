"""Figure 14: CCDF of out-of-order delay per scheduler, for a strongly
heterogeneous pair (0.3/8.6) and a mildly heterogeneous one (4.2/8.6).

Paper shape: in the heterogeneous configuration ECF has the lightest
tail, the default the heaviest; in the near-symmetric configuration all
schedulers except DAPS are comparable and small.
"""

from bench_common import hetero_run, run_once, write_output
from repro.metrics.stats import percentile

SCHEDULERS = ("minrtt", "daps", "blest", "ecf")


def test_fig14_ooo_delay_schedulers(benchmark):
    def compute():
        out = {}
        for wifi in (0.3, 4.2):
            out[wifi] = {
                name: hetero_run(name, wifi=wifi, lte=8.6).ooo_delays
                for name in SCHEDULERS
            }
        return out

    data = run_once(benchmark, compute)
    lines = ["config      scheduler  p50_s   p90_s   p99_s"]
    p90 = {}
    for wifi, per_sched in data.items():
        for name, delays in per_sched.items():
            p90[(wifi, name)] = percentile(delays, 90)
            lines.append(
                f"{wifi:3.1f}-8.6    {name:9s}  {percentile(delays, 50):6.3f}  "
                f"{percentile(delays, 90):6.3f}  {percentile(delays, 99):6.3f}"
            )
    write_output("fig14_ooo_schedulers", "\n".join(lines))

    # Shape: under strong heterogeneity ECF's tail is no heavier than the
    # default's; near symmetry everyone is small.
    assert p90[(0.3, "ecf")] <= p90[(0.3, "minrtt")] * 1.05
    assert p90[(4.2, "ecf")] < 0.3
    assert p90[(4.2, "minrtt")] < 0.3
