"""Table 3: number of initial-window resets per scheduler at
0.3 Mbps WiFi / 8.6 Mbps LTE.

Paper values (over a 1332 s video): Default 486, DAPS 92, BLEST 382,
ECF 16.  Shape: ECF has by far the fewest resets; the default the most
(or near it).
"""

from bench_common import hetero_run, run_once, write_output

SCHEDULERS = ("minrtt", "daps", "blest", "ecf")
PAPER = {"minrtt": 486, "daps": 92, "blest": 382, "ecf": 16}


def test_tab03_iw_resets(benchmark):
    def compute():
        return {
            name: sum(
                hetero_run(name, wifi=0.3, lte=8.6).iw_resets_by_interface.values()
            )
            for name in SCHEDULERS
        }

    resets = run_once(benchmark, compute)
    lines = ["scheduler  measured_resets  paper_resets(1332s video)"]
    for name in SCHEDULERS:
        lines.append(f"{name:9s}  {resets[name]:15d}  {PAPER[name]:10d}")
    write_output("tab03_iw_resets", "\n".join(lines))

    # Shape: ECF resets least; the default resets more than ECF.
    assert resets["ecf"] == min(resets.values())
    assert resets["minrtt"] > resets["ecf"]
