"""Figure 6: streaming throughput with vs without the idle CWND reset.

Paper shape: disabling the reset raises measured throughput toward -- but
not all the way to -- the ideal aggregate bandwidth.

Reproduction deviation (documented in EXPERIMENTS.md): in our simulator
the gain materializes in the symmetric/fast regime, where the reset is
pure overhead on a hot window.  Under strong heterogeneity the global
disable *backfires*: the slow subflow's window -- no longer collapsed
during OFF periods -- bloats its deep regulator queue and drags chunk
tails, the congested-regime risk the paper itself cites as the reason the
reset "cannot be disabled in congested network environments" (Sec 3.2).
"""

from bench_common import BENCH_LONG_VIDEO_SECONDS, run_once, write_output
from repro.experiments.runner import StreamingRunConfig, run_streaming

PAIRS = [(w, l) for w in (0.3, 1.1, 4.2, 8.6) for l in (0.3, 1.1, 4.2, 8.6)]


def test_fig06_throughput_with_without_reset(benchmark):
    def compute():
        rows = []
        for wifi, lte in PAIRS:
            per_setting = {}
            for reset in (True, False):
                result = run_streaming(StreamingRunConfig(
                    scheduler="minrtt", wifi_mbps=wifi, lte_mbps=lte,
                    video_duration=BENCH_LONG_VIDEO_SECONDS,
                    idle_reset_enabled=reset,
                ))
                per_setting[reset] = result.metrics.steady_average_throughput_bps
            rows.append((wifi, lte, per_setting[True], per_setting[False]))
        return rows

    rows = run_once(benchmark, compute)
    lines = ["wifi-lte   with_reset_Mbps  without_reset_Mbps  ideal_Mbps"]
    for wifi, lte, with_reset, without in rows:
        lines.append(
            f"{wifi:3.1f}-{lte:3.1f}   {with_reset / 1e6:14.2f}  "
            f"{without / 1e6:17.2f}  {wifi + lte:9.1f}"
        )
    write_output("fig06_cwnd_reset", "\n".join(lines))

    by_cell = {(w, l): (wr, wo) for w, l, wr, wo in rows}
    # Shape: in the symmetric high-bandwidth regime (reset = pure
    # overhead), disabling it raises throughput.
    with_reset, without = by_cell[(8.6, 8.6)]
    assert without > with_reset
    # Throughput never exceeds the ideal aggregate.
    for wifi, lte, _, without in rows:
        assert without <= (wifi + lte) * 1e6 * 1.05
    # And the reset itself never lifts throughput above the ideal either.
    for wifi, lte, wr, _ in rows:
        assert wr <= (wifi + lte) * 1e6 * 1.05
