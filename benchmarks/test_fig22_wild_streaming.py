"""Figure 22: in-the-wild streaming -- per-run RTTs and throughput,
default vs ECF, runs sorted by WiFi RTT.

Paper shape: LTE RTT is stable around 70 ms while WiFi RTT spans a wide
range; in RTT-symmetric runs the schedulers tie, and ECF's throughput
advantage grows with the RTT asymmetry (16% on average in the paper).
"""

from bench_common import run_once, write_output
from repro.experiments.wild import run_wild_streaming


def test_fig22_wild_streaming(benchmark):
    runs = run_once(benchmark, lambda: run_wild_streaming(runs=9, video_duration=60.0))

    lines = ["run  wifi_rtt_ms  lte_rtt_ms  default_Mbps  ecf_Mbps"]
    default_total = ecf_total = 0.0
    for run in runs:
        default_thp = run.throughput_mbps("minrtt")
        ecf_thp = run.throughput_mbps("ecf")
        default_total += default_thp
        ecf_total += ecf_thp
        lines.append(
            f"{run.run_index:3d}  {run.wifi_config.one_way_delay * 2000:11.0f}  "
            f"{run.lte_config.one_way_delay * 2000:10.0f}  "
            f"{default_thp:12.2f}  {ecf_thp:8.2f}"
        )
    improvement = (ecf_total - default_total) / default_total * 100
    lines.append(f"\n# mean ECF improvement: {improvement:+.1f}% (paper: +16%)")
    write_output("fig22_wild_streaming", "\n".join(lines))

    # Shape: the drawn WiFi RTTs span a wide range while LTE stays stable.
    wifi_rtts = [run.wifi_config.one_way_delay for run in runs]
    lte_rtts = [run.lte_config.one_way_delay for run in runs]
    assert max(wifi_rtts) / min(wifi_rtts) > 3.0
    assert max(lte_rtts) / min(lte_rtts) < 1.5
    # ECF at least matches the default overall.
    assert ecf_total >= default_total * 0.97
