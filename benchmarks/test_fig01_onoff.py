"""Figure 1: ON-OFF download behaviour of a streaming client.

The paper shows a Netflix trace whose download progress rises steeply
during initial buffering, then steps in an ON-OFF pattern.  We regenerate
the same curve from our DASH player's download-progress trace and check
its signature: an initial-buffering knee followed by spaced steps.
"""

from bench_common import hetero_run, run_once, write_output


def test_fig01_onoff_download_pattern(benchmark):
    result = run_once(
        benchmark,
        lambda: hetero_run("minrtt", wifi=4.2, lte=8.6, record_traces=True),
    )
    trace = result.trace.series("player.download_bytes")
    lines = ["time_s  downloaded_MB"]
    for t, v in trace:
        lines.append(f"{t:7.2f}  {v / 1e6:8.3f}")
    startup = result.metrics.startup_completed_at
    lines.append(f"# initial buffering completes ~{startup:.1f} s" if startup else "#")
    write_output("fig01_onoff", "\n".join(lines))

    # Shape: progress is monotone, and after startup the requests space out
    # into ON-OFF steps roughly a chunk apart.
    values = [v for _, v in trace]
    assert values == sorted(values)
    requests = [c.requested_at for c in result.metrics.chunks]
    steady_gaps = [b - a for a, b in zip(requests, requests[1:]) if a > (startup or 0)]
    assert steady_gaps and max(steady_gaps) > 2.0
