"""Figures 20 and 21: Web-object download completion time CCDF and
out-of-order delay CCDF for three bandwidth configurations.

Paper shape: at 5/5 Mbps all schedulers are equivalent; at 1/5 and 1/10
(heterogeneous) ECF completes objects sooner than the others and cuts the
out-of-order delay tail.
"""

from bench_common import run_once, write_output
from repro.metrics.stats import percentile
from repro.net.profiles import lte_config, wifi_config
from repro.workloads.web import run_web_browsing

CONFIGS = {
    "5.0-5.0": (wifi_config(5.0), lte_config(5.0)),
    "1.0-5.0": (wifi_config(1.0), lte_config(5.0)),
    "1.0-10.0": (wifi_config(1.0), lte_config(10.0)),
}
SCHEDULERS = ("minrtt", "daps", "blest", "ecf")


def test_fig20_21_web_browsing(benchmark):
    def compute():
        return {
            label: {
                name: run_web_browsing(name, paths, seed=4)
                for name in SCHEDULERS
            }
            for label, paths in CONFIGS.items()
        }

    data = run_once(benchmark, compute)
    lines = [
        "config     scheduler  ct_mean_s  ct_p95_s  ct_p99_s  ooo_p90_s  ooo_p99_s"
    ]
    stats = {}
    for label, per_sched in data.items():
        for name, result in per_sched.items():
            cts = result.object_completion_times
            ooo = result.ooo_delays
            stats[(label, name)] = (
                result.mean_completion_time,
                percentile(cts, 99),
                percentile(ooo, 99) if ooo else 0.0,
            )
            lines.append(
                f"{label:9s}  {name:9s}  {result.mean_completion_time:9.3f}  "
                f"{percentile(cts, 95):8.3f}  {percentile(cts, 99):8.3f}  "
                f"{percentile(ooo, 90) if ooo else 0:9.3f}  "
                f"{percentile(ooo, 99) if ooo else 0:9.3f}"
            )
    write_output("fig20_21_web", "\n".join(lines))

    # Shape: symmetric config -> ECF within noise of default.
    assert stats[("5.0-5.0", "ecf")][0] <= stats[("5.0-5.0", "minrtt")][0] * 1.3
    # Heterogeneous configs -> ECF mean completion no worse than default,
    # and the deep completion tail (p99) at least as light at 1-10.
    assert stats[("1.0-10.0", "ecf")][0] <= stats[("1.0-10.0", "minrtt")][0] * 1.05
    assert stats[("1.0-10.0", "ecf")][1] <= stats[("1.0-10.0", "minrtt")][1] * 1.05
    # And ECF's out-of-order tail is no heavier there either.
    assert stats[("1.0-10.0", "ecf")][2] <= stats[("1.0-10.0", "minrtt")][2] * 1.05
