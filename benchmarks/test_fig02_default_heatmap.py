"""Figure 2: measured/ideal bit-rate heat map, default scheduler, 6x6 grid.

Paper shape: near-1 on the diagonal and in the high-bandwidth corner,
clearly degraded where paths are heterogeneous (one fast, one slow), worst
when the primary (WiFi) is the slow path.
"""

from bench_common import GRID_MBPS, run_once, scheduler_grid, write_output
from repro.experiments.grid import bitrate_ratio_matrix, format_matrix


def test_fig02_default_bitrate_ratio(benchmark):
    grid = run_once(benchmark, lambda: scheduler_grid("minrtt"))
    ratios = bitrate_ratio_matrix(grid)
    write_output(
        "fig02_default_heatmap",
        "Ratio of measured vs ideal average bit rate (default scheduler)\n"
        + format_matrix(ratios, GRID_MBPS, GRID_MBPS),
    )

    # Symmetric high-bandwidth corner close to ideal...
    assert ratios[(8.6, 8.6)] > 0.75
    # ...while strongly heterogeneous cells fall short of it.
    hetero = min(ratios[(0.3, 8.6)], ratios[(8.6, 0.3)])
    assert hetero < ratios[(8.6, 8.6)]
    # Every ratio is a valid fraction of ideal.
    assert all(0.0 <= v <= 1.0 for v in ratios.values())
