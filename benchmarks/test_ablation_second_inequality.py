"""Ablation: ECF's second inequality.

Algorithm 1 double-checks that the slow subflow really would finish later
than a waiting fast subflow (k/CWND_s * RTT_s >= 2 RTT_f + delta) before
declining to send.  Without it ECF waits too eagerly when the two paths
are close in RTT, hurting near-symmetric workloads.
"""

from bench_common import BENCH_LONG_VIDEO_SECONDS, run_once, write_output
from repro.experiments.runner import StreamingRunConfig, run_streaming

CELLS = ((0.3, 8.6), (4.2, 8.6), (8.6, 8.6))


def test_ablation_second_inequality(benchmark):
    def compute():
        out = {}
        for wifi, lte in CELLS:
            for enabled in (True, False):
                result = run_streaming(StreamingRunConfig(
                    scheduler="ecf",
                    scheduler_params={"use_second_inequality": enabled},
                    wifi_mbps=wifi, lte_mbps=lte,
                    video_duration=BENCH_LONG_VIDEO_SECONDS,
                ))
                out[(wifi, lte, enabled)] = result.metrics.steady_average_bitrate_bps
        return out

    rates = run_once(benchmark, compute)
    lines = ["wifi-lte   with_2nd_Mbps  without_2nd_Mbps"]
    for wifi, lte in CELLS:
        lines.append(
            f"{wifi:3.1f}-{lte:3.1f}   {rates[(wifi, lte, True)] / 1e6:13.2f}  "
            f"{rates[(wifi, lte, False)] / 1e6:16.2f}"
        )
    write_output("ablation_second_inequality", "\n".join(lines))

    # The guard never hurts: full ECF >= crippled ECF at every cell
    # (within noise).
    for wifi, lte in CELLS:
        assert rates[(wifi, lte, True)] >= rates[(wifi, lte, False)] * 0.9
