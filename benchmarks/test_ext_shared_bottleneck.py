"""Extension experiment: coupled congestion control on a shared bottleneck.

Not a paper figure -- a validation of the congestion-control substrate the
paper's results ride on.  Both MPTCP subflows traverse one shared
bottleneck alongside a single-path TCP flow; RFC 6356's design goal is
that the MPTCP connection takes no more than a single TCP flow would,
while uncoupled Reno subflows grab roughly two shares.
"""

from bench_common import run_once, write_output
from repro.core.registry import make_scheduler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.topology import LinkSpec, shared_bottleneck, chain_path
from repro.sim.engine import Simulator

BOTTLENECK_MBPS = 6.0
DURATION = 60.0


def run_contest(mptcp_cc: str) -> dict:
    """One MPTCP connection (2 subflows) vs one TCP flow, same bottleneck."""
    sim = Simulator()
    bottleneck = LinkSpec(BOTTLENECK_MBPS, 0.01, queue_bytes=120_000, name="bn")
    mptcp_paths = shared_bottleneck(
        sim,
        access_a=LinkSpec(50.0, 0.005, name="a"),
        access_b=LinkSpec(50.0, 0.006, name="b"),
        bottleneck=bottleneck,
    )
    # The single-path competitor crosses the *same* shared Link instance.
    shared_link = mptcp_paths[0].forward.hops[1]
    tcp_path = chain_path(
        sim, "tcp",
        [LinkSpec(50.0, 0.005, name="tcp-access")],
    )
    tcp_path.forward.hops.append(shared_link)

    mptcp = MptcpConnection(
        sim, mptcp_paths, make_scheduler("roundrobin"),
        config=ConnectionConfig(handshake_delays=False, congestion_control=mptcp_cc),
        name="mptcp",
    )
    tcp = MptcpConnection(
        sim, [tcp_path], make_scheduler("minrtt"),
        config=ConnectionConfig(handshake_delays=False, congestion_control="reno"),
        name="tcp",
    )
    saturate = int(BOTTLENECK_MBPS * 1e6 / 8 * DURATION * 2)
    mptcp.write(saturate)
    tcp.write(saturate)
    sim.run(until=DURATION)
    return {
        "mptcp_mbps": mptcp.delivered_bytes * 8 / DURATION / 1e6,
        "tcp_mbps": tcp.delivered_bytes * 8 / DURATION / 1e6,
    }


def test_ext_shared_bottleneck_fairness(benchmark):
    def compute():
        return {cc: run_contest(cc) for cc in ("coupled", "olia", "reno")}

    results = run_once(benchmark, compute)
    lines = [
        f"shared bottleneck {BOTTLENECK_MBPS} Mbps: 2-subflow MPTCP vs 1 TCP flow",
        "mptcp_cc   mptcp_Mbps  tcp_Mbps  mptcp_share",
    ]
    shares = {}
    for cc, row in results.items():
        total = row["mptcp_mbps"] + row["tcp_mbps"]
        shares[cc] = row["mptcp_mbps"] / total if total else 0.0
        lines.append(
            f"{cc:8s}  {row['mptcp_mbps']:10.2f}  {row['tcp_mbps']:8.2f}  "
            f"{shares[cc]:11.2f}"
        )
    write_output("ext_shared_bottleneck", "\n".join(lines))

    # Uncoupled Reno subflows grab more of the bottleneck than coupled.
    assert shares["reno"] > shares["coupled"]
    # Coupled MPTCP stays in the vicinity of a single flow's share.
    assert shares["coupled"] < 0.70
    # The pipe is actually used.
    for row in results.values():
        assert row["mptcp_mbps"] + row["tcp_mbps"] > BOTTLENECK_MBPS * 0.7
