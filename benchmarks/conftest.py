"""Pytest hooks for the benchmark harnesses (shared logic: bench_common)."""

import sys
from pathlib import Path

# Make `import bench_common` reliable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
