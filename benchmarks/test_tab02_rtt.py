"""Table 2: average RTT per regulated bandwidth.

Paper values (ms)::

    Bandwidth   0.3  0.7  1.1  1.7  4.2  8.6
    WiFi RTT    969  413  273  196   87   40
    LTE  RTT    858  416  268  210  131  105

The RTT is an emergent property of our queue model under a busy subflow.
We measure it from a saturating single-path transfer per regulation, and
assert the two shape properties the paper's table shows: RTT falls
monotonically with bandwidth, and the low-bandwidth regulations show
second-scale bufferbloat.
"""

from bench_common import run_once, write_output
from repro.core.registry import make_scheduler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.profiles import lte_config, make_path, wifi_config
from repro.sim.engine import Simulator

BANDWIDTHS = (0.3, 0.7, 1.1, 1.7, 4.2, 8.6)
PAPER = {
    "wifi": {0.3: 969, 0.7: 413, 1.1: 273, 1.7: 196, 4.2: 87, 8.6: 40},
    "lte": {0.3: 858, 0.7: 416, 1.1: 268, 1.7: 210, 4.2: 131, 8.6: 105},
}


def measure_rtt(config_factory, rate_mbps: float) -> float:
    sim = Simulator()
    path = make_path(sim, config_factory(rate_mbps))
    conn = MptcpConnection(
        sim, [path], make_scheduler("minrtt"),
        config=ConnectionConfig(handshake_delays=False),
    )
    conn.write(int(rate_mbps * 1e6))  # ~8 seconds of saturation
    sim.run(until=60.0)
    return conn.subflows[0].rtt.mean_rtt


def test_tab02_rtt_vs_bandwidth(benchmark):
    def compute():
        return {
            "wifi": {bw: measure_rtt(wifi_config, bw) for bw in BANDWIDTHS},
            "lte": {bw: measure_rtt(lte_config, bw) for bw in BANDWIDTHS},
        }

    measured = run_once(benchmark, compute)
    lines = ["iface  bw_Mbps  measured_ms  paper_ms"]
    for iface in ("wifi", "lte"):
        for bw in BANDWIDTHS:
            lines.append(
                f"{iface:5s}  {bw:7.1f}  {measured[iface][bw] * 1e3:11.0f}  "
                f"{PAPER[iface][bw]:8d}"
            )
    write_output("tab02_rtt", "\n".join(lines))

    for iface in ("wifi", "lte"):
        series = [measured[iface][bw] for bw in BANDWIDTHS]
        # RTT decreases with bandwidth...
        assert series == sorted(series, reverse=True)
    # ...with second-scale bufferbloat at 0.3 Mbps and modest RTT at 8.6.
    assert measured["wifi"][0.3] > 0.5
    assert measured["wifi"][8.6] < 0.2
    # LTE keeps a higher floor than WiFi at high bandwidth (as in Table 2).
    assert measured["lte"][8.6] > measured["wifi"][8.6]
