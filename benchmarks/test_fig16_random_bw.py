"""Figure 16: average streaming throughput under random bandwidth
changes, per scenario, for default / BLEST / ECF.

Paper shape: ECF's per-scenario average throughput is at least the other
schedulers', with the margin depending on how much heterogeneity the
scenario happens to contain.
"""

from bench_common import run_once, write_output
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.workloads.scenarios import random_bandwidth_scenarios

SCHEDULERS = ("minrtt", "blest", "ecf")
SCENARIOS = 6
VIDEO = 160.0


def run_scenario(scenario, scheduler):
    config = StreamingRunConfig(
        scheduler=scheduler,
        wifi_mbps=scenario.wifi.rate_at(0.0) / 1e6,
        lte_mbps=scenario.lte.rate_at(0.0) / 1e6,
        video_duration=VIDEO,
        wifi_process=scenario.wifi,
        lte_process=scenario.lte,
        seed=scenario.index,
    )
    return run_streaming(config).metrics.steady_average_throughput_bps


def test_fig16_random_bandwidth_scenarios(benchmark):
    scenarios = random_bandwidth_scenarios(count=SCENARIOS, duration=VIDEO * 2)

    def compute():
        return {
            scenario.index: {
                name: run_scenario(scenario, name) for name in SCHEDULERS
            }
            for scenario in scenarios
        }

    data = run_once(benchmark, compute)
    lines = ["scenario  default_Mbps  blest_Mbps  ecf_Mbps"]
    for index in sorted(data):
        row = data[index]
        lines.append(
            f"{index:8d}  {row['minrtt'] / 1e6:12.2f}  "
            f"{row['blest'] / 1e6:10.2f}  {row['ecf'] / 1e6:8.2f}"
        )
    means = {
        name: sum(row[name] for row in data.values()) / len(data)
        for name in SCHEDULERS
    }
    lines.append(f"\n# means: { {k: round(v / 1e6, 2) for k, v in means.items()} }")
    write_output("fig16_random_bw", "\n".join(lines))

    # Shape: on average over scenarios, ECF >= default (within noise).
    assert means["ecf"] >= means["minrtt"] * 0.95
