"""Figure 18: wget download completion time for 128 kB - 1 MB objects,
WiFi fixed at 1 Mbps, LTE swept 1..10 Mbps, all four schedulers.

Paper shape: completion time falls with LTE bandwidth for sizes large
enough to engage the secondary subflow; schedulers are statistically
close, with DAPS occasionally worse and ECF shaving time off the largest
transfers at high heterogeneity.
"""

from bench_common import bench_executor, run_once, write_output
from repro.experiments.grid import wget_matrix

SIZES = (128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024)
LTE_MBPS = tuple(range(1, 11))
SCHEDULERS = ("minrtt", "daps", "blest", "ecf")


def test_fig18_wget_completion_times(benchmark):
    def compute():
        matrix = wget_matrix(
            SCHEDULERS,
            SIZES,
            wifi_values_mbps=(1.0,),
            lte_values_mbps=tuple(float(v) for v in LTE_MBPS),
            seed=1,
            executor=bench_executor(),
        )
        return {
            (size, int(lte), name): result.completion_time
            for (size, _, lte, name), result in matrix.items()
        }

    table = run_once(benchmark, compute)
    lines = ["size_kB  lte_Mbps  default_s  daps_s  blest_s  ecf_s"]
    for size in SIZES:
        for lte in LTE_MBPS:
            row = [f"{size // 1024:7d}  {lte:8d}"]
            for name in SCHEDULERS:
                row.append(f"{table[(size, lte, name)]:7.3f}")
            lines.append(" ".join(row))
    write_output("fig18_wget", "\n".join(lines))

    # Shape 1: larger files take longer at fixed bandwidths.
    for lte in (1, 5, 10):
        times = [table[(size, lte, "minrtt")] for size in SIZES]
        assert times == sorted(times)
    # Shape 2: for 1 MB transfers, more LTE bandwidth never hurts much.
    big = [table[(SIZES[-1], lte, "minrtt")] for lte in LTE_MBPS]
    assert big[-1] < big[0]
    # Shape 3: ECF does not lose to the default on the largest transfers.
    for lte in LTE_MBPS:
        assert (
            table[(SIZES[-1], lte, "ecf")]
            <= table[(SIZES[-1], lte, "minrtt")] * 1.1
        )
