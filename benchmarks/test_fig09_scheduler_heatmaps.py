"""Figure 9: bit-rate ratio heat maps for default, ECF, DAPS, and BLEST.

Paper shape: ECF's map is the darkest (closest to ideal) under
heterogeneity; DAPS does not improve on the default and is sometimes
worse; BLEST helps only in a few cells.
"""

from bench_common import GRID_MBPS, run_once, scheduler_grid, write_output
from repro.experiments.grid import bitrate_ratio_matrix, format_matrix

SCHEDULERS = ("minrtt", "ecf", "daps", "blest")

#: Cells with at least ~4x bandwidth asymmetry.
HETERO_CELLS = [
    (w, l) for w in GRID_MBPS for l in GRID_MBPS
    if max(w, l) / min(w, l) >= 4.0
]


def test_fig09_scheduler_heatmaps(benchmark):
    def compute():
        return {name: scheduler_grid(name) for name in SCHEDULERS}

    grids = run_once(benchmark, compute)
    ratios = {name: bitrate_ratio_matrix(grid) for name, grid in grids.items()}
    sections = []
    for name in SCHEDULERS:
        sections.append(
            f"-- {name} --\n" + format_matrix(ratios[name], GRID_MBPS, GRID_MBPS)
        )
    write_output("fig09_scheduler_heatmaps", "\n\n".join(sections))

    def hetero_mean(name):
        return sum(ratios[name][cell] for cell in HETERO_CELLS) / len(HETERO_CELLS)

    # ECF dominates the default under heterogeneity...
    assert hetero_mean("ecf") >= hetero_mean("minrtt")
    # ...and is the best (or tied best) of all four schedulers there.
    best = max(SCHEDULERS, key=hetero_mean)
    assert hetero_mean("ecf") >= hetero_mean(best) - 0.02
    # DAPS does not beat ECF.
    assert hetero_mean("daps") <= hetero_mean("ecf") + 0.02
