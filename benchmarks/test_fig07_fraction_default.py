"""Figure 7: fraction of traffic on the fast subflow, default scheduler,
against the ideal (bandwidth-share) fraction.

Paper shape: the default scheduler under-allocates the fast subflow
relative to the fluid ideal whenever paths are heterogeneous.
"""

from bench_common import GRID_MBPS, run_once, scheduler_grid, write_output
from repro.experiments.grid import fraction_fast_matrix
from repro.experiments.ideal import ideal_fast_fraction


def test_fig07_default_fraction(benchmark):
    grid = run_once(benchmark, lambda: scheduler_grid("minrtt"))
    fractions = fraction_fast_matrix(grid)
    lines = ["wifi-lte   measured  ideal"]
    deficits = []
    for wifi in GRID_MBPS:
        for lte in GRID_MBPS:
            fast, slow = max(wifi, lte), min(wifi, lte)
            ideal = ideal_fast_fraction(fast, slow)
            measured = fractions[(wifi, lte)]
            lines.append(f"{wifi:3.1f}-{lte:3.1f}   {measured:8.3f}  {ideal:5.3f}")
            if fast / slow >= 4.0:  # strongly heterogeneous cells
                deficits.append(ideal - measured)
    write_output("fig07_fraction_default", "\n".join(lines))

    # Shape: under strong heterogeneity, the default scheduler puts less
    # on the fast path than the ideal share on average.
    assert sum(deficits) / len(deficits) > 0.0
