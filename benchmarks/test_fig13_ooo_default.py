"""Figure 13: CCDF of out-of-order delay with the default scheduler, for
{0.3, 0.7, 1.1, 4.2} Mbps WiFi vs 8.6 Mbps LTE.

Paper shape: out-of-order delays grow as paths become more heterogeneous;
at 0.3-8.6 the tail reaches the second scale, at 4.2-8.6 it is tiny.
"""

from bench_common import hetero_run, run_once, write_output
from repro.metrics.stats import ccdf, percentile

PAIRS = (0.3, 0.7, 1.1, 4.2)


def test_fig13_ooo_delay_default(benchmark):
    def compute():
        return {wifi: hetero_run("minrtt", wifi=wifi, lte=8.6) for wifi in PAIRS}

    results = run_once(benchmark, compute)
    lines = []
    p99 = {}
    for wifi, result in results.items():
        delays = result.ooo_delays
        p99[wifi] = percentile(delays, 99)
        lines.append(f"-- {wifi}-8.6 Mbps (n={len(delays)}) --")
        lines.append("delay_s  P[X>x]")
        points = ccdf(delays)
        for x, p in points[:: max(1, len(points) // 25)]:
            lines.append(f"{x:7.3f}  {p:6.4f}")
        lines.append(f"p99={p99[wifi]:.3f}s\n")
    write_output("fig13_ooo_default", "\n".join(lines))

    # Shape: tail out-of-order delay decreases as heterogeneity shrinks.
    assert p99[0.3] > p99[4.2]
    assert p99[4.2] < 0.5
