"""Ablation: congestion controller choice.

Section 3.1: "we observe similar performance degradation regardless of
the congestion controller used (e.g., Olia)".  We run the flagship
heterogeneous cell under coupled/LIA, OLIA, and uncoupled Reno, for both
the default scheduler and ECF, and check the pattern (ECF >= default)
holds for every controller.
"""

from bench_common import BENCH_LONG_VIDEO_SECONDS, run_once, write_output
from repro.experiments.runner import StreamingRunConfig, run_streaming

CONTROLLERS = ("coupled", "olia", "reno")


def test_ablation_congestion_control(benchmark):
    def compute():
        out = {}
        for cc in CONTROLLERS:
            for scheduler in ("minrtt", "ecf"):
                result = run_streaming(StreamingRunConfig(
                    scheduler=scheduler, congestion_control=cc,
                    wifi_mbps=0.3, lte_mbps=8.6,
                    video_duration=BENCH_LONG_VIDEO_SECONDS,
                ))
                out[(cc, scheduler)] = result.metrics.steady_average_bitrate_bps
        return out

    rates = run_once(benchmark, compute)
    lines = ["cc       default_Mbps  ecf_Mbps"]
    for cc in CONTROLLERS:
        lines.append(
            f"{cc:7s}  {rates[(cc, 'minrtt')] / 1e6:12.2f}  "
            f"{rates[(cc, 'ecf')] / 1e6:8.2f}"
        )
    write_output("ablation_congestion_control", "\n".join(lines))

    # The heterogeneity gap and ECF's answer are controller-independent.
    for cc in CONTROLLERS:
        assert rates[(cc, "ecf")] >= rates[(cc, "minrtt")] * 0.95
