"""Figure 19: ECF completion time normalized by the default's, over a
WiFi x LTE in {1..10} Mbps grid, per object size.

Paper shape: ratio ~1 for small transfers (128 kB), at-or-below 1 for
256 kB+ with the gains concentrated in heterogeneous cells; never
meaningfully above 1 ("if ECF ever did worse ... that does not happen").
"""

from bench_common import bench_executor, run_once, write_output
from repro.experiments.grid import wget_matrix

SIZES = (256 * 1024, 1024 * 1024)
GRID = (1, 2, 4, 6, 8, 10)


def test_fig19_ecf_over_default_ratio(benchmark):
    def compute():
        values = tuple(float(v) for v in GRID)
        matrix = wget_matrix(
            ("minrtt", "ecf"), SIZES, values, values, seed=2,
            executor=bench_executor(),
        )
        return {
            (size, int(wifi), int(lte)): (
                matrix[(size, wifi, lte, "ecf")].completion_time
                / matrix[(size, wifi, lte, "minrtt")].completion_time
            )
            for size in SIZES
            for wifi in values
            for lte in values
        }

    ratios = run_once(benchmark, compute)
    lines = []
    for size in SIZES:
        lines.append(f"-- {size // 1024} kB: ECF time / default time --")
        header = "lte\\wifi " + " ".join(f"{w:6d}" for w in GRID)
        lines.append(header)
        for lte in reversed(GRID):
            row = [f"{lte:8d}"]
            for wifi in GRID:
                row.append(f"{ratios[(size, wifi, lte)]:6.2f}")
            lines.append(" ".join(row))
        lines.append("")
    write_output("fig19_wget_ratio", "\n".join(lines))

    values = list(ratios.values())
    # Shape: ECF never does meaningfully worse anywhere...
    assert max(values) < 1.25
    # ...and the mean ratio is at or below parity.
    assert sum(values) / len(values) <= 1.02
