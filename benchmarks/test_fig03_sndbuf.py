"""Figure 3: per-subflow send-buffer occupancy, 0.3 Mbps WiFi / 8.6 LTE.

Paper shape: the fast (LTE) subflow's buffer fills and drains quickly in
bursts while the slow (WiFi) subflow holds a sizeable backlog that drains
slowly -- the slow path is still transmitting while the fast path idles.
"""

from bench_common import hetero_run, run_once, write_output


def test_fig03_send_buffer_occupancy(benchmark):
    result = run_once(
        benchmark,
        lambda: hetero_run("minrtt", wifi=0.3, lte=8.6, record_traces=True),
    )
    wifi = result.trace.series("sndbuf.wifi0")
    lte = result.trace.series("sndbuf.lte1")
    lines = ["time_s  wifi_kB  lte_kB"]
    for (t, w), (_, l) in list(zip(wifi, lte))[:400]:
        lines.append(f"{t:7.2f}  {w / 1e3:7.2f}  {l / 1e3:7.2f}")
    write_output("fig03_sndbuf", "\n".join(lines))

    wifi_values = [v for _, v in wifi]
    lte_values = [v for _, v in lte]
    # The fast subflow empties completely between bursts...
    assert min(lte_values) == 0.0
    assert max(lte_values) > 0.0
    # ...while the slow subflow carries a persistent multi-segment backlog.
    busy_wifi = [v for v in wifi_values if v > 0]
    assert busy_wifi, "WiFi never carried data"
    assert max(busy_wifi) > 10_000  # >= ~7 segments queued at its peak
