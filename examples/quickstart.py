#!/usr/bin/env python3
"""Quickstart: transfer a file over MPTCP with different path schedulers.

Builds the paper's flagship heterogeneous configuration -- a 0.3 Mbps WiFi
path (the Android primary) and an 8.6 Mbps LTE path -- and downloads the
same 2 MB object under each scheduler, printing completion time and how
the bytes were split across paths.

Run:
    python examples/quickstart.py
"""

from repro import SCHEDULER_NAMES
from repro.apps.bulk import run_bulk_download
from repro.net.profiles import lte_config, wifi_config

OBJECT_SIZE = 2 * 1024 * 1024
PATHS = (wifi_config(0.3), lte_config(8.6))


def main() -> None:
    print(f"Downloading {OBJECT_SIZE // 1024} kB over 0.3 Mbps WiFi + 8.6 Mbps LTE\n")
    print(f"{'scheduler':<12}{'time (s)':>9}{'wifi kB':>10}{'lte kB':>9}{'reinject':>10}")
    for name in SCHEDULER_NAMES:
        result = run_bulk_download(name, PATHS, OBJECT_SIZE, seed=1)
        wifi_kb = result.payload_by_path.get("wifi", 0) / 1024
        lte_kb = result.payload_by_path.get("lte", 0) / 1024
        print(
            f"{name:<12}{result.completion_time:>9.2f}{wifi_kb:>10.0f}"
            f"{lte_kb:>9.0f}{result.reinjections:>10d}"
        )
    print(
        "\nNote how RTT-agnostic schedulers leave more bytes stranded on the"
        "\nslow WiFi path, and how ECF keeps the transfer on the fast path"
        "\nwhenever waiting for it finishes sooner."
    )


if __name__ == "__main__":
    main()
