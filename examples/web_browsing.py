#!/usr/bin/env python3
"""Full Web-page load over MPTCP (Section 5.5 workload).

Loads a synthetic 107-object CNN-like page over six persistent MPTCP
connections (the paper's browser model) under each scheduler and prints
the per-object completion-time distribution plus out-of-order delays.

Run:
    python examples/web_browsing.py [wifi_mbps] [lte_mbps]
"""

import sys

from repro.metrics.stats import percentile
from repro.net.profiles import lte_config, wifi_config
from repro.workloads.web import cnn_like_page, run_web_browsing

SCHEDULERS = ("minrtt", "ecf", "blest", "daps")


def main() -> None:
    wifi = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    lte = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0
    page = cnn_like_page()
    print(
        f"Loading a {len(page)}-object page ({page.total_bytes / 1e6:.1f} MB) "
        f"over {wifi} Mbps WiFi + {lte} Mbps LTE, 6 connections\n"
    )
    print(
        f"{'scheduler':<10}{'mean ct':>9}{'p95 ct':>8}{'p99 ct':>8}"
        f"{'page load':>11}{'ooo p99':>9}"
    )
    for name in SCHEDULERS:
        result = run_web_browsing(
            name, (wifi_config(wifi), lte_config(lte)), page=page, seed=7
        )
        cts = result.object_completion_times
        ooo = result.ooo_delays
        print(
            f"{name:<10}{result.mean_completion_time:>8.2f}s"
            f"{percentile(cts, 95):>7.2f}s{percentile(cts, 99):>7.2f}s"
            f"{result.page_load_time:>10.2f}s"
            f"{percentile(ooo, 99) if ooo else 0:>8.2f}s"
        )
    print(
        "\nPersistent connections idle between objects, so the fast path's"
        "\nwindow keeps collapsing under the default scheduler; ECF avoids"
        "\nqueueing object tails behind the slow path."
    )


if __name__ == "__main__":
    main()
