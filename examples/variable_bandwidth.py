#!/usr/bin/env python3
"""Streaming under random bandwidth changes (Section 5.3).

Generates the paper's random scenarios -- WiFi and LTE rates redrawn from
{0.3, 1.1, 1.7, 4.2, 8.6} Mbps at exponential intervals (mean 40 s) --
and streams the same scenario under the default, BLEST, and ECF
schedulers.

Run:
    python examples/variable_bandwidth.py [num_scenarios]
"""

import sys

from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.workloads.scenarios import random_bandwidth_scenarios

SCHEDULERS = ("minrtt", "blest", "ecf")
VIDEO = 160.0


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    scenarios = random_bandwidth_scenarios(count=count, duration=VIDEO * 2)
    print(
        f"Streaming {VIDEO:.0f} s of video through {count} random "
        f"bandwidth scenarios (mean change interval 40 s)\n"
    )
    print(f"{'scenario':<10}" + "".join(f"{name:>12}" for name in SCHEDULERS))
    means = {name: 0.0 for name in SCHEDULERS}
    for scenario in scenarios:
        row = [f"{scenario.index:<10}"]
        for name in SCHEDULERS:
            result = run_streaming(StreamingRunConfig(
                scheduler=name,
                wifi_mbps=scenario.wifi.rate_at(0.0) / 1e6,
                lte_mbps=scenario.lte.rate_at(0.0) / 1e6,
                video_duration=VIDEO,
                wifi_process=scenario.wifi,
                lte_process=scenario.lte,
                seed=scenario.index,
            ))
            thp = result.metrics.steady_average_throughput_bps / 1e6
            means[name] += thp / count
            row.append(f"{thp:>10.2f}Mb")
        print("".join(row))
    print("\nmeans:    " + "".join(f"{means[name]:>10.2f}Mb" for name in SCHEDULERS))
    print(
        "\nECF's gain in a scenario tracks how often that scenario's random"
        "\ndraws leave the two paths heterogeneous."
    )


if __name__ == "__main__":
    main()
