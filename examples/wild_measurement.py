#!/usr/bin/env python3
"""Emulated in-the-wild measurement study (Section 6).

Draws nine streaming runs with wild path profiles -- a public-WiFi path
whose RTT varies from tens of milliseconds to nearly a second across
runs, and a stable ~70 ms LTE path -- then compares default vs ECF, as
the paper does against its Washington D.C. server.

Run:
    python examples/wild_measurement.py
"""

from repro.experiments.wild import run_wild_streaming, run_wild_web
from repro.metrics.stats import mean


def main() -> None:
    print("Streaming in the wild (9 runs, sorted by WiFi RTT)\n")
    print(f"{'run':<5}{'wifi rtt':>10}{'lte rtt':>9}{'default':>10}{'ecf':>8}")
    runs = run_wild_streaming(runs=9, video_duration=60.0)
    default_thps, ecf_thps = [], []
    for run in runs:
        default_thps.append(run.throughput_mbps("minrtt"))
        ecf_thps.append(run.throughput_mbps("ecf"))
        print(
            f"{run.run_index:<5}"
            f"{run.wifi_config.one_way_delay * 2000:>8.0f}ms"
            f"{run.lte_config.one_way_delay * 2000:>7.0f}ms"
            f"{default_thps[-1]:>9.2f}M{ecf_thps[-1]:>7.2f}M"
        )
    gain = (mean(ecf_thps) / mean(default_thps) - 1) * 100
    print(f"\nmean throughput gain: {gain:+.1f}%  (paper reports +16%)")

    print("\nWeb browsing in the wild (8 page loads)\n")
    web = run_wild_web(runs=8)
    for name, label in (("minrtt", "default"), ("ecf", "ecf")):
        cts = [t for r in web[name] for t in r.object_completion_times]
        ooo = [d for r in web[name] for d in r.ooo_delays]
        print(
            f"{label:<8} object completion {mean(cts):6.3f} s   "
            f"ooo delay {mean(ooo):6.3f} s"
        )


if __name__ == "__main__":
    main()
