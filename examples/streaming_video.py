#!/usr/bin/env python3
"""Adaptive video streaming over heterogeneous paths (the paper's core
scenario).

Streams a 2-minute DASH video (six representations, Table 1 bit rates,
5-second chunks) through each scheduler at a strongly heterogeneous
bandwidth pair and reports the metrics of Section 5.2: average selected
bit rate vs the ideal, fast-subflow traffic share, initial-window resets,
and the out-of-order delay tail.

Run:
    python examples/streaming_video.py [wifi_mbps] [lte_mbps]
"""

import sys

from repro.apps.dash.media import VideoManifest
from repro.experiments.ideal import ideal_average_bitrate
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.metrics.stats import percentile

SCHEDULERS = ("minrtt", "ecf", "blest", "daps")


def main() -> None:
    wifi = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    lte = float(sys.argv[2]) if len(sys.argv) > 2 else 8.6
    ideal = ideal_average_bitrate([wifi * 1e6, lte * 1e6], VideoManifest())
    print(
        f"Streaming 120 s of video over {wifi} Mbps WiFi + {lte} Mbps LTE "
        f"(ideal bit rate {ideal / 1e6:.2f} Mbps)\n"
    )
    header = (
        f"{'scheduler':<10}{'bitrate':>9}{'ratio':>7}{'fast%':>7}"
        f"{'IW resets':>11}{'ooo p99 (s)':>13}{'rebuf (s)':>11}"
    )
    print(header)
    for name in SCHEDULERS:
        result = run_streaming(StreamingRunConfig(
            scheduler=name, wifi_mbps=wifi, lte_mbps=lte, video_duration=120.0,
        ))
        bitrate = result.metrics.steady_average_bitrate_bps
        ooo_p99 = percentile(result.ooo_delays, 99) if result.ooo_delays else 0.0
        print(
            f"{name:<10}{bitrate / 1e6:>8.2f}M{bitrate / ideal:>7.2f}"
            f"{result.fraction_fast * 100:>6.0f}%"
            f"{sum(result.iw_resets_by_interface.values()):>11d}"
            f"{ooo_p99:>13.3f}{result.metrics.rebuffer_time:>11.1f}"
        )
    print(
        "\nECF keeps the fast subflow hot (few IW resets), so the ABR can"
        "\nhold a bit rate close to the ideal aggregate bandwidth."
    )


if __name__ == "__main__":
    main()
