#!/usr/bin/env python3
"""Tutorial: writing your own MPTCP path scheduler.

The scheduler API is one method: ``select(conn)`` returns the subflow
that should carry the next segment, or ``None`` to wait for a better one.
This example implements a "deadline-aware" toy scheduler -- use the slow
path only while the backlog is large enough to keep the fast path busy
for more than one RTT -- and benchmarks it against the built-ins on the
paper's flagship heterogeneous configuration.

Run:
    python examples/custom_scheduler.py
"""

from repro.apps.bulk import run_bulk_download
from repro.core.base import Scheduler
from repro.core.registry import _FACTORIES  # registration hook
from repro.net.profiles import lte_config, wifi_config


class BacklogAwareScheduler(Scheduler):
    """Toy scheduler: the slow path is for bulk only.

    Uses the fastest open subflow whenever possible; a slower subflow is
    used only while the unscheduled backlog exceeds ``backlog_rtts``
    round-trips of the fastest subflow's capacity.  (ECF makes a sharper
    version of the same call by estimating both completion times.)
    """

    name = "backlog"

    def __init__(self, backlog_rtts: float = 2.0) -> None:
        super().__init__()
        self.backlog_rtts = backlog_rtts

    def select(self, conn):
        self.decisions += 1
        established = self.established_subflows(conn)
        fastest = self.fastest(established)
        if fastest is None:
            self.waits += 1
            return None
        if fastest.can_send():
            return fastest
        candidates = [sf for sf in established if sf is not fastest and sf.can_send()]
        second = self.fastest(candidates)
        if second is None:
            self.waits += 1
            return None
        backlog_segments = conn.unassigned_bytes / conn.mss
        keep_fast_busy = self.backlog_rtts * max(fastest.cwnd, 1.0)
        if backlog_segments > keep_fast_busy:
            return second
        self.waits += 1
        return None


def main() -> None:
    # Register so run_bulk_download can construct it by name.
    _FACTORIES["backlog"] = BacklogAwareScheduler

    paths = (wifi_config(0.3), lte_config(8.6))
    size = 2 * 1024 * 1024
    print(f"2 MB download over 0.3 Mbps WiFi + 8.6 Mbps LTE\n")
    print(f"{'scheduler':<12}{'time (s)':>9}")
    for name in ("minrtt", "ecf", "backlog"):
        result = run_bulk_download(name, paths, size, seed=3)
        print(f"{name:<12}{result.completion_time:>9.2f}")
    print(
        "\nOn a single bulk download an aggressive backlog threshold can"
        "\nbeat even ECF by refusing the slow path sooner -- but it buys"
        "\nthat with idle fast-path time whenever the backlog estimate is"
        "\nwrong.  Run the streaming and web benchmarks to see the toy"
        "\nheuristic fall behind where completion-time modelling matters."
    )


if __name__ == "__main__":
    main()
