"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError


class TestScheduling:
    def test_schedule_runs_callback_at_time(self, sim):
        fired = []
        sim.schedule(1.5, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert sim.now == 2.0

    def test_zero_delay_is_allowed(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_run_in_schedule_order(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_callback_args_passed_through(self, sim):
        got = []
        sim.schedule(0.1, lambda a, b: got.append((a, b)), "x", 42)
        sim.run()
        assert got == [("x", 42)]

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def outer():
            sim.schedule(1.0, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["inner"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_stops_clock_at_until(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_includes_events_at_boundary(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, 1)
        sim.run(until=2.0)
        assert fired == [1]

    def test_run_until_advances_clock_when_queue_drains(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_returns_executed_count(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(until=3.0) == 3

    def test_max_events_limits_execution(self, sim):
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending_events == 6

    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_run_is_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_processed_accumulates(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestTimers:
    def test_cancelled_timer_does_not_fire(self, sim):
        fired = []
        timer = sim.schedule(1.0, fired.append, 1)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()

    def test_cancel_after_firing_is_noop(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        timer.cancel()

    def test_active_reflects_cancellation(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        timer.cancel()
        assert not timer.active

    def test_peek_time_skips_cancelled(self, sim):
        t1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        t1.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty_queue(self, sim):
        assert sim.peek_time() is None

    def test_pending_events_excludes_cancelled(self, sim):
        t1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        t1.cancel()
        assert sim.pending_events == 1

    def test_cancelled_timer_drops_references(self, sim):
        big = ["payload"] * 1000
        timer = sim.schedule(1.0, lambda x: None, big)
        timer.cancel()
        assert timer.args == ()
