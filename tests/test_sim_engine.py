"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError


class TestScheduling:
    def test_schedule_runs_callback_at_time(self, sim):
        fired = []
        sim.schedule(1.5, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert sim.now == 2.0

    def test_zero_delay_is_allowed(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_run_in_schedule_order(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_callback_args_passed_through(self, sim):
        got = []
        sim.schedule(0.1, lambda a, b: got.append((a, b)), "x", 42)
        sim.run()
        assert got == [("x", 42)]

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def outer():
            sim.schedule(1.0, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["inner"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_stops_clock_at_until(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_includes_events_at_boundary(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, 1)
        sim.run(until=2.0)
        assert fired == [1]

    def test_run_until_advances_clock_when_queue_drains(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_returns_executed_count(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(until=3.0) == 3

    def test_max_events_limits_execution(self, sim):
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending_events == 6

    def test_budget_stop_does_not_fast_forward_past_pending(self, sim):
        # Regression: with events still pending at t <= until, a
        # max_events stop must leave the clock at the last dispatched
        # event, or the backlog would sit in the past.
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(until=10.0, max_events=2) == 2
        assert sim.now == 2.0
        # Continuing is legal: nothing is scheduled in the past.
        sim.schedule_at(2.5, lambda: None)
        assert sim.run(until=10.0) == 4
        assert sim.now == 10.0

    def test_budget_stop_still_advances_when_rest_is_later(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        assert sim.run(until=10.0, max_events=1) == 1
        assert sim.now == 10.0

    def test_budget_stop_resume_is_monotonic_under_sanitizer(self, sim):
        from repro.analysis import sanitize

        for i in range(6):
            sim.schedule(float(i + 1), lambda: None)
        sanitize.enable()
        try:
            sim.run(until=10.0, max_events=3)
            sim.run(until=10.0)
        finally:
            sanitize.disable()
        assert sim.now == 10.0

    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_run_is_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_processed_accumulates(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestTimers:
    def test_cancelled_timer_does_not_fire(self, sim):
        fired = []
        timer = sim.schedule(1.0, fired.append, 1)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()

    def test_cancel_after_firing_is_noop(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        timer.cancel()

    def test_active_reflects_cancellation(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        timer.cancel()
        assert not timer.active

    def test_peek_time_skips_cancelled(self, sim):
        t1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        t1.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty_queue(self, sim):
        assert sim.peek_time() is None

    def test_pending_events_excludes_cancelled(self, sim):
        t1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        t1.cancel()
        assert sim.pending_events == 1

    def test_cancelled_timer_drops_references(self, sim):
        big = ["payload"] * 1000
        timer = sim.schedule(1.0, lambda x: None, big)
        timer.cancel()
        assert timer.args == ()

    def test_active_false_after_firing(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        assert not timer.active

    def test_cancel_after_firing_does_not_count_as_cancellation(self, sim):
        """A fired timer is spent; a late cancel() must not touch the
        cancellation counters (it would make the heap bookkeeping drift)."""
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        timer.cancel()
        timer.cancel()
        assert sim.timers_cancelled == 0
        assert sim.cancelled_pending == 0

    def test_active_false_while_callback_runs(self, sim):
        seen = []
        timer = sim.schedule(1.0, lambda: seen.append(timer.active))
        sim.run()
        assert seen == [False]


class TestCancellationAccounting:
    def test_stale_pops_counted(self, sim):
        timers = [sim.schedule(1.0 + i, lambda: None) for i in range(5)]
        for timer in timers[:3]:
            timer.cancel()
        executed = sim.run()
        assert executed == 2
        assert sim.stale_pops == 3
        assert sim.cancelled_pending == 0

    def test_peek_time_accounts_stale_entries(self, sim):
        t1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        t1.cancel()
        assert sim.cancelled_pending == 1
        assert sim.peek_time() == 2.0
        # peek dropped the dead entry from the heap and said so.
        assert sim.stale_pops == 1
        assert sim.cancelled_pending == 0

    def test_timers_scheduled_and_cancelled_counters(self, sim):
        timers = [sim.schedule(1.0 + i, lambda: None) for i in range(4)]
        timers[0].cancel()
        timers[0].cancel()  # idempotent: counted once
        assert sim.timers_scheduled == 4
        assert sim.timers_cancelled == 1


class TestHeapCompaction:
    def test_compaction_triggers_when_mostly_cancelled(self, sim):
        timers = [sim.schedule(1.0 + i, lambda: None) for i in range(600)]
        for timer in timers[:400]:
            timer.cancel()
        assert sim.heap_compactions >= 1
        # Cancels after the compaction re-accumulate, but stay under the
        # trigger threshold; live entries are never dropped.
        assert sim.cancelled_pending < 256
        assert sim.pending_events == 200

    def test_compaction_preserves_execution_order(self, sim):
        fired = []
        timers = []
        # Interleave survivors and victims so compaction has to rebuild a
        # heap whose live entries are scattered.
        for i in range(600):
            timers.append(sim.schedule(1.0 + i * 0.001, fired.append, i))
        victims = [t for i, t in enumerate(timers) if i % 3 != 0]
        for timer in victims:
            timer.cancel()
        assert sim.heap_compactions >= 1
        sim.run()
        survivors = [i for i in range(600) if i % 3 == 0]
        assert fired == survivors

    def test_no_compaction_below_threshold(self, sim):
        timers = [sim.schedule(1.0 + i, lambda: None) for i in range(20)]
        for timer in timers[:10]:
            timer.cancel()
        assert sim.heap_compactions == 0
        assert sim.cancelled_pending == 10

    def test_cancel_inside_callback_keeps_counters_consistent(self, sim):
        """Cancellations from inside run() (the retransmit-timer pattern)
        must leave every counter self-consistent when the run ends."""
        timers = [sim.schedule(10.0 + i, lambda: None) for i in range(580)]

        def cancel_many():
            for timer in timers[:400]:
                timer.cancel()

        sim.schedule(1.0, cancel_many)
        executed = sim.run()
        assert executed == 1 + 180
        assert sim.timers_cancelled == 400
        assert sim.cancelled_pending == 0
        assert sim.stale_pops + 400 - sim.timers_cancelled <= 400
        assert sim.pending_events == 0
