"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.link import Link
from repro.net.path import Path
from repro.net.profiles import lte_config, make_path, wifi_config
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def build_path(
    sim: Simulator,
    rate_mbps: float = 10.0,
    one_way_delay: float = 0.01,
    queue_bytes: int = 300_000,
    name: str = "path",
) -> Path:
    """A simple symmetric path for unit tests."""
    forward = Link(sim, rate_mbps * 1e6, one_way_delay, queue_bytes, name=f"{name}-fwd")
    reverse = Link(sim, rate_mbps * 1e6, one_way_delay, queue_bytes, name=f"{name}-rev")
    return Path(name, forward, reverse)


def build_connection(
    sim: Simulator,
    scheduler_name: str = "minrtt",
    path_specs=((10.0, 0.01), (10.0, 0.05)),
    handshake_delays: bool = False,
    **config_kwargs,
) -> MptcpConnection:
    """An MPTCP connection over simple paths; handshakes off by default."""
    paths = [
        build_path(sim, rate_mbps=rate, one_way_delay=delay, name=f"p{i}")
        for i, (rate, delay) in enumerate(path_specs)
    ]
    config = ConnectionConfig(handshake_delays=handshake_delays, **config_kwargs)
    scheduler = make_scheduler(scheduler_name)
    return MptcpConnection(sim, paths, scheduler, config=config)


def drain(sim: Simulator, limit: float = 300.0) -> None:
    """Run the simulation to completion (bounded)."""
    sim.run(until=limit)


@pytest.fixture
def testbed_paths(sim):
    """The paper's testbed profile pair at moderate heterogeneity."""
    return [make_path(sim, wifi_config(1.0)), make_path(sim, lte_config(8.6))]
