"""Tests for the trace-level checking layer (repro.analysis).

Covers the event log, the temporal property catalog, the Algorithm 1
reference oracle, the seeded-violation fixture schedulers, the
event-order race detector, and the ``repro check`` CLI.
"""

from __future__ import annotations

import pytest

from repro.analysis import check, events
from repro.analysis.fixtures import FIXTURE_SCHEDULERS, NoWaitEcfScheduler
from repro.analysis.races import race_check
from repro.analysis.reference import EcfReference, replay_ecf, replay_minrtt
from repro.apps.bulk import BulkDownloadSpec, run_bulk
from repro.cli import main as cli_main
from repro.core.ecf import EcfScheduler
from repro.core.registry import SCHEDULER_NAMES, make_scheduler
from repro.net.profiles import lte_config, wifi_config
from repro.sim.engine import SimulationError, Simulator, forced_tie_break
from tests.conftest import build_connection


def bulk_spec(scheduler: str, size: int = 128_000, seed: int = 7) -> BulkDownloadSpec:
    return BulkDownloadSpec(
        scheduler=scheduler,
        path_configs=(wifi_config(8.6), lte_config(8.6)),
        size=size,
        seed=seed,
    )


def ecf_decision(**kw) -> events.EcfDecision:
    """A self-consistent "wait" decision; override fields to break it.

    Defaults satisfy both inequalities (k = 1 segment, fast RTT 10 ms,
    slow RTT 100 ms): n=2, 2 * 0.01 < 0.1 and 1 * 0.1 >= 0.02.
    """
    base = dict(
        t=1.0, sched_uid=1, decision="wait", fastest_uid=11, fastest_sf=0,
        second_uid=12, second_sf=1, k_segments=1.0, cwnd_f=10.0, cwnd_s=10.0,
        rtt_f=0.01, rtt_s=0.1, delta=0.0, beta=0.25, use_second_inequality=True,
        waiting_before=False, waiting_after=True, n_rounds=2.0, threshold=0.1,
    )
    base.update(kw)
    return events.EcfDecision(**base)


def props(*names):
    """Catalog subset by name, to exercise one property in isolation."""
    selected = [p for p in check.CATALOG if p.name in names]
    assert len(selected) == len(names)
    return selected


class TestEventLog:
    def test_emit_and_of_kind(self):
        log = events.EventLog()
        log.emit(events.Delivered(t=0.0, recv_uid=1, dsn=0, payload=10, delay=0.1))
        log.emit(ecf_decision())
        assert len(log) == 2
        assert len(log.of_kind(events.Delivered)) == 1
        assert len(log.of_kind(events.EcfDecision)) == 1
        assert log.of_kind(events.RtoFired) == []
        assert [e.kind for e in log] == ["Delivered", "EcfDecision"]

    def test_capacity_drops_oldest_and_counts(self):
        log = events.EventLog(capacity=2)
        for dsn in (0, 10, 20):
            log.emit(events.Delivered(t=0.0, recv_uid=1, dsn=dsn, payload=10, delay=0.0))
        assert len(log) == 2
        assert log.dropped == 1
        assert [e.dsn for e in log.of_kind(events.Delivered)] == [10, 20]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            events.EventLog(capacity=0)

    def test_to_dict_includes_kind(self):
        data = ecf_decision().to_dict()
        assert data["kind"] == "EcfDecision"
        assert data["decision"] == "wait"
        assert data["rtt_s"] == 0.1

    def test_start_stop_active(self):
        previous = events.stop()  # detach whatever the suite left active
        try:
            assert not events.active()
            log = events.start()
            assert events.active()
            assert events.LOG is log
            assert events.stop() is log
            assert not events.active()
        finally:
            events.LOG = previous

    def test_recording_restores_previous_log(self):
        outer = events.EventLog()
        previous, events.LOG = events.LOG, outer
        try:
            with events.recording() as inner:
                assert events.LOG is inner
                assert inner is not outer
            assert events.LOG is outer
        finally:
            events.LOG = previous

    def test_recording_restores_on_exception(self):
        previous = events.LOG
        with pytest.raises(RuntimeError):
            with events.recording():
                raise RuntimeError("boom")
        assert events.LOG is previous


class TestInstrumentation:
    """A real run populates the log with every core record type."""

    def test_bulk_run_emits_core_kinds(self):
        with events.recording() as log:
            result = run_bulk(bulk_spec("ecf"))
        assert result.completion_time > 0
        assert log.of_kind(events.SegmentSent)
        assert log.of_kind(events.AckProcessed)
        assert log.of_kind(events.Delivered)
        assert log.of_kind(events.EcfDecision)

    def test_minrtt_run_emits_decisions(self):
        with events.recording() as log:
            run_bulk(bulk_spec("minrtt"))
        decisions = log.of_kind(events.MinRttDecision)
        assert decisions
        # "no pick" decisions (all windows full) are legal; real picks must
        # appear too, and each must come from the logged candidate set.
        picks = [d for d in decisions if d.chosen_sf is not None]
        assert picks
        assert all(
            d.chosen_sf in {sf for sf, _ in d.available} for d in picks
        )

    def test_no_log_no_records(self):
        previous = events.stop()
        try:
            run_bulk(bulk_spec("ecf"))  # must not blow up with LOG=None
        finally:
            events.LOG = previous

    def test_uids_disambiguate_subflows(self, sim):
        with events.recording() as log:
            conn = build_connection(sim, scheduler_name="minrtt")
            conn.write(100_000)
            sim.run(until=60.0)
        sent = log.of_kind(events.SegmentSent)
        by_uid = {s.sf_uid for s in sent}
        by_id = {s.sf_id for s in sent}
        assert len(by_uid) == len(by_id) == 2


class TestReferenceModel:
    def test_reference_waits_when_both_inequalities_hold(self):
        model = EcfReference(beta=0.25)
        decision = model.decide(
            k_segments=1.0, rtt_f=0.01, rtt_s=0.1, cwnd_f=10.0, cwnd_s=10.0, delta=0.0
        )
        assert decision == "wait"
        assert model.waiting

    def test_reference_sends_slow_when_first_inequality_fails(self):
        model = EcfReference(beta=0.25)
        model.waiting = True
        decision = model.decide(
            k_segments=5000.0, rtt_f=0.01, rtt_s=0.1,
            cwnd_f=10.0, cwnd_s=10.0, delta=0.0,
        )
        assert decision == "slow"
        assert not model.waiting  # inequality 1 failing clears hysteresis

    def test_reference_second_inequality_releases_wait(self):
        # ineq 1 holds, ineq 2 fails: slow send, waiting untouched.
        model = EcfReference(beta=0.25)
        decision = model.decide(
            k_segments=1.0, rtt_f=0.02, rtt_s=0.03, cwnd_f=10.0, cwnd_s=10.0,
            delta=0.015,
        )
        assert decision == "slow"
        assert not model.waiting

    def test_replay_clean_stream_no_divergence(self):
        assert replay_ecf([ecf_decision(), ecf_decision(
            t=2.0, waiting_before=True, waiting_after=True,
            threshold=1.25 * 0.1,
        )]) == []

    def test_replay_flags_wrong_decision(self):
        divergences = replay_ecf([ecf_decision(decision="slow", waiting_after=False)])
        assert len(divergences) == 1
        assert divergences[0].expected == "wait"
        assert divergences[0].actual == "slow"

    def test_replay_resyncs_after_divergence(self):
        # One bad decision must yield one report, not cascade into the
        # next (consistent-given-its-state) decision.
        stream = [
            ecf_decision(decision="slow", waiting_after=False),
            ecf_decision(t=2.0, waiting_before=False, waiting_after=True),
        ]
        assert len(replay_ecf(stream)) == 1

    def test_replay_flags_hysteresis_drift(self):
        # First decision latches waiting=True; the second claims the flag
        # was False without any intervening Algorithm 1 transition.
        stream = [
            ecf_decision(),
            ecf_decision(
                t=2.0, k_segments=5000.0, n_rounds=501.0, decision="slow",
                waiting_before=False, waiting_after=False,
            ),
        ]
        divergences = replay_ecf(stream)
        assert len(divergences) == 1
        assert "drifted" in divergences[0].detail

    def test_replay_rejects_mixed_schedulers(self):
        with pytest.raises(ValueError, match="one scheduler"):
            replay_ecf([ecf_decision(sched_uid=1), ecf_decision(sched_uid=2)])

    def test_minrtt_replay_flags_wrong_pick(self):
        bad = events.MinRttDecision(
            t=1.0, sched_uid=1, chosen_sf=1, available=((1, 0.05), (2, 0.01))
        )
        divergences = replay_minrtt([bad])
        assert len(divergences) == 1
        assert divergences[0].expected == "sf=2"

    def test_minrtt_replay_accepts_lowest_id_tie_break(self):
        tie = events.MinRttDecision(
            t=1.0, sched_uid=1, chosen_sf=1, available=((1, 0.01), (2, 0.01))
        )
        empty = events.MinRttDecision(t=2.0, sched_uid=1, chosen_sf=None, available=())
        assert replay_minrtt([tie, empty]) == []


class TestPropertyCatalog:
    def test_clean_synthetic_log_passes(self):
        log = events.EventLog()
        log.emit(ecf_decision())
        log.emit(events.Delivered(t=1.0, recv_uid=1, dsn=0, payload=1000, delay=0.1))
        log.emit(events.Delivered(t=2.0, recv_uid=1, dsn=1000, payload=500, delay=0.1))
        report = check.check_log(log)
        assert report.ok
        assert report.events_seen == 3
        assert report.properties_checked == [p.name for p in check.CATALOG]

    def test_slow_send_during_mandated_wait(self):
        log = events.EventLog()
        log.emit(ecf_decision(decision="slow", waiting_after=False))
        report = check.check_log(log, props("ecf-wait-respects-inequality-1"))
        assert [v.prop for v in report.violations] == ["ecf-wait-respects-inequality-1"]

    def test_slow_send_released_by_inequality_2_is_legal(self):
        # ineq 1 holds but ineq 2 fails: rounds_s * rtt_s < 2 rtt_f + delta.
        log = events.EventLog()
        log.emit(ecf_decision(
            decision="slow", waiting_after=False,
            rtt_f=0.02, rtt_s=0.03, delta=0.015, threshold=0.045, n_rounds=2.0,
        ))
        report = check.check_log(log, props("ecf-wait-respects-inequality-1"))
        assert report.ok

    def test_beta_applied_without_waiting_flag(self):
        log = events.EventLog()
        log.emit(ecf_decision(threshold=1.25 * 0.1))  # waiting_before=False
        report = check.check_log(log, props("ecf-beta-only-when-waiting"))
        assert len(report.violations) == 1

    def test_beta_dropped_with_waiting_flag(self):
        log = events.EventLog()
        log.emit(ecf_decision(waiting_before=True, threshold=0.1))
        report = check.check_log(log, props("ecf-beta-only-when-waiting"))
        assert len(report.violations) == 1

    def test_cwnd_growth_inside_recovery(self):
        log = events.EventLog()
        for t, cwnd in ((1.0, 5.0), (1.1, 6.0)):
            log.emit(events.AckProcessed(
                t=t, sf_uid=1, sf_id=0, seq=int(t * 10), rtt_sampled=True,
                cwnd=cwnd, in_recovery=True, backoff=1.0,
            ))
        report = check.check_log(log, props("no-cwnd-growth-in-recovery"))
        assert len(report.violations) == 1
        assert "grew" in report.violations[0].message

    def test_cwnd_growth_after_recovery_exit_is_legal(self):
        log = events.EventLog()
        log.emit(events.AckProcessed(
            t=1.0, sf_uid=1, sf_id=0, seq=1, rtt_sampled=True,
            cwnd=5.0, in_recovery=True, backoff=1.0,
        ))
        log.emit(events.AckProcessed(
            t=1.1, sf_uid=1, sf_id=0, seq=2, rtt_sampled=True,
            cwnd=6.0, in_recovery=False, backoff=1.0,
        ))
        report = check.check_log(log, props("no-cwnd-growth-in-recovery"))
        assert report.ok

    def test_rto_backoff_must_double(self):
        log = events.EventLog()
        log.emit(events.RtoFired(
            t=1.0, sf_uid=1, sf_id=0, backoff_before=2.0, backoff_after=3.0,
            rto=1.0, outstanding=4,
        ))
        report = check.check_log(log, props("rto-backoff-doubles"))
        assert len(report.violations) == 1

    def test_rto_backoff_cap_is_legal(self):
        log = events.EventLog()
        log.emit(events.RtoFired(
            t=1.0, sf_uid=1, sf_id=0, backoff_before=64.0, backoff_after=64.0,
            rto=60.0, outstanding=1,
        ))
        report = check.check_log(log, props("rto-backoff-doubles"))
        assert report.ok

    def test_dsn_gap_detected(self):
        log = events.EventLog()
        log.emit(events.Delivered(t=1.0, recv_uid=1, dsn=0, payload=1000, delay=0.1))
        log.emit(events.Delivered(t=2.0, recv_uid=1, dsn=2000, payload=1000, delay=0.1))
        report = check.check_log(log, props("dsn-in-order-delivery"))
        assert len(report.violations) == 1
        assert "expected 1000" in report.violations[0].message

    def test_dsn_frontiers_are_per_receiver(self):
        log = events.EventLog()
        log.emit(events.Delivered(t=1.0, recv_uid=1, dsn=0, payload=1000, delay=0.1))
        log.emit(events.Delivered(t=1.5, recv_uid=2, dsn=0, payload=500, delay=0.1))
        log.emit(events.Delivered(t=2.0, recv_uid=1, dsn=1000, payload=100, delay=0.1))
        report = check.check_log(log, props("dsn-in-order-delivery"))
        assert report.ok

    def test_idle_reset_during_wait_detected(self):
        log = events.EventLog()
        log.emit(ecf_decision(t=5.0, fastest_uid=11))
        log.emit(events.IdleReset(
            t=6.0, sf_uid=11, sf_id=0, idle=2.0, rto=1.0,
            old_cwnd=20.0, new_cwnd=10.0, ssthresh=10.0,
        ))
        report = check.check_log(log, props("idle-reset-not-during-wait"))
        assert len(report.violations) == 1

    def test_idle_reset_before_wait_is_legal(self):
        log = events.EventLog()
        log.emit(ecf_decision(t=3.0, fastest_uid=11))  # before idle started
        log.emit(events.IdleReset(
            t=6.0, sf_uid=11, sf_id=0, idle=2.0, rto=1.0,
            old_cwnd=20.0, new_cwnd=10.0, ssthresh=10.0,
        ))
        report = check.check_log(log, props("idle-reset-not-during-wait"))
        assert report.ok

    def test_check_log_refuses_partial_history(self):
        log = events.EventLog(capacity=1)
        log.emit(events.Delivered(t=1.0, recv_uid=1, dsn=0, payload=10, delay=0.1))
        log.emit(events.Delivered(t=2.0, recv_uid=1, dsn=10, payload=10, delay=0.1))
        with pytest.raises(ValueError, match="dropped"):
            check.check_log(log)
        assert check.check_log(log, allow_partial=True) is not None

    def test_violations_sorted_by_time(self):
        log = events.EventLog()
        log.emit(events.Delivered(t=5.0, recv_uid=1, dsn=99, payload=10, delay=0.1))
        log.emit(events.RtoFired(
            t=2.0, sf_uid=1, sf_id=0, backoff_before=1.0, backoff_after=1.0,
            rto=1.0, outstanding=1,
        ))
        report = check.check_log(log)
        assert [v.t for v in report.violations] == [2.0, 5.0]

    def test_report_format_mentions_outcome(self):
        report = check.CheckReport(properties_checked=["p"], events_seen=3)
        assert "OK" in report.format()
        report.violations.append(check.Violation(prop="p", t=1.0, message="bad"))
        assert "1 violation" in report.format()


class TestFixturesAndOracle:
    """The seeded-violation schedulers are caught by the checker."""

    def test_fixture_names_registered_but_not_advertised(self):
        for name in FIXTURE_SCHEDULERS:
            assert name not in SCHEDULER_NAMES
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, EcfScheduler)

    def test_nowait_fixture_diverges_from_reference(self, sim):
        conn = build_connection(sim, scheduler_name="ecf")
        scheduler = NoWaitEcfScheduler()
        conn.scheduler = scheduler
        scheduler.attach(conn)
        fast, slow = conn.subflows
        fast.rtt.add_sample(0.01)
        slow.rtt.add_sample(0.1)
        fast.cwnd = slow.cwnd = 10.0
        fast._in_flight = 10
        conn.unassigned_bytes = conn.mss  # Algorithm 1 says: wait
        with events.recording() as log:
            assert scheduler.select(conn) is slow  # fixture refuses to wait
        report = check.check_log(log)
        assert not report.ok
        assert {v.prop for v in report.violations} >= {
            "ecf-wait-respects-inequality-1",
            "ecf-reference-model",
        }

    def test_stock_bulk_run_passes_catalog(self):
        result, report = check.run_with_checks(run_bulk, bulk_spec("ecf"))
        assert result.size == 128_000
        assert report.ok
        assert report.events_seen > 0

    def test_broken_scheduler_fails_run_with_checks(self):
        with pytest.raises(check.CheckError, match="ecf-"):
            check.run_with_checks(run_bulk, bulk_spec("ecf-nowait"))

    def test_inverted_beta_fixture_trips_hysteresis_property(self):
        with pytest.raises(check.CheckError, match="ecf-beta-only-when-waiting"):
            check.run_with_checks(run_bulk, bulk_spec("ecf-invbeta"))

    def test_check_enabled_reads_environment(self, monkeypatch):
        monkeypatch.delenv(check.ENV_VAR, raising=False)
        assert not check.check_enabled()
        monkeypatch.setenv(check.ENV_VAR, "1")
        assert check.check_enabled()


class _ProbeResult:
    def __init__(self, order):
        self.order = order

    def to_dict(self):
        return {"order": self.order}


def _order_dependent_run(_spec):
    """Result depends on which of two same-timestamp events fires first."""
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(1.0, lambda: order.append("b"))
    sim.run()
    return _ProbeResult("".join(order))


def _order_independent_run(_spec):
    sim = Simulator()
    total = []
    sim.schedule(1.0, lambda: total.append(1))
    sim.schedule(1.0, lambda: total.append(2))
    sim.run()
    return _ProbeResult(sum(total))


class TestRaceDetector:
    def test_flags_order_dependent_code(self):
        report = race_check(_order_dependent_run, None, orders=6)
        assert not report.ok
        assert all(f.fields == ["order"] for f in report.findings)
        assert "race" in report.format()

    def test_passes_order_independent_code(self):
        report = race_check(_order_independent_run, None, orders=6)
        assert report.ok
        assert "byte-identical" in report.format()

    def test_bulk_scenario_is_order_independent(self):
        report = race_check(run_bulk, bulk_spec("ecf", size=64_000), orders=3)
        assert report.ok

    def test_seed_list_must_match_orders(self):
        with pytest.raises(ValueError):
            race_check(_order_independent_run, None, orders=2, seeds=[1, 2, 3])
        with pytest.raises(ValueError):
            race_check(_order_independent_run, None, orders=0)


class TestEngineTieBreak:
    def test_random_mode_is_deterministic_per_seed(self):
        def run_once():
            with forced_tie_break("random", seed=3):
                return _order_dependent_run(None).order

        assert run_once() == run_once()

    def test_invalid_mode_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(tie_break="bogus")

    def test_forced_context_restores(self):
        with forced_tie_break("random", seed=1):
            assert Simulator().tie_break == "random"
        assert Simulator().tie_break == "fifo"

    def test_fifo_preserves_insertion_order(self):
        assert _order_dependent_run(None).order == "ab"


class TestCheckCli:
    def test_stock_bulk_cell_passes(self, capsys):
        code = cli_main([
            "check", "--scenario", "bulk", "--scheduler", "ecf",
            "--size", "64k", "--orders", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bulk/ecf" in out
        assert "races:bulk/ecf" in out

    def test_broken_fixture_cell_fails(self, capsys):
        code = cli_main([
            "check", "--scenario", "bulk", "--scheduler", "ecf-nowait",
            "--size", "128k", "--skip-races",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["check", "--scheduler", "warpdrive"])
