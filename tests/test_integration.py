"""End-to-end integration tests across the full stack.

These check the system-level invariants DESIGN.md commits to: single-path
goodput tracks the regulated rate, homogeneous paths aggregate, ECF never
loses to the default scheduler under heterogeneity, and the receiver's
byte stream is exact.
"""

import pytest

from repro.apps.bulk import run_bulk_download
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.net.profiles import lte_config, make_path, wifi_config
from repro.core.registry import make_scheduler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.sim.engine import Simulator


def timed_transfer(scheduler, path_configs, nbytes, cc="coupled"):
    """Transfer nbytes; returns (elapsed, conn)."""
    sim = Simulator()
    paths = [make_path(sim, pc) for pc in path_configs]
    conn = MptcpConnection(
        sim, paths, make_scheduler(scheduler),
        config=ConnectionConfig(handshake_delays=False, congestion_control=cc),
    )
    conn.write(nbytes)
    sim.run(until=600.0)
    assert conn.delivered_bytes == nbytes, "transfer did not complete"
    last = max(conn.receiver.last_arrival_by_subflow.values())
    return last, conn


class TestGoodput:
    def test_single_path_tracks_regulated_rate(self):
        elapsed, _ = timed_transfer("minrtt", [wifi_config(8.6)], 10_000_000)
        goodput = 10_000_000 * 8 / elapsed / 1e6
        # Payload efficiency is ~96%; slow start costs a little more.
        assert 6.5 < goodput <= 8.6

    def test_homogeneous_paths_aggregate(self):
        single, _ = timed_transfer("minrtt", [wifi_config(8.6)], 10_000_000)
        double, _ = timed_transfer(
            "minrtt", [wifi_config(8.6), lte_config(8.6)], 10_000_000
        )
        assert double < single * 0.7  # clear aggregation benefit

    def test_low_rate_path_is_honored(self):
        elapsed, _ = timed_transfer("minrtt", [wifi_config(0.3)], 300_000)
        goodput = 300_000 * 8 / elapsed / 1e6
        assert goodput <= 0.3

    @pytest.mark.parametrize("cc", ["reno", "coupled", "olia"])
    def test_all_congestion_controllers_complete(self, cc):
        elapsed, _ = timed_transfer(
            "minrtt", [wifi_config(4.2), lte_config(8.6)], 5_000_000, cc=cc
        )
        assert elapsed < 60.0


class TestDeliveryExactness:
    @pytest.mark.parametrize("scheduler", ["minrtt", "ecf", "blest", "daps", "roundrobin"])
    def test_delivered_stream_is_exact(self, scheduler):
        _, conn = timed_transfer(
            scheduler, [wifi_config(1.0), lte_config(8.6)], 2_000_000
        )
        assert conn.receiver.expected_dsn == 2_000_000
        assert conn.receiver.buffered_bytes == 0
        assert all(d >= 0 for d in conn.receiver.ooo_delays)


class TestEcfVersusDefault:
    def test_ecf_reduces_iw_resets_under_heterogeneity(self):
        resets = {}
        for scheduler in ("minrtt", "ecf"):
            result = run_streaming(StreamingRunConfig(
                scheduler=scheduler, wifi_mbps=0.3, lte_mbps=8.6,
                video_duration=90.0,
            ))
            resets[scheduler] = sum(result.iw_resets_by_interface.values())
        assert resets["ecf"] < resets["minrtt"]

    def test_ecf_bitrate_at_least_default_heterogeneous(self):
        rates = {}
        for scheduler in ("minrtt", "ecf"):
            result = run_streaming(StreamingRunConfig(
                scheduler=scheduler, wifi_mbps=0.3, lte_mbps=8.6,
                video_duration=90.0,
            ))
            rates[scheduler] = result.average_bitrate_bps
        assert rates["ecf"] >= rates["minrtt"]

    def test_ecf_matches_default_homogeneous(self):
        rates = {}
        for scheduler in ("minrtt", "ecf"):
            result = run_streaming(StreamingRunConfig(
                scheduler=scheduler, wifi_mbps=8.6, lte_mbps=8.6,
                video_duration=60.0,
            ))
            rates[scheduler] = result.average_bitrate_bps
        assert rates["ecf"] == pytest.approx(rates["minrtt"], rel=0.1)

    def test_ecf_keeps_last_packet_gap_comparable(self):
        """Per-chunk last-packet gaps: ECF's steady-state mean gap stays
        within noise of the default's (the paper's Fig 5 effect shows up
        robustly in the longer benchmark runs; the short test run only
        checks ECF does not regress)."""
        gaps = {}
        for scheduler in ("minrtt", "ecf"):
            result = run_streaming(StreamingRunConfig(
                scheduler=scheduler, wifi_mbps=0.3, lte_mbps=8.6,
                video_duration=120.0,
            ))
            steady = result.last_packet_gaps[len(result.last_packet_gaps) // 2:]
            gaps[scheduler] = sum(steady) / len(steady)
        assert gaps["ecf"] <= gaps["minrtt"] * 1.25

    def test_wget_ecf_never_slower_with_margin(self):
        """Fig 19's claim: ECF never does worse than default (within noise)."""
        paths = (wifi_config(1.0), lte_config(8.0))
        default = run_bulk_download("minrtt", paths, 512 * 1024)
        ecf = run_bulk_download("ecf", paths, 512 * 1024)
        assert ecf.completion_time <= default.completion_time * 1.15


class TestIdleResetAblation:
    def test_disabling_reset_raises_throughput_when_symmetric(self):
        """Fig 6's gain regime in our reproduction: with symmetric fast
        paths the reset is pure overhead, so disabling it helps; the
        result still stays below the ideal aggregate (see EXPERIMENTS.md
        for the heterogeneous-regime deviation)."""
        base = dict(scheduler="minrtt", wifi_mbps=8.6, lte_mbps=8.6, video_duration=120.0)
        with_reset = run_streaming(StreamingRunConfig(**base))
        without = run_streaming(StreamingRunConfig(idle_reset_enabled=False, **base))
        assert (
            without.metrics.steady_average_throughput_bps
            >= with_reset.metrics.steady_average_throughput_bps
        )
        assert without.metrics.steady_average_throughput_bps < 17.2e6
