"""Tests for the perf layer: counters, bench matrix, executor integration,
and the byte-identity guarantee over the hot-path optimizations."""

import hashlib
import json

import pytest

from repro.apps.bulk import BulkDownloadSpec, run_bulk
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.experiments.spec import attach_perf, canonical_json
from repro.net.profiles import lte_config, wifi_config
from repro.perf import counters as perf
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    WORKLOADS,
    compare,
    current_rev,
    report_to_dict,
    run_bench,
    run_workload,
)
from repro.sim.engine import Simulator
from repro.workloads.web import WebBrowsingSpec, cnn_like_page, run_web

SMALL_BULK = BulkDownloadSpec(
    scheduler="ecf",
    path_configs=(wifi_config(1.0), lte_config(8.6)),
    size=128_000,
    seed=1,
)


class TestCollector:
    def test_no_collection_by_default(self):
        assert perf.COLLECTOR is None
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()  # nothing to assert beyond "untouched hot path works"

    def test_collecting_adopts_simulators_built_inside(self):
        with perf.collecting() as collector:
            sim = Simulator()
            for i in range(5):
                sim.schedule(1.0 + i, lambda: None)
            sim.run()
        snap = collector.snapshot()
        assert snap.events_dispatched == 5
        assert snap.timers_scheduled == 5
        assert snap.sim_time == 5.0

    def test_objects_outside_window_not_adopted(self):
        sim = Simulator()  # built before the window opens
        with perf.collecting() as collector:
            sim.schedule(1.0, lambda: None)
            sim.run()
        assert collector.snapshot().events_dispatched == 0

    def test_windows_nest_and_restore(self):
        with perf.collecting() as outer:
            with perf.collecting() as inner:
                sim = Simulator()
                sim.schedule(1.0, lambda: None)
                sim.run()
            assert perf.COLLECTOR is outer
        assert perf.COLLECTOR is None
        assert inner.snapshot().events_dispatched == 1
        assert outer.snapshot().events_dispatched == 0

    def test_full_run_populates_every_counter_family(self):
        result, record = perf.measure(run_bulk, SMALL_BULK)
        snap = record.counters
        assert snap.events_dispatched > 0
        assert snap.timers_scheduled >= snap.events_dispatched
        assert snap.packets_in > 0
        assert snap.packets_delivered > 0
        assert snap.bytes_delivered >= SMALL_BULK.size
        assert snap.scheduler_decisions > 0
        assert record.events == snap.events_dispatched
        assert record.wall_s > 0
        assert record.sim_s == snap.sim_time > 0
        assert result.completion_time > 0

    def test_counters_are_deterministic(self):
        _, first = perf.measure(run_bulk, SMALL_BULK)
        _, second = perf.measure(run_bulk, SMALL_BULK)
        assert first.counters == second.counters

    def test_record_to_dict_shape(self):
        _, record = perf.measure(run_bulk, SMALL_BULK)
        data = record.to_dict()
        assert set(data) == {"wall_s", "sim_s", "events", "events_per_wall_s", "counters"}
        assert data["events"] == record.events
        json.dumps(data)  # JSON-serializable throughout


class TestPerfEnabled:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv(perf.ENV_VAR, raising=False)
        assert not perf.perf_enabled()
        monkeypatch.setenv(perf.ENV_VAR, "0")
        assert not perf.perf_enabled()
        monkeypatch.setenv(perf.ENV_VAR, "1")
        assert perf.perf_enabled()


class TestAttachPerf:
    def test_attach_and_wire_round_trip(self):
        result, record = perf.measure(run_bulk, SMALL_BULK)
        attach_perf(result, record.to_dict())
        data = result.to_dict()
        assert data["perf"]["events"] == record.events
        rebuilt = type(result).from_dict(data)
        assert rebuilt.perf == data["perf"]

    def test_wire_format_unchanged_without_perf(self):
        result = run_bulk(SMALL_BULK)
        assert "perf" not in result.to_dict()

    def test_rejects_objects_without_perf_field(self):
        with pytest.raises(TypeError):
            attach_perf(object(), {"events": 1})


class TestExecutorIntegration:
    def test_repro_perf_attaches_record(self, monkeypatch, tmp_path):
        from repro.experiments.exec import run_specs

        monkeypatch.setenv(perf.ENV_VAR, "1")
        [result] = run_specs([SMALL_BULK], cache_dir=tmp_path)
        assert result.perf is not None
        assert result.perf["events"] > 0
        assert result.perf["counters"]["packets_delivered"] > 0

    def test_cache_entries_stay_perf_free(self, monkeypatch, tmp_path):
        from repro.experiments.exec import run_specs

        monkeypatch.setenv(perf.ENV_VAR, "1")
        [first] = run_specs([SMALL_BULK], cache_dir=tmp_path)
        assert first.perf is not None
        # The hit must rebuild from a deterministic (perf-free) entry.
        [second] = run_specs([SMALL_BULK], cache_dir=tmp_path)
        assert second.perf is None
        assert canonical_json(second.to_dict()) == canonical_json(
            run_bulk(SMALL_BULK).to_dict()
        )

    def test_disabled_by_default(self, monkeypatch, tmp_path):
        from repro.experiments.exec import run_specs

        monkeypatch.delenv(perf.ENV_VAR, raising=False)
        [result] = run_specs([SMALL_BULK], cache_dir=tmp_path)
        assert result.perf is None


class TestBench:
    def test_matrix_runs_all_workloads(self):
        records = run_bench(scale=0.02)
        assert set(records) == set(WORKLOADS)
        for name, record in records.items():
            assert record.events > 0, name
            assert record.sim_s > 0, name
            assert record.wall_s > 0, name

    def test_report_schema(self):
        record = run_workload("bulk", scale=0.02)
        report = report_to_dict({"bulk": record}, rev="abc1234", scale=0.02)
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["rev"] == "abc1234"
        entry = report["workloads"]["bulk"]
        assert set(entry) == {"wall_s", "sim_s", "events", "events_per_wall_s", "counters"}
        json.dumps(report)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_workload("nope", scale=1.0)
        with pytest.raises(ValueError):
            run_workload("bulk", scale=0.0)
        with pytest.raises(ValueError):
            run_workload("bulk", scale=0.02, repeat=0)

    def test_repeat_keeps_deterministic_counters(self):
        once = run_workload("bulk", scale=0.02)
        best = run_workload("bulk", scale=0.02, repeat=3)
        assert best.events == once.events
        assert best.counters == once.counters

    def test_current_rev_is_short_string(self):
        rev = current_rev()
        assert isinstance(rev, str) and rev
        assert "/" not in rev and "\n" not in rev


class TestCompare:
    BASE = {"workloads": {"bulk": {"events_per_wall_s": 100_000.0}}}

    def test_no_complaint_within_tolerance(self):
        report = {"workloads": {"bulk": {"events_per_wall_s": 80_000.0}}}
        assert compare(report, self.BASE, tolerance=0.30) == []

    def test_detects_regression(self):
        report = {"workloads": {"bulk": {"events_per_wall_s": 60_000.0}}}
        complaints = compare(report, self.BASE, tolerance=0.30)
        assert len(complaints) == 1 and "bulk" in complaints[0]

    def test_new_workloads_not_compared(self):
        report = {"workloads": {"brand_new": {"events_per_wall_s": 1.0}}}
        assert compare(report, self.BASE) == []

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            compare(self.BASE, self.BASE, tolerance=1.5)


class TestByteIdentity:
    """The hot-path optimizations must not change a single output byte.

    The digests were captured from the pre-optimization tree; any engine,
    link, packet, or scheduler change that alters event order or results
    shows up here as a digest mismatch.
    """

    def _cases(self):
        paths = (wifi_config(1.0), lte_config(8.6))
        page = cnn_like_page()
        return {
            "bulk_ecf": (run_bulk, BulkDownloadSpec(
                scheduler="ecf", path_configs=paths, size=256_000, seed=3)),
            "bulk_minrtt": (run_bulk, BulkDownloadSpec(
                scheduler="minrtt", path_configs=paths, size=256_000, seed=3)),
            "dash_ecf": (run_streaming, StreamingRunConfig(
                scheduler="ecf", wifi_mbps=4.2, lte_mbps=8.6,
                video_duration=12.0, seed=3)),
            "dash_minrtt": (run_streaming, StreamingRunConfig(
                scheduler="minrtt", wifi_mbps=0.7, lte_mbps=8.6,
                video_duration=12.0, seed=3)),
            "dash_4sf": (run_streaming, StreamingRunConfig(
                scheduler="ecf", wifi_mbps=4.2, lte_mbps=8.6,
                video_duration=10.0, seed=3, subflows_per_interface=2)),
            "web_ecf": (run_web, WebBrowsingSpec(
                scheduler="ecf", path_configs=paths, seed=3,
                object_sizes=page.object_sizes[:24])),
        }

    def test_golden_digests_match(self, golden_digests):
        for name, (runner, spec) in self._cases().items():
            result = runner(spec)
            digest = hashlib.sha256(
                canonical_json(result.to_dict()).encode()
            ).hexdigest()
            assert digest == golden_digests[name], (
                f"{name}: output diverged from the pre-optimization golden"
            )

    def test_perf_collection_does_not_perturb_results(self):
        """Measuring a run must not change its outcome."""
        runner, spec = self._cases()["bulk_ecf"]
        plain = canonical_json(runner(spec).to_dict())
        measured, _record = perf.measure(runner, spec)
        assert canonical_json(measured.to_dict()) == plain


@pytest.fixture(scope="module")
def golden_digests():
    from pathlib import Path

    path = Path(__file__).parent / "data" / "golden_perf_digests.json"
    return json.loads(path.read_text())
