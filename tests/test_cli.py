"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_size


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("1000") == 1000

    def test_kilobytes(self):
        assert parse_size("512k") == 512 * 1024

    def test_megabytes(self):
        assert parse_size("2m") == 2 * 1024 * 1024

    def test_case_insensitive(self):
        assert parse_size("1M") == 1024 * 1024

    def test_rejects_garbage(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("lots")

    def test_rejects_nonpositive(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("0")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_download_defaults(self):
        args = build_parser().parse_args(["download"])
        assert args.scheduler == ["minrtt", "ecf"]
        assert args.size == 512 * 1024

    def test_scheduler_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["download", "--scheduler", "nope"])


class TestCommands:
    def test_download_runs(self, capsys):
        assert main([
            "download", "--scheduler", "ecf", "--size", "64k",
            "--wifi", "2", "--lte", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "ecf" in out

    def test_streaming_runs(self, capsys):
        assert main([
            "streaming", "--scheduler", "ecf", "--wifi", "4.2", "--lte", "8.6",
            "--video", "15",
        ]) == 0
        assert "ideal bit rate" in capsys.readouterr().out

    def test_web_runs(self, capsys):
        assert main(["web", "--scheduler", "minrtt", "--wifi", "5", "--lte", "5"]) == 0
        assert "page load" in capsys.readouterr().out

    def test_wild_runs(self, capsys):
        assert main(["wild", "--runs", "2", "--video", "15"]) == 0
        assert "wifi rtt" in capsys.readouterr().out
