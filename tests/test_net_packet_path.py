"""Tests for packets, paths, profiles, and bandwidth processes."""

import random

import pytest

from repro.net.bandwidth import (
    ConstantBandwidth,
    PiecewiseBandwidth,
    RandomBandwidthProcess,
    PAPER_RATE_SET_MBPS,
)
from repro.net.packet import ACK_SIZE, HEADER_SIZE, MSS, Packet, segment_wire_size
from repro.net.profiles import (
    PathConfig,
    lte_config,
    make_path,
    queue_bytes_for,
    wifi_config,
    wild_lte_config,
    wild_wifi_config,
)
from tests.conftest import build_path


class TestPacket:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Packet(size=0)

    def test_rejects_payload_exceeding_size(self):
        with pytest.raises(ValueError):
            Packet(size=100, payload=200)

    def test_segment_wire_size_adds_headers(self):
        assert segment_wire_size(MSS) == MSS + HEADER_SIZE

    def test_segment_wire_size_rejects_empty(self):
        with pytest.raises(ValueError):
            segment_wire_size(0)

    def test_ack_is_small(self):
        assert ACK_SIZE < MSS

    def test_defaults(self):
        p = Packet(size=100)
        assert not p.is_ack
        assert p.dsn == -1
        assert p.recv_window is None


class TestPath:
    def test_base_rtt_sums_propagation(self, sim):
        path = build_path(sim, one_way_delay=0.02)
        assert path.base_rtt == pytest.approx(0.04)

    def test_set_rate_applies_both_directions(self, sim):
        path = build_path(sim, rate_mbps=10.0)
        path.set_rate(5e6)
        assert path.forward.rate_bps == 5e6
        assert path.reverse.rate_bps == 5e6

    def test_set_rate_with_asymmetric_reverse(self, sim):
        path = build_path(sim)
        path.set_rate(5e6, reverse_rate_bps=1e6)
        assert path.reverse.rate_bps == 1e6

    def test_rate_bps_reads_forward(self, sim):
        path = build_path(sim, rate_mbps=3.0)
        assert path.rate_bps == 3e6


class TestProfiles:
    def test_wifi_lower_delay_than_lte(self):
        assert wifi_config(8.6).one_way_delay < lte_config(8.6).one_way_delay

    def test_queue_scales_with_rate(self):
        assert queue_bytes_for(100.0, 0.1) > queue_bytes_for(1.0, 0.1)

    def test_queue_floor_applies_at_low_rates(self):
        assert queue_bytes_for(0.3, 0.1) == queue_bytes_for(0.1, 0.1)

    def test_with_rate_preserves_other_fields(self):
        base = wifi_config(1.0)
        changed = base.with_rate(5.0)
        assert changed.rate_mbps == 5.0
        assert changed.one_way_delay == base.one_way_delay

    def test_with_delay(self):
        assert wifi_config(1.0).with_delay(0.2).one_way_delay == 0.2

    def test_make_path_builds_both_links(self, sim):
        path = make_path(sim, wifi_config(2.0))
        assert path.name == "wifi"
        assert path.forward.rate_bps == 2e6
        assert path.reverse.rate_bps == 2e6

    def test_wild_wifi_rtt_spans_wide_range(self):
        rtts = [wild_wifi_config(random.Random(i)).one_way_delay * 2 for i in range(200)]
        assert min(rtts) < 0.1
        assert max(rtts) > 0.5

    def test_wild_lte_rtt_is_stable(self):
        rtts = [wild_lte_config(random.Random(i)).one_way_delay * 2 for i in range(50)]
        assert all(0.055 <= r <= 0.085 for r in rtts)


class TestBandwidthProcesses:
    def test_constant_sets_rate_once(self, sim):
        path = build_path(sim)
        ConstantBandwidth(5e6).attach(sim, path)
        assert path.rate_bps == 5e6

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(0)

    def test_piecewise_requires_increasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseBandwidth([(0.0, 1e6), (0.0, 2e6)])

    def test_piecewise_requires_entries(self):
        with pytest.raises(ValueError):
            PiecewiseBandwidth([])

    def test_piecewise_applies_changes_over_time(self, sim):
        path = build_path(sim)
        PiecewiseBandwidth([(0.0, 1e6), (10.0, 2e6)]).attach(sim, path)
        assert path.rate_bps == 1e6
        sim.run(until=11.0)
        assert path.rate_bps == 2e6

    def test_piecewise_rate_at(self):
        sched = PiecewiseBandwidth([(0.0, 1e6), (10.0, 2e6), (20.0, 3e6)])
        assert sched.rate_at(5.0) == 1e6
        assert sched.rate_at(10.0) == 2e6
        assert sched.rate_at(25.0) == 3e6

    def test_random_process_is_deterministic_per_seed(self):
        a = RandomBandwidthProcess(seed=3, duration=500.0).realize()
        b = RandomBandwidthProcess(seed=3, duration=500.0).realize()
        assert a.schedule == b.schedule

    def test_random_process_seeds_differ(self):
        a = RandomBandwidthProcess(seed=3, duration=500.0).realize()
        b = RandomBandwidthProcess(seed=4, duration=500.0).realize()
        assert a.schedule != b.schedule

    def test_random_process_rates_from_paper_set(self):
        schedule = RandomBandwidthProcess(seed=1, duration=1000.0).realize().schedule
        allowed = {r * 1e6 for r in PAPER_RATE_SET_MBPS}
        assert all(rate in allowed for _, rate in schedule)

    def test_random_process_mean_interval_roughly_respected(self):
        schedule = RandomBandwidthProcess(
            seed=5, duration=100_000.0, mean_interval=40.0
        ).realize().schedule
        mean_gap = schedule[-1][0] / (len(schedule) - 1)
        assert 30.0 < mean_gap < 50.0

    def test_random_process_changes_stay_within_duration(self):
        schedule = RandomBandwidthProcess(seed=2, duration=200.0).realize().schedule
        assert all(t < 200.0 for t, _ in schedule)

    def test_initial_rate_override(self):
        schedule = RandomBandwidthProcess(
            seed=2, duration=200.0, initial_rate_mbps=4.2
        ).realize().schedule
        assert schedule[0] == (0.0, 4.2e6)
