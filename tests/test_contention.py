"""Tests for multiple connections sharing the same links (contention).

The Web workload runs six MPTCP connections over one pair of regulated
interfaces; these tests pin the sharing behaviour the browser model
relies on.
"""


from repro.apps.http import HttpSession
from repro.core.registry import make_scheduler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.profiles import lte_config, make_path, wifi_config
from repro.sim.engine import Simulator
from tests.conftest import build_path, drain


def shared_link_connections(sim, count, rate_mbps=5.0):
    paths = [
        build_path(sim, rate_mbps=rate_mbps, one_way_delay=0.01, name="shared-a"),
        build_path(sim, rate_mbps=rate_mbps, one_way_delay=0.05, name="shared-b"),
    ]
    conns = []
    for index in range(count):
        conns.append(MptcpConnection(
            sim, paths, make_scheduler("minrtt"),
            config=ConnectionConfig(handshake_delays=False),
            name=f"c{index}",
        ))
    return paths, conns


class TestSharedLinks:
    def test_two_connections_share_capacity(self, sim):
        paths, (a, b) = shared_link_connections(sim, 2)
        a.write(2_000_000)
        b.write(2_000_000)
        drain(sim, limit=120.0)
        assert a.delivered_bytes == 2_000_000
        assert b.delivered_bytes == 2_000_000

    def test_sharing_slows_each_flow_down(self, sim):
        # Alone: ~10 Mbps aggregate for one connection.
        paths, (alone,) = shared_link_connections(sim, 1)
        alone.write(2_000_000)
        sim.run(until=300.0)
        alone_time = max(alone.receiver.last_arrival_by_subflow.values())

        sim2 = Simulator()
        paths2, (a, b) = shared_link_connections(sim2, 2)
        a.write(2_000_000)
        b.write(2_000_000)
        sim2.run(until=300.0)
        shared_time = max(
            max(conn.receiver.last_arrival_by_subflow.values()) for conn in (a, b)
        )
        assert shared_time > alone_time * 1.25

    def test_streams_do_not_corrupt_each_other(self, sim):
        """Each connection's receiver sees exactly its own byte stream."""
        paths, conns = shared_link_connections(sim, 4)
        sizes = [500_000 + i * 100_000 for i in range(4)]
        for conn, size in zip(conns, sizes):
            conn.write(size)
        drain(sim, limit=300.0)
        for conn, size in zip(conns, sizes):
            assert conn.receiver.expected_dsn == size
            assert conn.receiver.buffered_bytes == 0

    def test_http_sessions_on_shared_links(self, sim):
        paths, conns = shared_link_connections(sim, 3)
        sessions = [HttpSession(sim, conn) for conn in conns]
        done = []
        for index, session in enumerate(sessions):
            session.get(100_000, lambda r, i=index: done.append(i))
        drain(sim, limit=120.0)
        assert sorted(done) == [0, 1, 2]

    def test_queue_drops_under_heavy_contention_recovered(self, sim):
        paths, conns = shared_link_connections(sim, 6, rate_mbps=2.0)
        for conn in conns:
            conn.write(400_000)
        drain(sim, limit=300.0)
        total_drops = paths[0].forward.stats.packets_dropped_queue
        for conn in conns:
            assert conn.delivered_bytes == 400_000
        # With six slow-start bursts sharing a 2 Mbps link, drops happen
        # and are all recovered.
        assert total_drops > 0


class TestTestbedProfilesShared:
    def test_web_like_contention_on_testbed_paths(self, sim):
        paths = [make_path(sim, wifi_config(1.0)), make_path(sim, lte_config(10.0))]
        conns = [
            MptcpConnection(
                sim, paths, make_scheduler("ecf"),
                config=ConnectionConfig(handshake_delays=False),
            )
            for _ in range(6)
        ]
        for conn in conns:
            conn.write(150_000)
        drain(sim, limit=120.0)
        for conn in conns:
            assert conn.delivered_bytes == 150_000
