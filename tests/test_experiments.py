"""Tests for the experiment harnesses (runner, grid, ideal, wild)."""

import pytest

from repro.experiments.grid import (
    bitrate_ratio_matrix,
    format_matrix,
    fraction_fast_matrix,
    streaming_grid,
    throughput_matrix,
)
from repro.experiments.ideal import ideal_average_bitrate, ideal_fast_fraction
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.experiments.wild import run_wild_streaming, run_wild_web, wild_path_pair
from repro.net.bandwidth import PiecewiseBandwidth


class TestIdealModels:
    def test_ideal_bitrate_caps_at_top_representation(self):
        assert ideal_average_bitrate([8.6e6, 8.6e6]) == pytest.approx(8.47e6)

    def test_ideal_bitrate_limited_by_bandwidth(self):
        assert ideal_average_bitrate([0.3e6, 0.7e6]) == pytest.approx(1.0e6)

    def test_ideal_fraction(self):
        assert ideal_fast_fraction(8.6, 0.3) == pytest.approx(8.6 / 8.9)

    def test_ideal_fraction_validation(self):
        with pytest.raises(ValueError):
            ideal_fast_fraction(0.0, 0.0)


class TestStreamingRunner:
    def test_short_run_completes(self):
        config = StreamingRunConfig(
            scheduler="ecf", wifi_mbps=4.2, lte_mbps=8.6, video_duration=30.0
        )
        result = run_streaming(config)
        assert result.finished
        assert len(result.metrics.chunks) == 6
        assert result.average_bitrate_bps > 0

    def test_fast_interface_by_bandwidth(self):
        config = StreamingRunConfig(wifi_mbps=0.3, lte_mbps=8.6, video_duration=15.0)
        assert run_streaming(config).fast_interface == "lte"
        config = StreamingRunConfig(wifi_mbps=8.6, lte_mbps=0.3, video_duration=15.0)
        assert run_streaming(config).fast_interface == "wifi"

    def test_fraction_fast_in_unit_interval(self):
        config = StreamingRunConfig(wifi_mbps=1.1, lte_mbps=8.6, video_duration=30.0)
        result = run_streaming(config)
        assert 0.0 <= result.fraction_fast <= 1.0

    def test_traces_recorded_when_requested(self):
        config = StreamingRunConfig(
            wifi_mbps=4.2, lte_mbps=8.6, video_duration=20.0,
            record_traces=True, sample_period=0.5,
        )
        result = run_streaming(config)
        assert result.trace is not None
        assert result.trace.series("cwnd.wifi0")
        assert result.trace.series("sndbuf.lte1")

    def test_no_traces_by_default(self):
        config = StreamingRunConfig(wifi_mbps=4.2, lte_mbps=8.6, video_duration=15.0)
        assert run_streaming(config).trace is None

    def test_idle_reset_toggle_changes_behavior(self):
        base = dict(scheduler="minrtt", wifi_mbps=0.3, lte_mbps=8.6, video_duration=60.0)
        with_reset = run_streaming(StreamingRunConfig(**base))
        without = run_streaming(StreamingRunConfig(idle_reset_enabled=False, **base))
        assert sum(without.idle_resets_by_interface.values()) == 0
        assert sum(with_reset.idle_resets_by_interface.values()) > 0

    def test_four_subflows(self):
        config = StreamingRunConfig(
            wifi_mbps=0.3, lte_mbps=8.6, video_duration=20.0,
            subflows_per_interface=2,
        )
        result = run_streaming(config)
        assert result.finished
        # Two wifi + two lte paths, evenly split regulation.
        assert set(result.payload_by_interface) == {"wifi", "lte"}

    def test_bandwidth_process_applied(self):
        process = PiecewiseBandwidth([(0.0, 2e6), (10.0, 8e6)])
        config = StreamingRunConfig(
            wifi_mbps=4.2, lte_mbps=8.6, video_duration=30.0,
            wifi_process=process,
        )
        result = run_streaming(config)
        assert result.finished

    def test_last_packet_gaps_collected(self):
        config = StreamingRunConfig(wifi_mbps=0.3, lte_mbps=8.6, video_duration=30.0)
        result = run_streaming(config)
        assert result.last_packet_gaps
        assert all(g >= 0 for g in result.last_packet_gaps)

    def test_deterministic_for_seed(self):
        config = StreamingRunConfig(wifi_mbps=1.1, lte_mbps=8.6, video_duration=20.0, seed=9)
        a = run_streaming(config)
        b = run_streaming(config)
        assert a.average_bitrate_bps == b.average_bitrate_bps


class TestGrid:
    def small_grid(self):
        base = StreamingRunConfig(scheduler="minrtt", video_duration=15.0)
        return streaming_grid(base, (0.3, 8.6), (8.6,))

    def test_grid_covers_all_cells(self):
        grid = self.small_grid()
        assert set(grid) == {(0.3, 8.6), (8.6, 8.6)}

    def test_ratio_matrix_in_unit_interval(self):
        ratios = bitrate_ratio_matrix(self.small_grid())
        assert all(0.0 <= v <= 1.0 for v in ratios.values())

    def test_fraction_matrix(self):
        fractions = fraction_fast_matrix(self.small_grid())
        assert all(0.0 <= v <= 1.0 for v in fractions.values())

    def test_throughput_matrix_positive(self):
        matrix = throughput_matrix(self.small_grid())
        assert all(v > 0 for v in matrix.values())

    def test_format_matrix_renders(self):
        ratios = bitrate_ratio_matrix(self.small_grid())
        text = format_matrix(ratios, (0.3, 8.6), (8.6,))
        assert "0.3" in text and "8.6" in text

    def test_runs_per_cell(self):
        base = StreamingRunConfig(video_duration=15.0)
        grid = streaming_grid(base, (8.6,), (8.6,), runs_per_cell=2)
        assert len(grid[(8.6, 8.6)]) == 2


class TestWild:
    def test_path_pair_deterministic(self):
        assert wild_path_pair(3) == wild_path_pair(3)
        assert wild_path_pair(3) != wild_path_pair(4)

    def test_wild_streaming_sorted_by_wifi_rtt(self):
        runs = run_wild_streaming(runs=3, video_duration=15.0)
        rtts = [run.wifi_config.one_way_delay for run in runs]
        assert rtts == sorted(rtts)
        for run in runs:
            assert set(run.results) == {"minrtt", "ecf"}

    def test_wild_web_collects_both_schedulers(self):
        results = run_wild_web(runs=2)
        assert len(results["minrtt"]) == 2
        assert len(results["ecf"]) == 2
        assert all(r.complete for rs in results.values() for r in rs)
