"""Tests for the report collation utility."""

from pathlib import Path

from repro.cli import main
from repro.experiments.report import FIGURE_INDEX, collate_report, default_output_dir


class TestCollate:
    def test_includes_existing_outputs(self, tmp_path):
        (tmp_path / "fig01_onoff.txt").write_text("time downloaded\n0 0\n")
        report = collate_report(tmp_path)
        assert "Figure 1" in report
        assert "time downloaded" in report

    def test_missing_outputs_listed(self, tmp_path):
        report = collate_report(tmp_path)
        assert "(not yet generated)" in report
        assert "Missing outputs:" in report

    def test_all_figures_have_sections(self, tmp_path):
        report = collate_report(tmp_path)
        for _, title in FIGURE_INDEX:
            assert title in report

    def test_index_covers_every_paper_item(self):
        names = [name for name, _ in FIGURE_INDEX]
        # Every evaluated table/figure of the paper appears exactly once.
        for required in (
            "fig02", "fig05", "fig06", "fig07", "tab02", "fig09", "fig10",
            "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
            "tab03", "fig22",
        ):
            assert any(required in n for n in names), required
        assert len(names) == len(set(names))

    def test_default_output_dir_found_from_repo(self):
        output = default_output_dir(Path(__file__).parent)
        assert output.name == "output"
        assert output.parent.name == "benchmarks"


class TestCli:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        assert "ECF reproduction report" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.exists()
        assert "ECF reproduction report" in target.read_text()
