"""Edge cases of the MPTCP connection: receive-window extremes, stale
DATA_ACKs, interleaved writes, and sequencing invariants."""

import pytest

from tests.conftest import build_connection, drain


class TestReceiveWindowExtremes:
    def test_tiny_receive_buffer_still_completes(self, sim):
        conn = build_connection(
            sim,
            path_specs=((10.0, 0.005), (1.0, 0.1)),
            recv_buffer_bytes=30_000,
        )
        conn.write(1_000_000)
        drain(sim, limit=600.0)
        assert conn.delivered_bytes == 1_000_000

    def test_zero_advertised_window_blocks_assignment(self, sim):
        conn = build_connection(sim)
        conn.peer_recv_window = 0
        conn.write(100_000)
        sim.run(until=0.01)
        assert conn.bytes_outstanding == 0

    def test_window_reopens_on_ack_with_fresh_window(self, sim):
        conn = build_connection(sim)
        conn.peer_recv_window = 0
        conn.write(100_000)
        sim.run(until=0.01)
        # Simulate the window update a real ACK would deliver.
        conn.peer_recv_window = conn.config.recv_buffer_bytes
        conn.try_send()
        drain(sim)
        assert conn.delivered_bytes == 100_000


class TestDataAckHandling:
    def test_stale_data_ack_does_not_regress_una(self, sim):
        conn = build_connection(sim)
        conn.write(500_000)
        sim.run(until=1.0)
        una = conn.conn_una
        assert una > 0
        # Deliver a stale (smaller) data_ack through the handler.
        from repro.net.packet import Packet
        stale = Packet(size=60, is_ack=True, ack_seq=-1, data_ack=0,
                       recv_window=conn.config.recv_buffer_bytes)
        conn._on_subflow_ack(conn.subflows[0], stale, newly_acked=False)
        assert conn.conn_una == una

    def test_conn_una_reaches_total_on_completion(self, sim):
        conn = build_connection(sim)
        conn.write(300_000)
        drain(sim)
        assert conn.conn_una == 300_000
        assert conn.bytes_outstanding == 0
        assert not conn._outstanding_dsn


class TestWriteSequencing:
    def test_many_interleaved_writes(self, sim):
        conn = build_connection(sim)
        total = 0
        for index in range(20):
            size = 10_000 + index * 3_000
            total += size
            sim.schedule(index * 0.2, conn.write, size)
        drain(sim)
        assert conn.delivered_bytes == total
        assert conn.receiver.expected_dsn == total

    def test_write_during_active_transfer(self, sim):
        conn = build_connection(sim)
        conn.write(500_000)
        sim.run(until=0.05)
        conn.write(500_000)
        drain(sim)
        assert conn.delivered_bytes == 1_000_000

    def test_byte_conservation_across_subflows(self, sim):
        conn = build_connection(sim, path_specs=((10.0, 0.01), (5.0, 0.03), (1.0, 0.1)))
        conn.write(2_000_000)
        drain(sim)
        sent = sum(conn.payload_sent_by_subflow().values())
        # Reinjections can duplicate payload; never less than the total.
        assert sent >= 2_000_000
        assert conn.receiver.expected_dsn == 2_000_000


class TestSchedulerErrors:
    def test_broken_scheduler_detected(self, sim):
        """A scheduler returning a full subflow is a contract violation."""
        conn = build_connection(sim)

        class Broken:
            name = "broken"

            def attach(self, conn):
                pass

            def select(self, conn):
                subflow = conn.subflows[0]
                subflow._in_flight = int(subflow.cwnd)  # force full
                return subflow

            def duplicate_targets(self, conn, chosen):
                return []

        conn.scheduler = Broken()
        with pytest.raises(RuntimeError):
            conn.write(100_000)
