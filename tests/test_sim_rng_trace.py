"""Tests for the RNG registry and trace recorder."""

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("loss")
        b = RngRegistry(7).stream("loss")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        rngs = RngRegistry(7)
        a = [rngs.stream("a").random() for _ in range(5)]
        b = [rngs.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        rngs = RngRegistry(0)
        assert rngs.stream("x") is rngs.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        rngs1 = RngRegistry(9)
        s = rngs1.stream("loss")
        first = s.random()
        rngs2 = RngRegistry(9)
        rngs2.stream("new-consumer")  # extra stream created first
        assert rngs2.stream("loss").random() == first

    def test_fork_produces_independent_registry(self):
        parent = RngRegistry(5)
        child = parent.fork("child")
        assert child.stream("x").random() != parent.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("c").stream("x").random()
        b = RngRegistry(5).fork("c").stream("x").random()
        assert a == b


class TestTraceRecorder:
    def test_record_and_read_back(self):
        trace = TraceRecorder()
        trace.record("cwnd", 1.0, 10.0)
        trace.record("cwnd", 2.0, 20.0)
        assert trace.series("cwnd") == [(1.0, 10.0), (2.0, 20.0)]

    def test_disabled_recorder_drops_samples(self):
        trace = TraceRecorder(enabled=False)
        trace.record("cwnd", 1.0, 10.0)
        assert trace.series("cwnd") == []

    def test_unknown_series_is_empty(self):
        assert TraceRecorder().series("nope") == []

    def test_names_sorted(self):
        trace = TraceRecorder()
        trace.record("b", 0.0, 1.0)
        trace.record("a", 0.0, 1.0)
        assert trace.names() == ["a", "b"]

    def test_last_returns_most_recent(self):
        trace = TraceRecorder()
        trace.record("x", 1.0, 5.0)
        trace.record("x", 2.0, 6.0)
        assert trace.last("x") == (2.0, 6.0)

    def test_last_raises_for_missing_series(self):
        with pytest.raises(KeyError):
            TraceRecorder().last("x")

    def test_values_and_times(self):
        trace = TraceRecorder()
        trace.record("x", 1.0, 5.0)
        trace.record("x", 2.0, 6.0)
        assert trace.values("x") == [5.0, 6.0]
        assert trace.times("x") == [1.0, 2.0]

    def test_window_filters_by_time(self):
        trace = TraceRecorder()
        for t in range(5):
            trace.record("x", float(t), float(t))
        assert trace.window("x", 1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]

    def test_merge_with_prefix(self):
        a, b = TraceRecorder(), TraceRecorder()
        b.record("x", 1.0, 2.0)
        a.merge(b, prefix="run1.")
        assert a.series("run1.x") == [(1.0, 2.0)]

    def test_extend_bypasses_enabled(self):
        trace = TraceRecorder(enabled=False)
        trace.extend("x", [(0.0, 1.0)])
        assert trace.series("x") == [(0.0, 1.0)]

    def test_contains(self):
        trace = TraceRecorder()
        trace.record("x", 0.0, 0.0)
        assert "x" in trace
        assert "y" not in trace

    def test_clear(self):
        trace = TraceRecorder()
        trace.record("x", 0.0, 0.0)
        trace.clear()
        assert trace.names() == []

    def test_clear_then_record_again(self):
        trace = TraceRecorder()
        trace.record("x", 0.0, 1.0)
        trace.clear()
        assert "x" not in trace
        trace.record("x", 5.0, 9.0)
        assert trace.series("x") == [(5.0, 9.0)]


class TestTraceRecorderSampleCap:
    def test_cap_evicts_oldest(self):
        trace = TraceRecorder(max_samples_per_series=3)
        for t in range(5):
            trace.record("x", float(t), float(t * 10))
        assert trace.series("x") == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_cap_applies_per_series(self):
        trace = TraceRecorder(max_samples_per_series=2)
        for t in range(4):
            trace.record("a", float(t), 0.0)
        trace.record("b", 0.0, 1.0)
        assert len(trace.series("a")) == 2
        assert trace.series("b") == [(0.0, 1.0)]

    def test_last_and_values_on_capped_series(self):
        trace = TraceRecorder(max_samples_per_series=2)
        for t in range(4):
            trace.record("x", float(t), float(t))
        assert trace.last("x") == (3.0, 3.0)
        assert trace.values("x") == [2.0, 3.0]
        assert trace.times("x") == [2.0, 3.0]

    def test_extend_respects_cap(self):
        trace = TraceRecorder(max_samples_per_series=2)
        trace.extend("x", [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert trace.series("x") == [(1.0, 1.0), (2.0, 2.0)]

    def test_merge_into_capped_recorder(self):
        src = TraceRecorder()
        for t in range(4):
            src.record("x", float(t), float(t))
        dst = TraceRecorder(max_samples_per_series=2)
        dst.merge(src)
        assert dst.series("x") == [(2.0, 2.0), (3.0, 3.0)]

    def test_uncapped_series_unbounded(self):
        trace = TraceRecorder()
        for t in range(100):
            trace.record("x", float(t), 0.0)
        assert len(trace.series("x")) == 100

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_samples_per_series=0)
        with pytest.raises(ValueError):
            TraceRecorder(max_samples_per_series=-3)
