"""RPR912 fixtures: ``__slots__`` drifting from the observed fields."""


class Gauge:
    """Slotted, but the slot tuple and the assignments disagree."""

    __slots__ = ("value", "retired")  # RPR912: 'retired' is never assigned

    def __init__(self):
        self.value = 0.0
        self.label = ""  # RPR912: assigned but missing from __slots__


class Simulator:
    """Component root so the missing-slots check has reach here."""

    __slots__ = ("gauge", "probe")

    def __init__(self):
        self.gauge = Gauge()
        self.probe = Probe()


class Probe:
    """Hot-path sized, simulator-reachable, unslotted."""
    # RPR912: small class on the Simulator graph without __slots__

    def __init__(self):
        self.reading = 0.0
        self.samples = 0
