"""RPR915 fixture: a ``STATE_FIELDS`` contract that lies both ways."""


class Checkpointable:
    """Declares a snapshot contract the implementation has outgrown."""

    # RPR915: 'retries' was removed but stays declared; 'deadline' was
    # added but never declared.
    STATE_FIELDS = ("attempts", "retries")

    def __init__(self):
        self.attempts = 0
        self.deadline = None
