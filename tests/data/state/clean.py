"""The control: state discipline every RPR9xx rule must stay quiet on."""

from typing import List, Optional


class Simulator:
    """Slotted root with an honest snapshot contract."""

    __slots__ = ("now", "ledger")

    STATE_FIELDS = ("now", "ledger")

    def __init__(self):
        self.now = 0.0
        self.ledger = Ledger([1.0])


class Ledger:
    """Copies caller data, declares every field, births them in init."""

    __slots__ = ("entries", "total", "closed")

    STATE_FIELDS = ("entries", "total", "closed")

    def __init__(self, entries: Optional[List[float]] = None):
        self.entries = list(entries or [])  # copy: the caller keeps theirs
        self.total = sum(self.entries)
        self.closed = False

    def add(self, value: float) -> None:
        self.entries.append(value)
        self.total += value  # aug on declared state: not a hidden birth
