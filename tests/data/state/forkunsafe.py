"""RPR914 fixtures: fork-unsafe state on the simulator's object graph."""


class Simulator:
    """Component root; owns the recorder whose state cannot be forked."""

    __slots__ = ("now", "recorder")

    def __init__(self):
        self.now = 0.0
        self.recorder = Recorder(self)

    def schedule(self, delay, callback):
        return (delay, callback)


class Recorder:
    """Reachable from Simulator and full of unsnapshotable state."""

    __slots__ = ("log", "stream", "dispatch", "on_done")

    def __init__(self, sim: "Simulator"):
        self.log = open("recorder.log", "w")  # RPR914: OS handle
        self.stream = (x * x for x in range(4))  # RPR914: live generator
        self.dispatch = sim.schedule  # RPR914: bound method of another object
        self.on_done = lambda: None  # RPR914: lambda in reachable state


class RebindRecorder:
    """Reachable as well, but its callable is declared rebind-safe."""

    __slots__ = ("owner", "hook", "fh")

    SNAPSHOT_REBIND = ("hook", "fh")

    def __init__(self, sim: "Simulator"):
        self.owner = sim
        self.hook = sim.schedule  # exempt: snapshot rebinds via owner registry
        self.fh = open("rebind.log", "w")  # RPR914: rebind cannot bless a handle
