"""Seeded state-model fixtures for the RPR9xx rules (linted, not run).

Each module plants exactly one class-state pathology the auditor exists
to catch -- attributes born outside ``__init__``, ``__slots__`` drifting
from the fields actually assigned, caller-owned containers aliased into
instance state, fork-unsafe handles reachable from the simulator root,
and a ``STATE_FIELDS`` contract that lies about the observed fields --
plus one deliberately clean module and one whose seeds are suppressed
with ``# repro: noqa[RPR91x]``.  ``tests/test_state.py`` asserts all of
it, rule by rule.
"""
