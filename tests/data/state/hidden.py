"""RPR911 fixture: instance attributes born outside ``__init__``."""


class LazyCounter:
    """Initialises some state up front, sneaks the rest in later."""

    def __init__(self):
        self.count = 0

    def bump(self):
        if self.count == 0:
            self.started = True  # RPR911: born in bump(), not __init__
        self.count += 1

    def reset(self):
        self.count = 0  # reset() is an init method: not hidden state
        self.high_water = 0  # ... even for a field born here
