"""RPR913 fixtures: caller-owned mutable containers aliased into state."""

from typing import Dict, List


class Router:
    """Stores the caller's list and dict instead of copying them."""

    def __init__(self, routes: List[str], weights: Dict[str, float]):
        self.routes = routes  # RPR913: caller still holds this list
        self.weights = weights  # RPR913: same problem with the dict


class Splitter:
    """Two fields share one freshly built container: one object, two names."""

    def __init__(self):
        buckets = []
        self.left = buckets
        self.right = buckets  # RPR913: left and right alias 'buckets'
