"""Every RPR9xx seed again, each silenced with ``# repro: noqa[...]``."""


class Simulator:
    """Slotted, contract-honest root: reach for the RPR91x seeds below."""

    __slots__ = ("tape",)

    def __init__(self):
        self.tape = Tape()


class Tape:  # repro: noqa[RPR912] scratch object, never bulk-allocated
    """One suppressed seed per rule."""

    STATE_FIELDS = ("head", "position")  # repro: noqa[RPR915] rest is derived

    def __init__(self, cells: list = None):
        self.head = open("tape.bin", "rb")  # repro: noqa[RPR914] closed pre-fork
        self.position = 0
        self.cells = cells  # repro: noqa[RPR913] caller hands over ownership

    def rewind(self):
        self.mark = 0  # repro: noqa[RPR911] debug-only breadcrumb
