"""The control: idiomatic code every RPR8xx rule must stay quiet on."""

import dataclasses

from tests.data.flow.specmut import RouteSpec


def transfer_time_s(size_bytes, rate_bps):
    return size_bytes * 8 / rate_bps  # division converts the dimension


def flush_sorted(sim, items):
    for item in sorted(items):  # explicit order before scheduling
        sim.schedule(0.0, item)


def draw(rng):
    return rng.random()  # injected stream, not module state


def widened(spec: RouteSpec):
    weights = list(spec.weights)  # copy, then mutate the copy
    weights.append(1.0)
    return dataclasses.replace(spec, weights=weights)
