"""RPR841 fixtures: dimension suffixes violated through dataflow."""


def padded_deadline(delay_s, size_bytes):
    budget_s = delay_s  # dimension propagates through the assignment
    return budget_s + size_bytes  # RPR841: seconds + bytes


def window_pkts(window_bytes):
    return window_bytes  # RPR841: *_pkts function returns bytes
