"""Noqa fixture: a real RPR811 finding deliberately waived in-line."""

from tests.data.flow.clocks import read_clock


def profiled(report):
    # Host-time annotation on an offline report, not simulation state.
    report["wall"] = read_clock()  # repro: noqa[RPR811]
    return report
