"""RPR812/RPR813 fixtures: hidden module-state draws and RNG construction."""

import random


def roll():
    return random.random()  # RPR102; callers are RPR812


def noisy(value):
    return value + roll()  # RPR812: reaches random.random()


def build_stream(seed):
    return random.Random(seed)  # RPR103; callers are RPR813


def stream_for(name):
    return build_stream(hash(name))  # RPR813: reaches random.Random(...)
