"""Seeded whole-program fixtures for the RPR8xx rules (linted, not run).

Each module plants exactly the cross-module pattern one rule exists to
catch -- wall-clock reads hidden behind helper hops, frozen-spec
payloads mutated through aliases, set iteration feeding the event
queue, mixed-dimension arithmetic -- plus one deliberately clean module
the analyzer must stay quiet on and one whose findings are suppressed
with ``# repro: noqa[...]``.  ``tests/test_flow.py`` asserts all of it.
"""
