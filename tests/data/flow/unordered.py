"""RPR831 fixture: set iteration feeding the event queue indirectly."""

from typing import Set


def enqueue(sim, item):
    sim.schedule(0.0, item)  # the sink, one call away from the loop


def flush(sim, items: Set[str]):
    for item in items:  # RPR831: set order decides event insertion order
        enqueue(sim, item)
