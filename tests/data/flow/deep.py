"""RPR811 fixture: the wall clock two helper hops down, cross-module."""

from tests.data.flow.clocks import read_clock


def first_hop():
    return read_clock()  # RPR811: one hop from time.time()


def second_hop():
    return first_hop()  # RPR811: chain second_hop -> first_hop -> ...


def annotate(report):
    report["at"] = second_hop()  # RPR811: two helper hops deep
    return report
