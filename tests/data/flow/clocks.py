"""The taint source: one wall-clock read, for the RPR811 fixtures."""

import time


def read_clock():
    return time.time()  # RPR101 here; everything that calls it is RPR811
