"""RPR821 fixture: a frozen spec's mutable payload mutated via an alias.

``RouteSpec`` is frozen, but freezing only locks the *fields*; the list
a field points at is still mutable, and RPR402's annotation check never
sees the alias.  The flow analyzer tracks ``weights = spec.weights``
and flags the ``append``.
"""

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class RouteSpec:
    names: Tuple[str, ...] = ()
    weights: List[float] = None  # mutable payload behind a frozen facade


def widen(spec: RouteSpec):
    weights = spec.weights  # alias into the frozen spec's payload
    weights.append(1.0)  # RPR821: mutates state reachable from RouteSpec
    return weights
