"""Seeded lint-violation fixture (never imported, only linted).

``tests/test_analysis.py`` runs ``python -m repro.cli lint`` over this
file and asserts a non-zero exit: one deliberate violation per rule.
The filename intentionally does not start with ``test_`` so pytest never
collects it.
"""

import heapq  # RPR901: event-queue access outside repro.sim.engine
import random
import time
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.core.registry import _FACTORIES  # RPR701: cross-package private import


def stamp():
    return time.time()  # RPR101: wall clock


def jitter():
    return random.random()  # RPR102: module-level draw


def make_rng(seed):
    return random.Random(seed)  # RPR103: ad-hoc construction


def collect(values, into=[]):  # RPR201: mutable default
    into.extend(values)
    return into


def is_due(now, deadline):
    return now == deadline  # RPR301: float == on timestamps


@dataclass
class BrokenSpec:  # RPR401: spec dataclass not frozen
    kind: ClassVar[str] = "broken"
    sim: Optional["Simulator"] = None  # RPR402: live object field  # noqa: F821
    scheduler: str = "warpdrive"  # RPR501: unknown scheduler kind


def sneak_event(sim, timer):
    heapq.heappush(sim._heap, (0.0, 0, timer))  # RPR901: bypasses Simulator.schedule


def chatty_progress(done, total):
    print(f"{done}/{total}")  # RPR601: stdout write outside the CLI
