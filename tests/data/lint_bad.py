"""Seeded lint-violation fixture (never imported, only linted).

``tests/test_analysis.py`` runs ``python -m repro.cli lint`` over this
file and asserts a non-zero exit: one deliberate violation per rule.
The filename intentionally does not start with ``test_`` so pytest never
collects it.
"""

import heapq  # RPR901: event-queue access outside repro.sim.engine
import random
import time
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.core.registry import _FACTORIES  # RPR701: cross-package private import


def stamp():
    return time.time()  # RPR101: wall clock


def jitter():
    return random.random()  # RPR102: module-level draw


def make_rng(seed):
    return random.Random(seed)  # RPR103: ad-hoc construction


def collect(values, into=[]):  # RPR201: mutable default
    into.extend(values)
    return into


def is_due(now, deadline):
    return now == deadline  # RPR301: float == on timestamps


@dataclass
class BrokenSpec:  # RPR401: spec dataclass not frozen
    kind: ClassVar[str] = "broken"
    sim: Optional["Simulator"] = None  # RPR402: live object field  # noqa: F821
    scheduler: str = "warpdrive"  # RPR501: unknown scheduler kind


def sneak_event(sim, timer):
    heapq.heappush(sim._heap, (0.0, 0, timer))  # RPR901: bypasses Simulator.schedule


def chatty_progress(done, total):
    print(f"{done}/{total}")  # RPR601: stdout write outside the CLI


def relabel(report):
    report["at"] = stamp()  # RPR811: one hop from time.time()


def wrapped_stamp():
    return stamp()


def timestamp_result(result):
    result["at"] = wrapped_stamp()  # RPR811: two hops from time.time()


def perturb(delay):
    return delay + jitter()  # RPR812: reaches random.random()


def fresh_stream(seed):
    return make_rng(seed)  # RPR813: reaches random.Random(...)


def retarget(spec):
    paths = spec.paths  # alias to frozen-spec payload
    paths.append("wifi")  # RPR821: mutates state reachable from the spec


def schedule_probes(sim, probes):
    for probe in probes | {"baseline"}:  # RPR831: set order feeds the
        sim.schedule(0.0, probe)  # event queue


def naive_transfer_time(size_bytes, delay_s):
    return size_bytes + delay_s  # RPR841: bytes + seconds


class Simulator:  # ownership-graph root for the RPR91x seeds below
    def __init__(self):
        self.engine = Engine()

    def warm_up(self):
        self.booted = True  # RPR911: attribute born outside __init__


class Engine:
    __slots__ = ("ticks",)

    def __init__(self):
        self.ticks = 0
        self.on_tick = lambda: None  # RPR912: not in __slots__;
        # RPR914: lambda reachable from Simulator


class Ledger:
    STATE_FIELDS = ("entries",)  # RPR915: observed 'backup' undeclared

    def __init__(self, shared: list):
        self.entries = shared  # RPR913: caller-owned list stored uncopied
        self.backup = shared
