"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.metrics.stats import ccdf, cdf, mean, percentile, stdev
from repro.mptcp.receiver import MptcpReceiver
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.rtt import RttEstimator

finite_floats = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)


class TestStatsProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_cdf_is_monotone_and_ends_at_one(self, samples):
        points = cdf(samples)
        probs = [p for _, p in points]
        xs = [x for x, _ in points]
        assert xs == sorted(xs)
        assert probs == sorted(probs)
        assert abs(probs[-1] - 1.0) < 1e-9

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_ccdf_complements(self, samples):
        for (x1, p), (x2, q) in zip(cdf(samples), ccdf(samples)):
            assert x1 == x2
            assert abs(p + q - 1.0) < 1e-9

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_percentiles_bounded_by_extremes(self, samples):
        for q in (0, 25, 50, 75, 100):
            value = percentile(samples, q)
            assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_mean_between_extremes(self, samples):
        assert min(samples) - 1e-9 <= mean(samples) <= max(samples) + 1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_stdev_nonnegative(self, samples):
        assert stdev(samples) >= 0.0


class TestRttEstimatorProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=100))
    def test_srtt_stays_within_sample_range(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.add_sample(sample)
        assert min(samples) - 1e-9 <= est.srtt <= max(samples) + 1e-9

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=100))
    def test_rto_at_least_srtt_plus_floor(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.add_sample(sample)
        assert est.rto >= min(est.srtt + est.min_rto_var, est.max_rto) - 1e-9

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=2, max_size=100))
    def test_sigma_nonnegative_and_bounded(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.add_sample(sample)
        assert 0.0 <= est.sigma <= (max(samples) - min(samples)) + 1e-9


@st.composite
def dsn_stream(draw):
    """A randomly ordered segmentation of a contiguous byte range, with
    duplicates sprinkled in."""
    n_segments = draw(st.integers(min_value=1, max_value=40))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=1448),
            min_size=n_segments, max_size=n_segments,
        )
    )
    segments = []
    dsn = 0
    for size in sizes:
        segments.append((dsn, size))
        dsn += size
    order = draw(st.permutations(segments))
    duplicates = draw(st.lists(st.sampled_from(segments), max_size=10))
    return list(order) + duplicates, dsn


class TestReceiverProperties:
    @given(dsn_stream())
    @settings(max_examples=200)
    def test_any_arrival_order_reassembles_exactly(self, case):
        arrivals, total = case
        sim = Simulator()
        rx = MptcpReceiver(sim, recv_buffer_bytes=10_000_000)
        delivered = []
        rx.on_deliver = delivered.append
        for dsn, size in arrivals:
            rx.on_data(Packet(size=size + 60, payload=size, dsn=dsn))
        assert rx.expected_dsn == total
        assert sum(delivered) == total
        assert rx.buffered_bytes == 0
        assert all(d >= 0.0 for d in rx.ooo_delays)

    @given(dsn_stream())
    @settings(max_examples=100)
    def test_delivery_count_matches_unique_segments(self, case):
        arrivals, total = case
        sim = Simulator()
        rx = MptcpReceiver(sim)
        rx.on_data  # appease linters
        unique = len({dsn for dsn, _ in arrivals})
        for dsn, size in arrivals:
            rx.on_data(Packet(size=size + 60, payload=size, dsn=dsn))
        assert len(rx.ooo_delays) == unique
        assert rx.duplicate_packets == len(arrivals) - unique


class TestLinkProperties:
    @given(
        st.lists(st.integers(min_value=40, max_value=1508), min_size=1, max_size=60),
        st.integers(min_value=1500, max_value=50_000),
        st.floats(min_value=0.0, max_value=0.4),
    )
    @settings(max_examples=100)
    def test_conservation_under_arbitrary_traffic(self, sizes, queue_bytes, loss):
        sim = Simulator()
        link = Link(
            sim, 1e6, 0.005, queue_bytes,
            loss_rate=loss, rng=random.Random(0),
        )
        delivered = []
        for size in sizes:
            link.send(Packet(size=size), lambda p: delivered.append(p.size))
        sim.run()
        stats = link.stats
        assert stats.packets_in == len(sizes)
        assert stats.packets_delivered + stats.packets_dropped == len(sizes)
        assert len(delivered) == stats.packets_delivered

    @given(st.lists(st.integers(min_value=40, max_value=1508), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_fifo_order_preserved(self, sizes):
        sim = Simulator()
        link = Link(sim, 1e6, 0.01, 10_000_000)
        order = []
        for index, size in enumerate(sizes):
            link.send(Packet(size=size, seq=index), lambda p: order.append(p.seq))
        sim.run()
        assert order == sorted(order)


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=100))
    def test_events_execute_in_nondecreasing_time(self, delays):
        sim = Simulator()
        times = []
        for delay in delays:
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)
