"""Tests for the static lint and the runtime sanitizer (repro.analysis)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import sanitize
from repro.analysis.lint import RULES, lint_paths, lint_source
from repro.analysis.sanitize import Checks, SanitizerError
from repro.cli import main as cli_main
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from tests.conftest import build_connection, drain

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = Path(__file__).parent / "data" / "lint_bad.py"

#: Registries for rule tests: deliberately tiny so RPR501 tests do not
#: depend on what the real registries happen to contain.
TEST_REGISTRIES = {
    "scheduler": {"ecf", "minrtt"},
    "congestion_control": {"cubic"},
    "bandwidth": {"constant"},
    "experiment": {"streaming"},
}


def codes_of(source: str, **kwargs):
    kwargs.setdefault("registries", TEST_REGISTRIES)
    return [v.code for v in lint_source(source, **kwargs)]


class TestLintRules:
    """Each rule fires on a bad snippet and stays silent on a good one."""

    def test_rpr101_wall_clock(self):
        assert codes_of("import time\nt = time.time()\n") == ["RPR101"]
        assert codes_of("t = sim.now\n") == []

    def test_rpr101_datetime(self):
        assert codes_of("import datetime\nd = datetime.datetime.now()\n") == ["RPR101"]

    def test_rpr102_module_level_random(self):
        assert codes_of("import random\nx = random.random()\n") == ["RPR102"]
        assert codes_of("x = rng.random()\n") == []

    def test_rpr103_adhoc_random_construction(self):
        assert codes_of("import random\nr = random.Random(42)\n") == ["RPR103"]
        good = "from repro.sim.rng import RngRegistry\nr = RngRegistry(42).stream('x')\n"
        assert codes_of(good) == []

    def test_rpr103_allowlisted_in_rng_module(self):
        source = "import random\nr = random.Random(42)\n"
        assert lint_source(
            source, path="src/repro/sim/rng.py", registries=TEST_REGISTRIES
        ) == []

    def test_rpr201_mutable_default(self):
        assert codes_of("def f(x, acc=[]):\n    return acc\n") == ["RPR201"]
        assert codes_of("def f(x, acc={}):\n    return acc\n") == ["RPR201"]
        assert codes_of("def f(x, acc=None):\n    return acc or []\n") == []

    def test_rpr301_float_eq_on_timestamp(self):
        assert codes_of("done = now == deadline\n") == ["RPR301"]
        assert codes_of("done = packet.arrival_time != 0.0\n") == ["RPR301"]
        assert codes_of("done = now >= deadline\n") == []
        assert codes_of("done = count == total\n") == []

    def test_rpr301_non_numeric_literal_ok(self):
        # Comparing a timestamp-named field against None/str is not float
        # equality and must pass.
        assert codes_of("if completed_at == None:\n    pass\n") == []

    def test_rpr401_unfrozen_spec(self):
        bad = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class FooSpec:\n"
            "    x: int = 0\n"
        )
        assert codes_of(bad) == ["RPR401"]
        good = bad.replace("@dataclass", "@dataclass(frozen=True)")
        assert codes_of(good) == []

    def test_rpr401_kind_classvar_marks_spec(self):
        bad = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n"
            "@dataclass\n"
            "class Campaign:\n"
            "    kind: ClassVar[str] = 'streaming'\n"
            "    x: int = 0\n"
        )
        assert codes_of(bad) == ["RPR401"]

    def test_rpr401_non_spec_dataclass_ignored(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Mutable:\n"
            "    x: int = 0\n"
        )
        assert codes_of(source) == []

    def test_rpr402_live_object_field(self):
        bad = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    sim: Simulator = None\n"
        )
        assert codes_of(bad) == ["RPR402"]

    def test_rpr402_string_forward_reference(self):
        bad = (
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    link: Optional['Link'] = None\n"
        )
        assert codes_of(bad) == ["RPR402"]

    def test_rpr402_plain_fields_ok(self):
        good = (
            "from dataclasses import dataclass\n"
            "from typing import Tuple\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    rates: Tuple[float, ...] = ()\n"
            "    name: str = 'x'\n"
        )
        assert codes_of(good) == []

    def test_rpr501_unknown_kind_in_call(self):
        assert codes_of("s = make_scheduler('warpdrive')\n") == ["RPR501"]
        assert codes_of("s = make_scheduler('ecf')\n") == []

    def test_rpr501_unknown_kind_in_spec_default(self):
        bad = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    scheduler: str = 'warpdrive'\n"
        )
        assert codes_of(bad) == ["RPR501"]
        assert codes_of(bad.replace("warpdrive", "minrtt")) == []

    def test_rpr901_heapq_import(self):
        assert codes_of("import heapq\n") == ["RPR901"]
        assert codes_of("from heapq import heappush\n") == ["RPR901"]

    def test_rpr901_heap_attribute_access(self):
        assert codes_of("sim._heap.append(entry)\n") == ["RPR901"]
        assert codes_of("sim.schedule(0.5, callback)\n") == []

    def test_rpr901_allowlisted_in_engine(self):
        source = "import heapq\nheapq.heappush(self._heap, entry)\n"
        assert lint_source(
            source, path="src/repro/sim/engine.py", registries=TEST_REGISTRIES
        ) == []

    def test_rpr501_case_insensitive(self):
        assert codes_of("s = make_scheduler('ECF')\n") == []

    def test_rpr701_cross_package_private_name(self):
        bad = "from repro.core.registry import _FACTORIES\n"
        violations = lint_source(
            bad, path="src/repro/experiments/exec.py", registries=TEST_REGISTRIES
        )
        assert [v.code for v in violations] == ["RPR701"]
        assert "_FACTORIES" in violations[0].message

    def test_rpr701_same_package_is_fine(self):
        source = "from repro.core.registry import _FACTORIES\n"
        assert lint_source(
            source, path="src/repro/core/spec.py", registries=TEST_REGISTRIES
        ) == []

    def test_rpr701_public_import_is_fine(self):
        source = "from repro.core.registry import make_scheduler\n"
        assert lint_source(
            source, path="src/repro/experiments/exec.py", registries=TEST_REGISTRIES
        ) == []

    def test_rpr701_private_module_path(self):
        bad = "import repro.core._cache\n"
        violations = lint_source(
            bad, path="src/repro/experiments/exec.py", registries=TEST_REGISTRIES
        )
        assert [v.code for v in violations] == ["RPR701"]

    def test_rpr701_applies_outside_the_package(self):
        # External consumers (tests, scripts) get the same protection: for
        # them every underscore name in repro is private.
        assert codes_of("from repro.core.registry import _FACTORIES\n") == ["RPR701"]

    def test_rpr701_relative_imports_exempt(self):
        source = "from ._registry import _FACTORIES\n"
        assert lint_source(
            source, path="src/repro/core/spec.py", registries=TEST_REGISTRIES
        ) == []


class TestNoqaAndSelect:
    def test_blanket_noqa(self):
        source = "import time\nt = time.time()  # repro: noqa\n"
        assert codes_of(source) == []

    def test_coded_noqa(self):
        source = "import time\nt = time.time()  # repro: noqa[RPR101]\n"
        assert codes_of(source) == []

    def test_wrong_code_does_not_suppress(self):
        source = "import time\nt = time.time()  # repro: noqa[RPR301]\n"
        assert codes_of(source) == ["RPR101"]

    def test_select_restricts(self):
        source = "import time, random\nt = time.time()\nx = random.random()\n"
        assert codes_of(source) == ["RPR101", "RPR102"]
        assert codes_of(source, select=["RPR102"]) == ["RPR102"]

    def test_select_unknown_code_raises(self):
        with pytest.raises(ValueError):
            lint_source("x = 1\n", select=["RPR999"], registries=TEST_REGISTRIES)

    def test_violation_format_mentions_fixit(self):
        violations = lint_source(
            "import time\nt = time.time()\n", path="mod.py", registries=TEST_REGISTRIES
        )
        text = violations[0].format()
        assert text.startswith("mod.py:2:")
        assert "RPR101" in text
        assert RULES["RPR101"][1] in text


class TestLintCli:
    def test_fixture_trips_every_rule(self):
        codes = {v.code for v in lint_paths([FIXTURE])}
        assert codes == set(RULES)

    def test_cli_nonzero_on_fixture(self, capsys):
        assert cli_main(["lint", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "RPR101" in out

    def test_cli_zero_on_package(self):
        # Mirrors the CI gate: clean modulo the curated baseline (which
        # carries the two triaged RPR914 fork-unsafety acceptances).
        assert cli_main([
            "lint",
            "--baseline", str(REPO_ROOT / "lint-baseline.json"),
            str(REPO_ROOT / "src" / "repro"),
        ]) == 0

    def test_cli_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([str(REPO_ROOT / "does-not-exist")])


@pytest.fixture
def sanitized():
    """Sanitizer on for one test, restored afterwards."""
    was_on = sanitize.enabled()
    sanitize.enable()
    yield
    if not was_on:
        sanitize.disable()


class TestSanitizer:
    def test_disabled_by_default(self):
        # The suite itself may run under REPRO_SANITIZE=1; only assert
        # the toggle works, not the ambient state.
        was_on = sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()
        sanitize.enable()
        assert sanitize.enabled()
        if not was_on:
            sanitize.disable()

    def test_clean_run_passes(self, sanitized):
        sim = Simulator()
        conn = build_connection(sim)
        conn.write(200_000)
        drain(sim)
        assert conn.delivered_bytes == 200_000

    def test_cwnd_collapse_detected(self, sanitized):
        sim = Simulator()
        conn = build_connection(sim)
        subflow = conn.subflows[0]
        subflow.cwnd = 0.1
        with pytest.raises(SanitizerError, match="cwnd >= 1 MSS"):
            sanitize.CHECKS.cwnd(subflow)

    def test_ssthresh_zero_detected(self, sanitized):
        sim = Simulator()
        conn = build_connection(sim)
        subflow = conn.subflows[0]
        subflow.ssthresh = 0.0
        with pytest.raises(SanitizerError, match="ssthresh > 0"):
            sanitize.CHECKS.cwnd(subflow)

    def test_corruption_caught_mid_simulation(self, sanitized):
        sim = Simulator()
        conn = build_connection(sim)
        conn.write(500_000)
        # ssthresh=0 stays corrupt until the next ACK audit (a corrupted
        # cwnd would self-heal: the controller raises it before the check).
        sim.schedule(0.05, lambda: setattr(conn.subflows[0], "ssthresh", 0.0))
        with pytest.raises(SanitizerError):
            drain(sim)

    def test_event_dispatch_violation(self, sanitized):
        import heapq  # repro: noqa[RPR901] -- deliberately corrupting the queue

        from repro.sim.engine import Timer

        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        # Hand-push a stale event behind the clock; schedule() itself
        # would legitimately refuse this, which is the point of the check.
        timer = Timer(0.5, 10_000, lambda: None, ())
        heapq.heappush(sim._heap, (0.5, 10_000, timer))  # repro: noqa[RPR901]
        with pytest.raises(SanitizerError, match="non-decreasing event dispatch"):
            sim.run()

    def test_off_means_no_hooks(self):
        was_on = sanitize.enabled()
        sanitize.disable()
        try:
            assert sanitize.CHECKS is None
            sim = Simulator()
            conn = build_connection(sim)
            conn.subflows[0].cwnd = 0.1  # corrupt; nothing should notice
            conn.subflows[0].cwnd = 10.0
        finally:
            if was_on:
                sanitize.enable()

    def test_error_is_assertion_error(self):
        with pytest.raises(AssertionError):
            Checks().event_dispatch(now=2.0, event_time=1.0)


class TestRngRegistryFork:
    def test_fork_streams_independent_of_parent(self):
        parent = RngRegistry(seed=7)
        child = parent.fork("worker")
        parent_draws = [parent.stream("loss").random() for _ in range(4)]
        child_draws = [child.stream("loss").random() for _ in range(4)]
        assert parent_draws != child_draws

    def test_fork_unaffected_by_parent_consumption(self):
        a = RngRegistry(seed=7)
        a.stream("loss").random()  # consume from the parent first
        b = RngRegistry(seed=7)
        assert (
            a.fork("worker").stream("loss").random()
            == b.fork("worker").stream("loss").random()
        )

    def test_fork_names_distinct(self):
        registry = RngRegistry(seed=7)
        assert (
            registry.fork("alpha").stream("x").random()
            != registry.fork("beta").stream("x").random()
        )
