"""Tests for the Web workload and bandwidth scenarios."""

import pytest

from repro.net.profiles import lte_config, wifi_config
from repro.workloads.scenarios import random_bandwidth_scenarios
from repro.workloads.web import (
    BROWSER_CONNECTIONS,
    CNN_OBJECT_COUNT,
    WebPage,
    cnn_like_page,
    run_web_browsing,
)


class TestPageModel:
    def test_object_count_matches_cnn(self):
        assert len(cnn_like_page()) == CNN_OBJECT_COUNT

    def test_deterministic_for_seed(self):
        assert cnn_like_page(seed=1).object_sizes == cnn_like_page(seed=1).object_sizes

    def test_seeds_differ(self):
        assert cnn_like_page(seed=1).object_sizes != cnn_like_page(seed=2).object_sizes

    def test_size_mix_is_heavy_tailed(self):
        # Golden bumped when cnn_like_page moved from ad-hoc
        # random.Random(seed) to an RngRegistry stream: the default
        # draw's total is ~11.6 MB, a high-but-legitimate sample of the
        # mix (p5-p95 across seeds is roughly 4-10 MB).
        page = cnn_like_page()
        sizes = sorted(page.object_sizes)
        assert sizes[0] < 10_000
        assert sizes[-1] > 100_000
        assert 1_000_000 < page.total_bytes < 16_000_000

    def test_total_bytes(self):
        page = WebPage((100, 200))
        assert page.total_bytes == 300


class TestWebBrowsing:
    PATHS = (wifi_config(5.0), lte_config(5.0))

    def test_page_load_completes(self):
        result = run_web_browsing("minrtt", self.PATHS, seed=3)
        assert result.complete
        assert result.objects_completed == CNN_OBJECT_COUNT
        assert len(result.object_completion_times) == CNN_OBJECT_COUNT

    def test_page_load_time_set(self):
        result = run_web_browsing("minrtt", self.PATHS, seed=3)
        assert result.page_load_time >= max(result.object_completion_times)

    def test_small_page_and_fewer_connections(self):
        page = WebPage((10_000, 20_000, 30_000))
        result = run_web_browsing("ecf", self.PATHS, page=page, connections=2)
        assert result.complete
        assert result.total_objects == 3

    def test_all_schedulers_complete(self):
        page = WebPage(tuple([20_000] * 12))
        for name in ("minrtt", "ecf", "blest", "daps"):
            result = run_web_browsing(name, self.PATHS, page=page)
            assert result.complete, name

    def test_ooo_delays_collected(self):
        result = run_web_browsing("minrtt", (wifi_config(1.0), lte_config(10.0)), seed=3)
        assert result.ooo_delays  # some packets always recorded

    def test_mean_completion_time(self):
        page = WebPage((10_000, 10_000))
        result = run_web_browsing("minrtt", self.PATHS, page=page)
        assert result.mean_completion_time == pytest.approx(
            sum(result.object_completion_times) / 2
        )


class TestScenarios:
    def test_count_and_determinism(self):
        a = random_bandwidth_scenarios(count=3, duration=200.0)
        b = random_bandwidth_scenarios(count=3, duration=200.0)
        assert len(a) == 3
        for left, right in zip(a, b):
            assert left.wifi.schedule == right.wifi.schedule
            assert left.lte.schedule == right.lte.schedule

    def test_scenarios_differ_from_each_other(self):
        scenarios = random_bandwidth_scenarios(count=2, duration=500.0)
        assert scenarios[0].wifi.schedule != scenarios[1].wifi.schedule

    def test_wifi_and_lte_are_independent(self):
        scenario = random_bandwidth_scenarios(count=1, duration=500.0)[0]
        assert scenario.wifi.schedule != scenario.lte.schedule

    def test_aggregate_rate(self):
        scenario = random_bandwidth_scenarios(count=1, duration=100.0)[0]
        assert scenario.aggregate_rate_at(0.0) == (
            scenario.wifi.rate_at(0.0) + scenario.lte.rate_at(0.0)
        )

    def test_count_validation(self):
        with pytest.raises(ValueError):
            random_bandwidth_scenarios(count=0)
